#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# The whole workspace is hermetic: every dependency is an in-tree path
# crate, so each step runs with --offline against an empty registry. Run
# from anywhere; the script cds to the repo root.
#
#   ci/check.sh            # build + test + clippy
#   ci/check.sh --no-lint  # skip the clippy step
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint=1
if [[ "${1:-}" == "--no-lint" ]]; then
    run_lint=0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline"
cargo test -q --offline --workspace

# Re-run the suite pinned to each narrower vector tier the host supports
# (LOWINO_FORCE_TIER caps dispatch below the native probe). The compiled
# transform tapes, the dpbusd kernels and the quantize epilogues all
# dispatch on the tier, so every per-tier bitwise-equivalence property
# must hold on every tier, not just the widest one. detect() rejects
# tiers above the native level, so probe availability first with the
# print_tier example (exits non-zero on an unsupported forced tier).
for forced in scalar avx2 avx512vnni; do
    if LOWINO_FORCE_TIER="$forced" cargo run -q --release --offline -p lowino --example print_tier >/dev/null 2>&1; then
        echo "==> cargo test --offline (LOWINO_FORCE_TIER=$forced)"
        LOWINO_FORCE_TIER="$forced" cargo test -q --offline --workspace
        # Re-assert the whole-model differential battery by name: the graph
        # engine must stay bitwise identical to the per-layer path on every
        # tier (the workspace pass above runs it too; the explicit run makes
        # a tier-specific regression name itself in the log).
        echo "==> graph identity (LOWINO_FORCE_TIER=$forced)"
        LOWINO_FORCE_TIER="$forced" cargo test -q --offline -p lowino --test graph_identity
        # The pipelined GEMM driver (double-buffered packing + prefetch)
        # must stay exactly equal to the unpacked reference on every tier:
        # the packed-block walk, ragged tails, single-block degenerate
        # shapes and scratch reuse are all asserted by name per tier.
        echo "==> gemm pipeline identity (LOWINO_FORCE_TIER=$forced)"
        LOWINO_FORCE_TIER="$forced" cargo test -q --offline -p lowino-gemm --test pipeline
    else
        echo "==> tier $forced not supported on this host; skipping forced-tier pass"
    fi
done

# Smoke-run the schedule bench: proves the bench targets build and that
# both the fused single-fork-join path and the retained three-fork-join
# reference path execute end to end (seconds-long smoke configuration).
echo "==> bench smoke (forkjoin, LOWINO_BENCH_SMOKE=1)"
LOWINO_BENCH_SMOKE=1 cargo bench -q --offline -p lowino-bench --bench forkjoin

# Smoke-run the transform-codelet bench: interpreted codelet executor vs
# the compiled instruction tape, plus the fused quantize/dequantize
# epilogues vs their two-pass spellings.
echo "==> bench smoke (transforms, LOWINO_BENCH_SMOKE=1)"
LOWINO_BENCH_SMOKE=1 cargo bench -q --offline -p lowino-bench --bench transforms

# Fault-injection smoke: run the resilience binary once with the
# pool/phase and wisdom/save sites armed (the layer must demote and keep
# serving within direct-f32 tolerance; the crashed wisdom save must leave
# the previous file loadable) and once disarmed (no demotion, same
# tolerance).
echo "==> fault-injection smoke (LOWINO_FAULT=pool/phase,wisdom/save)"
LOWINO_FAULT=pool/phase,wisdom/save \
    cargo run -q --release --offline -p lowino-bench --bin resilient_smoke
echo "==> fault-injection smoke (disarmed)"
cargo run -q --release --offline -p lowino-bench --bin resilient_smoke

# Trace smoke: re-run the forkjoin smoke with the recorder enabled and
# validate the emitted chrome trace (must exist, be non-empty, be valid
# JSON per the in-tree validator, and contain pool phase spans). The
# pipelined GEMM scheduler must show up too: gemm/pack_ns (packing time
# counter) and gemm/steal (per-worker stolen-chunk instant — an instant
# precisely so it records even on steal-free runs) are load-bearing
# observability and their absence means the pipeline silently fell back.
echo "==> trace smoke (forkjoin, LOWINO_TRACE set)"
trace_tmp="$(mktemp -t lowino-trace-XXXXXX.json)"
trap 'rm -f "$trace_tmp"' EXIT
LOWINO_BENCH_SMOKE=1 LOWINO_TRACE="$trace_tmp" \
    cargo bench -q --offline -p lowino-bench --bench forkjoin
cargo run -q --release --offline -p lowino-bench --bin trace_check -- "$trace_tmp"
grep -q '"gemm/pack_ns"' "$trace_tmp"
grep -q '"gemm/steal"' "$trace_tmp"
grep -q '"pool/steal"' "$trace_tmp"

# Whole-model smoke: compile MiniResNet into the graph engine and run it
# end to end (one smoke bench cell), traced, and validate the trace — it
# must carry the graph/compile + graph/execute + graph/layer spans and
# the graph/plan_bytes counter alongside the kernel-level spans.
echo "==> models bench smoke (graph engine, LOWINO_TRACE set)"
models_trace="$(mktemp -t lowino-models-trace-XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$models_trace"' EXIT
LOWINO_BENCH_SMOKE=1 LOWINO_TRACE="$models_trace" \
    cargo bench -q --offline -p lowino-bench --bench models
cargo run -q --release --offline -p lowino-bench --bin trace_check -- "$models_trace"
grep -q '"graph/execute"' "$models_trace"
grep -q '"graph/layer"' "$models_trace"
grep -q '"graph/plan_bytes"' "$models_trace"

# Autotuner smoke: run the tune_smoke binary traced. It proves the full
# seed → execute → retune → swap → shutdown cycle in-process (seed-only
# engine serves its first request with no measurement sweep; a Background
# engine publishes a winner, joins its retune thread on stop, and leaves a
# non-empty wisdom file). The validated trace must carry the compile-time
# seeding instants and the atomic table swap.
echo "==> tune smoke (seed + background retune, LOWINO_TRACE set)"
tune_trace="$(mktemp -t lowino-tune-trace-XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$models_trace" "$tune_trace"' EXIT
LOWINO_TRACE="$tune_trace" \
    cargo run -q --release --offline -p lowino-bench --bin tune_smoke
cargo run -q --release --offline -p lowino-bench --bin trace_check -- "$tune_trace"
grep -q '"tune/seeded"' "$tune_trace"
grep -q '"tune/swap"' "$tune_trace"

# Serving smoke, two layers. First the sustained-load bench in its
# seconds-long smoke configuration (seeded Poisson arrivals over
# in-memory duplex streams, LoadStats percentile report, plus the
# kill-loop cell: a shard worker wedged over and over while the
# supervisor detects/steals/respawns and the served p99 is reported
# against the no-fault baseline). Then the serve_smoke binary over a
# real loopback TCP port: batched inference from concurrent clients, a
# malformed request and a wrong-shape body (both must answer 4xx
# without wedging the connection), /healthz and /stats, a mid-batch
# worker wedge that must end in a restart and a replayed 200, an
# expired-on-arrival request that must be shed 504 at admission, and a
# drained shutdown whose accounting must close. The traced run must
# carry the serving observability events — request spans, batch spans
# with occupancy, the queue-depth instants, and the supervision
# instants (shard restarts, deadline sheds, brownout rung changes) —
# alongside the kernel spans, validated by trace_check.
echo "==> serve bench smoke (Poisson load + kill-loop, LOWINO_BENCH_SMOKE=1)"
LOWINO_BENCH_SMOKE=1 cargo bench -q --offline -p lowino-bench --bench serve
echo "==> serve smoke (real TCP loopback, LOWINO_TRACE set)"
serve_trace="$(mktemp -t lowino-serve-trace-XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$models_trace" "$tune_trace" "$serve_trace"' EXIT
LOWINO_TRACE="$serve_trace" \
    cargo run -q --release --offline -p lowino-bench --bin serve_smoke
cargo run -q --release --offline -p lowino-bench --bin trace_check -- "$serve_trace"
grep -q '"serve/request"' "$serve_trace"
grep -q '"serve/batch"' "$serve_trace"
grep -q '"serve/queue_depth"' "$serve_trace"
grep -q '"serve/batch_occupancy"' "$serve_trace"
grep -q '"serve/shard_restart"' "$serve_trace"
grep -q '"serve/deadline_shed"' "$serve_trace"
grep -q '"serve/brownout"' "$serve_trace"

# Release-mode acceptance guard (timing-sensitive, so #[ignore]d in the
# debug suite): measuring only the cost model's top-K candidates must
# reach >=90% of the full-lattice sweep's best throughput on the three
# bench GEMM shapes.
echo "==> top-K pruning guard (release, --ignored)"
cargo test -q --release --offline -p lowino-gemm --test retune -- --ignored

# PR-8 ablation regression guard (also timing-sensitive, release-only):
# the graph engine's accepted ~2-4% per-op bookkeeping overhead versus
# the per-layer interpreter must not silently widen (bound and rationale
# in tests/graph_overhead.rs and EXPERIMENTS.md).
echo "==> graph overhead guard (release, --ignored)"
cargo test -q --release --offline -p lowino-nn --test graph_overhead -- --ignored

if [[ "$run_lint" == 1 ]]; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy (-D warnings)"
        cargo clippy --offline --workspace --all-targets -- -D warnings
    else
        echo "==> clippy not installed; skipping lint step"
    fi
fi

echo "==> tier-1 gate passed"
