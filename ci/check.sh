#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# The whole workspace is hermetic: every dependency is an in-tree path
# crate, so each step runs with --offline against an empty registry. Run
# from anywhere; the script cds to the repo root.
#
#   ci/check.sh            # build + test + clippy
#   ci/check.sh --no-lint  # skip the clippy step
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint=1
if [[ "${1:-}" == "--no-lint" ]]; then
    run_lint=0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline"
cargo test -q --offline --workspace

# Smoke-run the schedule bench: proves the bench targets build and that
# both the fused single-fork-join path and the retained three-fork-join
# reference path execute end to end (seconds-long smoke configuration).
echo "==> bench smoke (forkjoin, LOWINO_BENCH_SMOKE=1)"
LOWINO_BENCH_SMOKE=1 cargo bench -q --offline -p lowino-bench --bench forkjoin

if [[ "$run_lint" == 1 ]]; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy (-D warnings)"
        cargo clippy --offline --workspace --all-targets -- -D warnings
    else
        echo "==> clippy not installed; skipping lint step"
    fi
fi

echo "==> tier-1 gate passed"
