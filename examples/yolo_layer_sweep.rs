//! Object-detection workload: sweep the YOLOv3 backbone layers (paper
//! Table 2, batch 1) over every algorithm and show where Winograd pays off
//! and where direct convolution stays competitive — the §5.1 observation
//! that "Winograd convolution not always outperforms direct convolution".
//!
//! ```text
//! cargo run --release --example yolo_layer_sweep
//! ```

use lowino::prelude::*;

fn main() {
    // YOLOv3_a/b/c from paper Table 2 (batch 1).
    let layers = [
        ("YOLOv3_a", 64usize, 128usize, 64usize),
        ("YOLOv3_b", 128, 256, 32),
        ("YOLOv3_c", 256, 512, 16),
    ];
    let algos = [
        Algorithm::DirectInt8,
        Algorithm::LoWino { m: 2 },
        Algorithm::LoWino { m: 4 },
        Algorithm::LoWino { m: 6 },
    ];

    let mut engine = Engine::new(1);
    println!("{:<10} {:<16} {:>12} {:>12} {:>12}", "layer", "algorithm", "input tf", "gemm", "total");
    for (name, c, k, hw) in layers {
        let spec = ConvShape::same(1, c, k, hw, 3);
        let weights = Tensor4::from_fn(k, c, 3, 3, |kk, cc, y, x| {
            ((kk * 13 + cc * 5 + y + x) as f32 * 0.57).sin() * 0.08
        });
        let input = Tensor4::from_fn(1, c, hw, hw, |_, cc, y, x| {
            ((cc * 17 + y * 3 + x) as f32 * 0.23).cos()
        });
        let img = BlockedImage::from_nchw(&input);
        let mut best: Option<(Algorithm, f64)> = None;
        for algo in algos {
            let mut layer = LayerBuilder::new(spec, &weights)
                .algorithm(AlgoChoice::Fixed(algo))
                .calibration_samples(vec![img.clone()])
                .build(&engine)
                .expect("plan");
            let mut out = engine.alloc_output(&spec);
            engine.execute(&mut layer, &img, &mut out).expect("warm-up");
            let t = engine.execute(&mut layer, &img, &mut out).expect("layer");
            println!(
                "{:<10} {:<16} {:>12.2?} {:>12.2?} {:>12.2?}",
                name,
                algo.to_string(),
                t.input_transform,
                t.gemm,
                t.total()
            );
            let total = t.total().as_secs_f64();
            if best.as_ref().is_none_or(|(_, b)| total < *b) {
                best = Some((algo, total));
            }
        }
        let (best_algo, _) = best.unwrap();
        let predicted = lowino::select_algorithm(&spec);
        println!(
            "  -> measured best: {best_algo}; cost-model pick: {predicted}\n"
        );
    }
}
