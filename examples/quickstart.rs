//! Quickstart: plan and run one LoWino convolution layer, compare it with
//! the FP32 reference, and peek at the `vpdpbusd` primitive underneath.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lowino::prelude::*;
use lowino::{dpbusd, SimdTier};

fn main() {
    // --- 0. The low-precision primitive (paper Fig. 1) -------------------
    let tier = SimdTier::detect();
    println!("SIMD tier: {tier}");
    let mut acc = [1i32; 16];
    dpbusd(tier, &mut acc, &[2u8; 64], &[3i8; 64]);
    println!("vpdpbusd([2;64]·[3;64] + 1) lane 0 = {} (expect 25)\n", acc[0]);

    // --- 1. A convolution layer ------------------------------------------
    // ResNet-50_b-like, scaled: 256->256 channels, 14x14, 3x3, batch 2.
    let spec = ConvShape::same(2, 256, 256, 14, 3);
    let weights = Tensor4::from_fn(256, 256, 3, 3, |k, c, y, x| {
        ((k * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin() * 0.05
    });
    let input = Tensor4::from_fn(2, 256, 14, 14, |b, c, y, x| {
        ((b * 97 + c * 13 + y * 5 + x) as f32 * 0.21).cos()
    });
    let img = BlockedImage::from_nchw(&input);
    let mut engine = Engine::new(1);

    // --- 2. FP32 reference -----------------------------------------------
    let mut reference = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
        .build(&engine)
        .expect("plan fp32");
    let mut out_ref = engine.alloc_output(&spec);
    let t_ref = engine.execute(&mut reference, &img, &mut out_ref).expect("reference");

    // --- 3. LoWino F(4x4, 3x3), calibrated on the input ------------------
    let mut lowino = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
        .calibration_samples(vec![img.clone()])
        .per_position_scales(true) // scale-granularity extension
        .build(&engine)
        .expect("plan lowino");
    let mut out = engine.alloc_output(&spec);
    let t = engine.execute(&mut lowino, &img, &mut out).expect("lowino");

    let err = out.to_nchw().rel_l2_error(&out_ref.to_nchw());
    println!("layer: {spec:?}");
    println!(
        "FP32 direct : {:>10.2?} total",
        t_ref.total()
    );
    println!(
        "LoWino F4   : {:>10.2?} total  (input tf {:?}, gemm {:?}, output tf {:?})",
        t.total(),
        t.input_transform,
        t.gemm,
        t.output_transform
    );
    println!(
        "speedup {:.2}x, relative L2 error {err:.4}",
        t_ref.total().as_secs_f64() / t.total().as_secs_f64()
    );

    // --- 4. What would the auto-selector pick? ---------------------------
    let auto = lowino::select_algorithm(&spec);
    println!("\nauto-selected algorithm for this layer: {auto}");
}
