//! Semantic-segmentation workload: run a U-Net-style encoder chain
//! (paper Table 2's U-Net layers, batch 1, large spatial dims) through
//! LoWino end to end, demonstrating layer chaining, per-tile-position
//! scales, and the accuracy/performance trade-off across tile sizes.
//!
//! ```text
//! cargo run --release --example unet_segmentation [--full]
//! ```
//! (`--full` uses the paper's 282×282 resolution; default is 94×94 so the
//! example finishes quickly on small machines.)

use lowino::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let div = if full { 1 } else { 3 };
    // U-Net encoder stages (Table 2: U-Net_a/b/c), chained with 2x
    // downsampling between stages (stand-in for pooling).
    let stages = [
        ("U-Net_a", 128usize, 128usize, 282usize / div),
        ("U-Net_b", 256, 256, 138 / div),
        ("U-Net_c", 512, 512, 66 / div),
    ];

    let mut engine = Engine::new(1);
    println!("U-Net encoder, LoWino F(4x4,3x3) per stage (spatial/{div}):\n");

    // Input feature map for stage 1 (pretend stem output).
    let mut act = Tensor4::from_fn(1, 128, stages[0].3, stages[0].3, |_, c, y, x| {
        ((c * 31 + y * 5 + x * 3) as f32 * 0.17).sin()
    });

    for (name, c, k, hw) in stages {
        let spec = ConvShape::same(1, c, k, hw, 3);
        let weights = Tensor4::from_fn(k, c, 3, 3, |kk, cc, y, x| {
            ((kk * 7 + cc * 3 + y + x) as f32 * 0.43).cos() * 0.04
        });
        let img = BlockedImage::from_nchw(&act);

        // Reference for the per-stage error report.
        let mut reference = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
            .build(&engine)
            .expect("plan fp32");
        let mut out_ref = engine.alloc_output(&spec);
        let t_ref = engine.execute(&mut reference, &img, &mut out_ref).expect("reference");

        let mut layer = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
            .calibration_samples(vec![img.clone()])
            .per_position_scales(true)
            .build(&engine)
            .expect("plan lowino");
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).expect("warm-up");
        let t = engine.execute(&mut layer, &img, &mut out).expect("layer");

        let err = out.to_nchw().rel_l2_error(&out_ref.to_nchw());
        println!(
            "{name:<8} {c:>3}->{k:<3} @{hw:<3}  lowino {:>9.2?} (fp32 {:>9.2?}, {:.2}x)  rel-err {err:.4}",
            t.total(),
            t_ref.total(),
            t_ref.total().as_secs_f64() / t.total().as_secs_f64()
        );

        // Feed the (quantized-path) output into the next stage, downsampled
        // 2x2 to halve the resolution like the pooling between stages.
        let nchw = out.to_nchw();
        let (_, kk, hh, ww) = nchw.dims();
        let next_hw = stages
            .iter()
            .skip_while(|s| s.0 != name)
            .nth(1)
            .map(|s| s.3)
            .unwrap_or(hh / 2);
        act = Tensor4::from_fn(1, kk, next_hw, next_hw, |b, cc, y, x| {
            let sy = (y * hh / next_hw).min(hh.saturating_sub(1));
            let sx = (x * ww / next_hw).min(ww.saturating_sub(1));
            nchw.at(b, cc, sy, sx).max(0.0) // resample + ReLU
        });
    }
    println!("\n(per-tile-position scales keep F(4x4) segmentation-grade even at 512 channels)");
}
