//! Print the resolved SIMD dispatch tier and its f32 vector tier.
//!
//! Honours `LOWINO_FORCE_TIER` (and exits non-zero when the forced tier is
//! invalid or above what the host supports), so CI can use it as a cheap
//! probe: `LOWINO_FORCE_TIER=avx2 cargo run --example print_tier` succeeds
//! exactly when the forced-tier test pass would be meaningful.

use lowino_simd::vecf32::VecTier;
use lowino_simd::SimdTier;

fn main() {
    let tier = SimdTier::detect();
    println!("{tier} (f32 vectors: {})", VecTier::for_simd(tier));
}
