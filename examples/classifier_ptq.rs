//! End-to-end post-training quantization of an image classifier — the
//! Table 3 workflow in miniature: train a small CNN, calibrate on
//! unlabelled samples, quantize with different schemes, compare top-1.
//!
//! ```text
//! cargo run --release --example classifier_ptq
//! ```

use lowino::prelude::*;
use lowino_nn::{
    evaluate_top1, mini_vgg, train, Dataset, QuantizedModel, QuantizedSpec, SyntheticSpec,
    TrainConfig,
};

fn main() {
    // 1. A synthetic 6-class dataset (stand-in for ImageNet; see DESIGN.md).
    let data = Dataset::generate(&SyntheticSpec {
        classes: 6,
        channels: 3,
        size: 16,
        train_per_class: 40,
        test_per_class: 15,
        noise: 0.15,
        seed: 99,
    });

    // 2. Train MiniVGG in FP32.
    println!("training MiniVGG...");
    let mut model = mini_vgg(3, 24, 6, 7);
    let losses = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 14,
            batch_size: 16,
            lr: 0.025,
            momentum: 0.9,
            seed: 1,
        },
    );
    println!("  loss: {:.3} -> {:.3}", losses[0], losses[losses.len() - 1]);
    let fp32 = evaluate_top1(&mut model, data.test_x(), data.test_y());
    println!("  FP32 top-1: {:.1}%\n", fp32 * 100.0);

    // 3. Post-training-quantize with each scheme (~ all training images as
    //    the unlabelled calibration set).
    let calib = data
        .gather_batch(&(0..data.train_y().len().min(120)).collect::<Vec<_>>())
        .0;
    for (label, algo) in [
        ("KLD INT8 direct        ", Algorithm::DirectInt8),
        ("Down-scaling F(2x2)    ", Algorithm::DownScale { m: 2 }),
        ("LoWino F(2x2)          ", Algorithm::LoWino { m: 2 }),
        ("Down-scaling F(4x4)    ", Algorithm::DownScale { m: 4 }),
        ("LoWino F(4x4)          ", Algorithm::LoWino { m: 4 }),
    ] {
        let acc = match QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: algo,
                per_position: false,
                batch: 30,
                threads: 1,
            },
        ) {
            Ok(mut q) => format!("{:.1}%", 100.0 * q.evaluate_top1(data.test_x(), data.test_y())),
            Err(e) => format!("failed: {e}"),
        };
        println!("{label} top-1: {acc}");
    }
    println!(
        "\nchance = {:.1}%  — expect down-scaling F(4x4) near chance, LoWino near FP32",
        100.0 / 6.0
    );
}
