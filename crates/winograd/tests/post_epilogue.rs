//! Property tests for the fused post-op epilogue
//! ([`Tape::execute_f32_post`]): on every available vector tier and for
//! every combination of bias / residual-add / ReLU, the fused store must be
//! **bitwise identical** to the two-pass oracle — the *interpreted* codelet
//! executor followed by the scalar spelling `((y + bias) + res).max(0.0)`
//! per element.
//!
//! The residual cases deliberately mimic the graph engine's arena reuse:
//! the skip tensor lives at a **nonzero base inside a larger buffer whose
//! other bytes hold stale garbage** (a previously-dead slot's window), with
//! a stride wider than the lane group — exactly the addressing the planner
//! produces when a residual block's skip slot is packed next to reused
//! memory.

use lowino_simd::vecf32::VecTier;
use lowino_testkit::{one_of, prop_assert, property, Rng};
use lowino_winograd::codelet::Codelet;
use lowino_winograd::tape::{Tape, TapePostOps};
use lowino_winograd::WinogradMatrices;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The scalar oracle for one element: the fixed epilogue order
/// bias → residual → ReLU, with `f32::max(v, 0.0)` (`maxps` semantics for
/// finite inputs).
fn post_scalar(y: f32, bias: Option<f32>, res: Option<f32>, relu: bool) -> f32 {
    let mut v = y;
    if let Some(b) = bias {
        v += b;
    }
    if let Some(r) = res {
        v += r;
    }
    if relu {
        v = v.max(0.0);
    }
    v
}

property! {
    /// Fused epilogue == interpreted codelet + scalar post-ops, for all
    /// eight bias/residual/relu combinations, on every tier, with lane
    /// counts straddling every SIMD chunk boundary.
    #[cases(48)]
    fn fused_post_ops_match_two_pass_oracle(
        m in one_of(&[2usize, 4]),
        lanes in 1usize..70,
        seed in 0u64..1_000_000,
        with_bias in one_of(&[true, false]),
        with_res in one_of(&[true, false]),
        relu in one_of(&[true, false]),
    ) {
        let w = WinogradMatrices::for_tile(m, 3).unwrap();
        let code = Codelet::generate(&w.at);
        let tape = Tape::lower(&code);
        let (n_in, n_out) = (code.n_in(), code.n_out());
        let mut rng = Rng::seed_from_u64(seed ^ 0xE91);

        let mut input = vec![0.0f32; n_in * lanes];
        rng.fill_f32(&mut input, -20.0, 20.0);
        let mut bias = vec![0.0f32; lanes];
        rng.fill_f32(&mut bias, -3.0, 3.0);

        // Residual at a reused offset: a larger arena-like buffer full of
        // stale garbage, the live skip window starting at a nonzero base
        // with a stride wider than the lane group.
        let res_stride = lanes + rng.range_i32(0, 5) as usize;
        let res_base = 3 * lanes + 1;
        let mut res_buf =
            vec![0.0f32; res_base + (n_out - 1) * res_stride + lanes + 7];
        rng.fill_f32(&mut res_buf, -1e30, 1e30); // stale bytes
        for i in 0..n_out {
            rng.fill_f32(
                &mut res_buf[res_base + i * res_stride..res_base + i * res_stride + lanes],
                -10.0,
                10.0,
            );
        }

        // Two-pass oracle: interpreted executor, then scalar post-ops.
        let mut want = vec![0.0f32; n_out * lanes];
        let mut cse = vec![0.0f32; code.n_temps().max(1) * lanes];
        code.execute_f32(lanes, &input, 0, lanes, &mut want, 0, lanes, &mut cse);
        for i in 0..n_out {
            for l in 0..lanes {
                want[i * lanes + l] = post_scalar(
                    want[i * lanes + l],
                    with_bias.then(|| bias[l]),
                    with_res.then(|| res_buf[res_base + i * res_stride + l]),
                    relu,
                );
            }
        }

        let post = TapePostOps {
            bias: with_bias.then_some(&bias[..]),
            residual: with_res.then_some((&res_buf[..], res_base, res_stride)),
            relu,
        };
        for vt in VecTier::available() {
            let mut got = vec![f32::NAN; n_out * lanes];
            tape.execute_f32_post(vt, lanes, &input, 0, lanes, post, &mut got, 0, lanes);
            prop_assert!(
                bits(&got) == bits(&want),
                "F({m},3) tier={vt} lanes={lanes} bias={with_bias} \
                 res={with_res} relu={relu}: {got:?} != {want:?}"
            );
        }
    }

    /// With no post-ops at all, `execute_f32_post` degenerates to
    /// `execute_f32` bit for bit (the epilogue is pay-for-what-you-use).
    #[cases(24)]
    fn empty_post_ops_are_the_identity(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let w = WinogradMatrices::for_tile(m, 3).unwrap();
        let code = Codelet::generate(&w.at);
        let tape = Tape::lower(&code);
        let (n_in, n_out) = (code.n_in(), code.n_out());
        let mut rng = Rng::seed_from_u64(seed ^ 0x1D1E);
        let mut input = vec![0.0f32; n_in * lanes];
        rng.fill_f32(&mut input, -9.0, 9.0);

        let mut plain = vec![f32::NAN; n_out * lanes];
        let mut posted = vec![f32::NAN; n_out * lanes];
        for vt in VecTier::available() {
            tape.execute_f32(vt, lanes, &input, 0, lanes, &mut plain, 0, lanes);
            tape.execute_f32_post(
                vt, lanes, &input, 0, lanes,
                TapePostOps::default(),
                &mut posted, 0, lanes,
            );
            prop_assert!(
                bits(&posted) == bits(&plain),
                "F({m},3) tier={vt} lanes={lanes}"
            );
        }
    }

    /// Signed-zero and ReLU edge: when `conv + bias` lands exactly on
    /// `-0.0`, the fused ReLU must produce `+0.0` — the same bit the
    /// scalar `f32::max(-0.0, 0.0)` produces — so downstream bitwise
    /// comparisons can't be tripped by zero signs.
    #[cases(16)]
    fn relu_normalises_negative_zero(
        lanes in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let w = WinogradMatrices::for_tile(2, 3).unwrap();
        let code = Codelet::generate(&w.at);
        let tape = Tape::lower(&code);
        let (n_in, n_out) = (code.n_in(), code.n_out());
        let mut rng = Rng::seed_from_u64(seed ^ 0x0520);
        let mut input = vec![0.0f32; n_in * lanes];
        rng.fill_f32(&mut input, -5.0, 5.0);

        // Bias chosen so every element becomes exactly -y: y + (-y) = ±0.0
        // (sign depends on y's sign; y - y is +0.0, but -0.0 appears when
        // y == +0.0 and bias == -0.0). Cancel per-slot via residual, which
        // is per-slot addressed.
        let mut y = vec![0.0f32; n_out * lanes];
        let mut cse = vec![0.0f32; code.n_temps().max(1) * lanes];
        code.execute_f32(lanes, &input, 0, lanes, &mut y, 0, lanes, &mut cse);
        let neg: Vec<f32> = y.iter().map(|v| -v).collect();

        let post = TapePostOps {
            bias: None,
            residual: Some((&neg[..], 0, lanes)),
            relu: true,
        };
        for vt in VecTier::available() {
            let mut got = vec![f32::NAN; n_out * lanes];
            tape.execute_f32_post(vt, lanes, &input, 0, lanes, post, &mut got, 0, lanes);
            for (i, g) in got.iter().enumerate() {
                prop_assert!(
                    g.to_bits() == 0.0f32.to_bits(),
                    "tier={vt} elem {i}: {g} (bits {:#x}) != +0.0",
                    g.to_bits()
                );
            }
        }
    }
}
