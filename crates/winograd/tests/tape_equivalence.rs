//! Property tests: the compiled instruction tape ([`lowino_winograd::tape`])
//! is **bitwise identical** to the interpreted codelet executor (the
//! reference oracle) — for every available vector tier, every supported
//! `F(m, 3)` transform matrix, random lane counts and strided addressing,
//! and for the fused quantize/dequantize epilogues against their two-pass
//! spellings.

use lowino_simd::vecf32::VecTier;
use lowino_simd::{dequantize_i32_lanes, quantize_f32_lanes_i8};
use lowino_testkit::{one_of, prop_assert, property, Rng};
use lowino_winograd::codelet::Codelet;
use lowino_winograd::tape::Tape;
use lowino_winograd::{TileTransformer, WinogradMatrices};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The three 1-D transform matrices of `F(m, 3)` as (name, codelet) pairs.
fn codelets(m: usize) -> Vec<(&'static str, Codelet)> {
    let w = WinogradMatrices::for_tile(m, 3).unwrap();
    vec![
        ("bt", Codelet::generate(&w.bt)),
        ("g", Codelet::generate(&w.g)),
        ("at", Codelet::generate(&w.at)),
    ]
}

property! {
    /// 1-D codelet execution: tape == interpreter, bit for bit, on every
    /// available tier, for random lane counts straddling every chunk
    /// boundary.
    #[cases(48)]
    fn tape_matches_interpreter_1d(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..70,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed ^ 0xD1CE);
        for (name, code) in codelets(m) {
            let tape = Tape::lower(&code);
            let (n_in, n_out) = (code.n_in(), code.n_out());
            let mut input = vec![0.0f32; n_in * lanes];
            rng.fill_f32(&mut input, -9.0, 9.0);
            let mut want = vec![0.0f32; n_out * lanes];
            let mut cse = vec![0.0f32; code.n_temps().max(1) * lanes];
            code.execute_f32(lanes, &input, 0, lanes, &mut want, 0, lanes, &mut cse);
            for vt in VecTier::available() {
                let mut got = vec![f32::NAN; n_out * lanes];
                tape.execute_f32(vt, lanes, &input, 0, lanes, &mut got, 0, lanes);
                prop_assert!(
                    bits(&got) == bits(&want),
                    "F({m},3) {name} tier={vt} lanes={lanes}: {got:?} != {want:?}"
                );
            }
        }
    }

    /// 2-D tile transforms (column + row pass with strided addressing):
    /// compiled == interpreted for input, filter and output transforms.
    #[cases(32)]
    fn tile_transforms_match_2d(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let tt = TileTransformer::new(m, 3).unwrap();
        let n = tt.n();
        let r = tt.r();
        let mut rng = Rng::seed_from_u64(seed ^ 0x7070);
        let mut s_int = tt.make_scratch(lanes);
        let mut s_cmp = tt.make_scratch(lanes);

        let mut d = vec![0.0f32; n * n * lanes];
        rng.fill_f32(&mut d, -6.0, 6.0);
        let mut want = vec![0.0f32; n * n * lanes];
        tt.input_tile_f32(&d, &mut want, &mut s_int);
        let mut g = vec![0.0f32; r * r * lanes];
        rng.fill_f32(&mut g, -2.0, 2.0);
        let mut want_u = vec![0.0f32; n * n * lanes];
        tt.filter_tile_f32(&g, &mut want_u, &mut s_int);
        let mut z = vec![0.0f32; n * n * lanes];
        rng.fill_f32(&mut z, -50.0, 50.0);
        let mut want_y = vec![0.0f32; m * m * lanes];
        tt.output_tile_f32(&z, &mut want_y, &mut s_int);

        for vt in VecTier::available() {
            let mut v = vec![f32::NAN; n * n * lanes];
            tt.input_tile_f32_compiled(vt, &d, &mut v, &mut s_cmp);
            prop_assert!(bits(&v) == bits(&want), "input F({m},3) tier={vt} lanes={lanes}");
            let mut u = vec![f32::NAN; n * n * lanes];
            tt.filter_tile_f32_compiled(vt, &g, &mut u, &mut s_cmp);
            prop_assert!(bits(&u) == bits(&want_u), "filter F({m},3) tier={vt} lanes={lanes}");
            let mut y = vec![f32::NAN; m * m * lanes];
            tt.output_tile_f32_compiled(vt, &z, &mut y, &mut s_cmp);
            prop_assert!(bits(&y) == bits(&want_y), "output F({m},3) tier={vt} lanes={lanes}");
        }
    }

    /// Fused quantize epilogue == interpreted transform followed by the
    /// scalar per-element `quantize_f32_lanes_i8` (the two-pass reference),
    /// with per-element Winograd-domain scales and both compensation modes.
    #[cases(32)]
    fn fused_input_quantize_matches_two_pass(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..80,
        seed in 0u64..1_000_000,
        compensate in one_of(&[true, false]),
    ) {
        let tt = TileTransformer::new(m, 3).unwrap();
        let n = tt.n();
        let mut rng = Rng::seed_from_u64(seed ^ 0xFACADE);
        let mut d = vec![0.0f32; n * n * lanes];
        rng.fill_f32(&mut d, -6.0, 6.0);
        // Per-element scales like LoWino's per-t α_V (include magnitudes
        // that drive some lanes into saturation).
        let mut alphas = vec![0.0f32; n * n];
        rng.fill_f32(&mut alphas, 0.05, 40.0);

        // Two-pass reference: interpreted transform, then scalar quantize
        // per element group.
        let mut s = tt.make_scratch(lanes);
        let mut v = vec![0.0f32; n * n * lanes];
        tt.input_tile_f32(&d, &mut v, &mut s);
        let mut want = vec![0u8; n * n * lanes];
        for t in 0..n * n {
            quantize_f32_lanes_i8(
                &v[t * lanes..(t + 1) * lanes],
                alphas[t],
                compensate,
                &mut want[t * lanes..(t + 1) * lanes],
            );
        }

        for vt in VecTier::available() {
            let mut q = vec![0xAAu8; n * n * lanes];
            tt.input_tile_quantized(vt, &d, &alphas, compensate, &mut q, &mut s);
            prop_assert!(
                q == want,
                "F({m},3) tier={vt} lanes={lanes} compensate={compensate}"
            );
        }
    }

    /// Fused dequantize prologue == scalar `dequantize_i32_lanes` into an
    /// f32 tile followed by the interpreted output transform, for both
    /// per-element scales (stride 1) and a broadcast scale (stride 0).
    #[cases(32)]
    fn fused_output_dequantize_matches_two_pass(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..80,
        seed in 0u64..1_000_000,
        stride in one_of(&[0usize, 1]),
    ) {
        let tt = TileTransformer::new(m, 3).unwrap();
        let n = tt.n();
        let mut rng = Rng::seed_from_u64(seed ^ 0xDE0);
        let z: Vec<i32> = (0..n * n * lanes)
            .map(|_| rng.range_i32(-2_000_000, 2_000_000))
            .collect();
        let mut inv = vec![0.0f32; n * n];
        rng.fill_f32(&mut inv, 1e-5, 2e-3);

        // Two-pass reference.
        let mut s = tt.make_scratch(lanes);
        let mut f = vec![0.0f32; n * n * lanes];
        for t in 0..n * n {
            dequantize_i32_lanes(
                &z[t * lanes..(t + 1) * lanes],
                inv[t * stride],
                &mut f[t * lanes..(t + 1) * lanes],
            );
        }
        let mut want = vec![0.0f32; m * m * lanes];
        tt.output_tile_f32(&f, &mut want, &mut s);

        for vt in VecTier::available() {
            let mut y = vec![f32::NAN; m * m * lanes];
            tt.output_tile_dequantized(vt, &z, &inv, stride, &mut y, &mut s);
            prop_assert!(
                bits(&y) == bits(&want),
                "F({m},3) tier={vt} lanes={lanes} stride={stride}"
            );
        }
    }

    /// Integer-oracle bridge: on INT8-range inputs the integral `Bᵀ`
    /// transform is exact in both `i32` and `f32` (everything stays far
    /// below 2²⁴), so the tape's f32 result must equal the interpreted
    /// `execute_i32` exactly.
    #[cases(32)]
    fn tape_matches_integer_interpreter_on_int8_range(
        m in one_of(&[2usize, 4, 6]),
        lanes in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let w = WinogradMatrices::for_tile(m, 3).unwrap();
        let code = Codelet::generate(&w.bt);
        let tape = Tape::lower(&code);
        let (n_in, n_out) = (code.n_in(), code.n_out());
        let mut rng = Rng::seed_from_u64(seed ^ 0x1B);
        let input_i: Vec<i32> = (0..n_in * lanes)
            .map(|_| i32::from(rng.i8()))
            .collect();
        let input_f: Vec<f32> = input_i.iter().map(|&x| x as f32).collect();

        let mut want = vec![0i32; n_out * lanes];
        let mut cse = vec![0i32; code.n_temps().max(1) * lanes];
        code.execute_i32(lanes, &input_i, 0, lanes, &mut want, 0, lanes, &mut cse);

        for vt in VecTier::available() {
            let mut got = vec![f32::NAN; n_out * lanes];
            tape.execute_f32(vt, lanes, &input_f, 0, lanes, &mut got, 0, lanes);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!(
                    *g == *w as f32,
                    "F({m},3) tier={vt} lanes={lanes}: {g} != {w}"
                );
            }
        }
    }
}
