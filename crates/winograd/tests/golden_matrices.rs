//! Golden-value tests for the Winograd transformation matrices.
//!
//! The `B`/`G`/`A` triples for `F(2,3)`, `F(4,3)` and `F(6,3)` are pinned
//! here as exact rational constants, independently of how the crate builds
//! them (canonical Lavin tables for the first two, Cook–Toom generation for
//! `F(6,3)` over the point sequence `[0, 1, -1, 2, -2, 1/2, -1/2]` plus the
//! point at infinity, with `Bᵀ` rows scaled to integers and compensated in
//! `G`). A regression in the generator, the point sequence, or the
//! normalisation pass shows up as an exact-constant mismatch — no tolerance.
//!
//! The codelet executor is then checked against the same constants to f32
//! ULP precision: on basis vectors every codelet output reduces to a single
//! rendered coefficient, so zero-elimination/CSE bookkeeping errors cannot
//! hide behind floating-point slack.

use lowino_winograd::codelet::Codelet;
use lowino_winograd::matrices::RatMat;
use lowino_winograd::{Rational, WinogradMatrices};

/// `(numerator, denominator)` golden entry.
type Q = (i128, i128);

fn assert_matches_golden(name: &str, got: &RatMat, want: &[&[Q]]) {
    let (rows, cols) = got.dims();
    assert_eq!(rows, want.len(), "{name}: row count");
    assert_eq!(cols, want[0].len(), "{name}: column count");
    for i in 0..rows {
        for j in 0..cols {
            let (n, d) = want[i][j];
            assert_eq!(
                got[(i, j)],
                Rational::new(n, d),
                "{name}[{i},{j}]: got {:?}, want {n}/{d}",
                got[(i, j)]
            );
        }
    }
}

// -- F(2,3): paper Eq. 2 (left), Lavin canonical -------------------------

const F2_BT: &[&[Q]] = &[
    &[(1, 1), (0, 1), (-1, 1), (0, 1)],
    &[(0, 1), (1, 1), (1, 1), (0, 1)],
    &[(0, 1), (-1, 1), (1, 1), (0, 1)],
    &[(0, 1), (1, 1), (0, 1), (-1, 1)],
];
const F2_G: &[&[Q]] = &[
    &[(1, 1), (0, 1), (0, 1)],
    &[(1, 2), (1, 2), (1, 2)],
    &[(1, 2), (-1, 2), (1, 2)],
    &[(0, 1), (0, 1), (1, 1)],
];
const F2_AT: &[&[Q]] = &[
    &[(1, 1), (1, 1), (1, 1), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (-1, 1)],
];

// -- F(4,3): paper Eq. 2 (right), Lavin canonical ------------------------

const F4_BT: &[&[Q]] = &[
    &[(4, 1), (0, 1), (-5, 1), (0, 1), (1, 1), (0, 1)],
    &[(0, 1), (-4, 1), (-4, 1), (1, 1), (1, 1), (0, 1)],
    &[(0, 1), (4, 1), (-4, 1), (-1, 1), (1, 1), (0, 1)],
    &[(0, 1), (-2, 1), (-1, 1), (2, 1), (1, 1), (0, 1)],
    &[(0, 1), (2, 1), (-1, 1), (-2, 1), (1, 1), (0, 1)],
    &[(0, 1), (4, 1), (0, 1), (-5, 1), (0, 1), (1, 1)],
];
const F4_G: &[&[Q]] = &[
    &[(1, 4), (0, 1), (0, 1)],
    &[(-1, 6), (-1, 6), (-1, 6)],
    &[(-1, 6), (1, 6), (-1, 6)],
    &[(1, 24), (1, 12), (1, 6)],
    &[(1, 24), (-1, 12), (1, 6)],
    &[(0, 1), (0, 1), (1, 1)],
];
const F4_AT: &[&[Q]] = &[
    &[(1, 1), (1, 1), (1, 1), (1, 1), (1, 1), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (2, 1), (-2, 1), (0, 1)],
    &[(0, 1), (1, 1), (1, 1), (4, 1), (4, 1), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (8, 1), (-8, 1), (1, 1)],
];

// -- F(6,3): Cook–Toom over [0, ±1, ±2, ±1/2] ∪ {∞}, Bᵀ integral ---------

const F6_BT: &[&[Q]] = &[
    &[(4, 1), (0, 1), (-21, 1), (0, 1), (21, 1), (0, 1), (-4, 1), (0, 1)],
    &[(0, 1), (-4, 1), (-4, 1), (17, 1), (17, 1), (-4, 1), (-4, 1), (0, 1)],
    &[(0, 1), (4, 1), (-4, 1), (-17, 1), (17, 1), (4, 1), (-4, 1), (0, 1)],
    &[(0, 1), (2, 1), (1, 1), (-10, 1), (-5, 1), (8, 1), (4, 1), (0, 1)],
    &[(0, 1), (-2, 1), (1, 1), (10, 1), (-5, 1), (-8, 1), (4, 1), (0, 1)],
    &[(0, 1), (64, 1), (128, 1), (-80, 1), (-160, 1), (16, 1), (32, 1), (0, 1)],
    &[(0, 1), (-64, 1), (128, 1), (80, 1), (-160, 1), (-16, 1), (32, 1), (0, 1)],
    &[(0, 1), (-4, 1), (0, 1), (21, 1), (0, 1), (-21, 1), (0, 1), (4, 1)],
];
const F6_G: &[&[Q]] = &[
    &[(1, 4), (0, 1), (0, 1)],
    &[(1, 18), (1, 18), (1, 18)],
    &[(1, 18), (-1, 18), (1, 18)],
    &[(1, 360), (1, 180), (1, 90)],
    &[(1, 360), (-1, 180), (1, 90)],
    &[(1, 45), (1, 90), (1, 180)],
    &[(1, 45), (-1, 90), (1, 180)],
    &[(0, 1), (0, 1), (1, 4)],
];
const F6_AT: &[&[Q]] = &[
    &[(1, 1), (1, 1), (1, 1), (1, 1), (1, 1), (1, 1), (1, 1), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (2, 1), (-2, 1), (1, 2), (-1, 2), (0, 1)],
    &[(0, 1), (1, 1), (1, 1), (4, 1), (4, 1), (1, 4), (1, 4), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (8, 1), (-8, 1), (1, 8), (-1, 8), (0, 1)],
    &[(0, 1), (1, 1), (1, 1), (16, 1), (16, 1), (1, 16), (1, 16), (0, 1)],
    &[(0, 1), (1, 1), (-1, 1), (32, 1), (-32, 1), (1, 32), (-1, 32), (1, 1)],
];

/// One golden matrix: rows of exact `(numer, denom)` entries.
type Golden = &'static [&'static [Q]];

fn goldens() -> [(usize, Golden, Golden, Golden); 3] {
    [
        (2, F2_BT, F2_G, F2_AT),
        (4, F4_BT, F4_G, F4_AT),
        (6, F6_BT, F6_G, F6_AT),
    ]
}

#[test]
fn transform_matrices_match_exact_golden_constants() {
    for (m, bt, g, at) in goldens() {
        let w = WinogradMatrices::for_tile(m, 3).unwrap();
        assert_matches_golden(&format!("F({m},3) Bᵀ"), &w.bt, bt);
        assert_matches_golden(&format!("F({m},3) G"), &w.g, g);
        assert_matches_golden(&format!("F({m},3) Aᵀ"), &w.at, at);
    }
}

#[test]
fn golden_constants_satisfy_minimal_filtering_identity() {
    // The goldens themselves must form a correct algorithm — this guards the
    // golden tables against transcription errors, independently of the
    // generator they were captured from.
    for (m, bt, g, at) in goldens() {
        let build = |rows: &[&[Q]]| {
            RatMat::from_fn(rows.len(), rows[0].len(), |i, j| {
                Rational::new(rows[i][j].0, rows[i][j].1)
            })
        };
        let mut w = WinogradMatrices::for_tile(m, 3).unwrap();
        w.at = build(at);
        w.g = build(g);
        w.bt = build(bt);
        assert!(w.verify_identity(), "F({m},3) golden identity");
    }
}

/// ULP distance between two f32 values (0 = bit-identical, with ±0 unified).
fn ulp_diff(a: f32, b: f32) -> u32 {
    // Map to a monotone integer line (sign-magnitude -> two's complement).
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN - bits } else { bits })
    }
    (key(a) - key(b)).unsigned_abs().min(u64::from(u32::MAX)) as u32
}

#[test]
fn codelets_reproduce_golden_constants_to_f32_ulp() {
    // Feeding basis vectors through the generated codelets recovers every
    // matrix column; each output must equal the rendered golden constant to
    // within one ULP (in practice bit-exact: on a basis vector each output
    // is one coefficient, and the CSE temporaries only multiply by ±1).
    for (m, bt, g, at) in goldens() {
        let w = WinogradMatrices::for_tile(m, 3).unwrap();
        for (name, mat, golden) in [("Bᵀ", &w.bt, bt), ("G", &w.g, g), ("Aᵀ", &w.at, at)] {
            let code = Codelet::generate(mat);
            let (rows, cols) = mat.dims();
            let mut scratch = vec![0.0f32; code.n_temps().max(1)];
            for j in 0..cols {
                let mut basis = vec![0.0f32; cols];
                basis[j] = 1.0;
                let mut out = vec![0.0f32; rows];
                code.execute_f32(1, &basis, 0, 1, &mut out, 0, 1, &mut scratch);
                for (i, &got) in out.iter().enumerate() {
                    let want = Rational::new(golden[i][j].0, golden[i][j].1).to_f32();
                    assert!(
                        ulp_diff(got, want) <= 1,
                        "F({m},3) {name}[{i},{j}]: codelet {got} ({:#010x}) vs golden {want} ({:#010x})",
                        got.to_bits(),
                        want.to_bits()
                    );
                }
            }
        }
    }
}

#[test]
fn tile_transformer_uses_golden_matrices() {
    use lowino_winograd::TileTransformer;
    // The transformer consumed by the conv pipeline must be built from the
    // same pinned matrices (not a divergent copy).
    for (m, bt, g, at) in goldens() {
        let t = TileTransformer::new(m, 3).unwrap();
        assert_matches_golden(&format!("F({m},3) Bᵀ"), &t.matrices().bt, bt);
        assert_matches_golden(&format!("F({m},3) G"), &t.matrices().g, g);
        assert_matches_golden(&format!("F({m},3) Aᵀ"), &t.matrices().at, at);
    }
}
