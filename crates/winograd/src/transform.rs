//! Tile transforms: `V = Bᵀ d B`, `U = G g Gᵀ`, `y = Aᵀ Z A` (paper Fig. 3).
//!
//! Every 2-D transform is two passes of the corresponding 1-D codelet —
//! column-wise then row-wise, exactly the paper's §4.2.4: *"by performing in
//! a column-wise manner and then in a row-wise manner on input tiles, the
//! generated codelets are reused to calculate all the transformed inputs"*.
//!
//! All transforms operate lane-wise: each tile element is a group of `lanes`
//! values (64 channels in the blocked layout; 1 in scalar reference code).

use crate::codelet::Codelet;
use crate::matrices::{MatrixError, WinogradMatrices};
use crate::tape::Tape;
use lowino_simd::vecf32::VecTier;

/// Scratch space for tile transforms (reused across tiles; no allocation in
/// the hot loop).
#[derive(Debug)]
pub struct TransformScratch {
    lanes: usize,
    tmp: Vec<f32>,
    cse: Vec<f32>,
    tmp_i32: Vec<i32>,
    cse_i32: Vec<i32>,
}

impl TransformScratch {
    /// An empty scratch holding no buffers. Size it for a transformer with
    /// [`TileTransformer::ensure_scratch`] before use; until then it is only
    /// valid for `lanes == 0` work (i.e. nothing).
    ///
    /// This is the persistent-arena entry point: a worker slot holds one
    /// `TransformScratch` for its whole life and re-`ensure`s it per layer,
    /// so the buffers grow to the high-water mark once and are then reused
    /// allocation-free.
    pub fn empty() -> Self {
        Self {
            lanes: 0,
            tmp: Vec::new(),
            cse: Vec::new(),
            tmp_i32: Vec::new(),
            cse_i32: Vec::new(),
        }
    }
}

impl Default for TransformScratch {
    fn default() -> Self {
        Self::empty()
    }
}

/// Compiled transforms for one `F(m×m, r×r)` algorithm.
///
/// Each 1-D codelet exists in two forms: the interpreted [`Codelet`]
/// (reference oracle) and its lowered [`Tape`] (the production path,
/// executed over explicit SIMD vectors — see [`crate::tape`]). The
/// `*_compiled` / fused methods are bitwise identical to their
/// interpreted counterparts.
#[derive(Debug)]
pub struct TileTransformer {
    w: WinogradMatrices,
    bt_code: Codelet,
    g_code: Codelet,
    at_code: Codelet,
    bt_tape: Tape,
    g_tape: Tape,
    at_tape: Tape,
}

impl TileTransformer {
    /// Build the codelets for `F(m, r)` and lower them to tapes.
    pub fn new(m: usize, r: usize) -> Result<Self, MatrixError> {
        let w = WinogradMatrices::for_tile(m, r)?;
        let bt_code = Codelet::generate(&w.bt);
        let g_code = Codelet::generate(&w.g);
        let at_code = Codelet::generate(&w.at);
        Ok(Self {
            bt_tape: Tape::lower(&bt_code),
            g_tape: Tape::lower(&g_code),
            at_tape: Tape::lower(&at_code),
            bt_code,
            g_code,
            at_code,
            w,
        })
    }

    /// The lowered `Bᵀ` tape (used by the transforms micro-bench).
    pub fn bt_tape(&self) -> &Tape {
        &self.bt_tape
    }

    /// The lowered `G` tape.
    pub fn g_tape(&self) -> &Tape {
        &self.g_tape
    }

    /// The lowered `Aᵀ` tape.
    pub fn at_tape(&self) -> &Tape {
        &self.at_tape
    }

    /// The underlying matrices.
    pub fn matrices(&self) -> &WinogradMatrices {
        &self.w
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.w.m()
    }

    /// Filter size `r`.
    pub fn r(&self) -> usize {
        self.w.r()
    }

    /// Input tile size `n`.
    pub fn n(&self) -> usize {
        self.w.n()
    }

    /// Allocate scratch sized for `lanes`-wide execution.
    pub fn make_scratch(&self, lanes: usize) -> TransformScratch {
        let mut s = TransformScratch::empty();
        self.ensure_scratch(&mut s, lanes);
        s
    }

    /// Grow (never shrink) `s` so it can serve this transformer at `lanes`
    /// width. Idempotent and allocation-free once the buffers have reached
    /// the high-water mark across all layers sharing the scratch.
    pub fn ensure_scratch(&self, s: &mut TransformScratch, lanes: usize) {
        let n = self.n();
        let max_temps = self
            .bt_code
            .n_temps()
            .max(self.g_code.n_temps())
            .max(self.at_code.n_temps())
            .max(1);
        s.lanes = lanes;
        let tmp_len = n * n * lanes;
        let cse_len = max_temps * lanes;
        if s.tmp.len() < tmp_len {
            s.tmp.resize(tmp_len, 0.0);
        }
        if s.cse.len() < cse_len {
            s.cse.resize(cse_len, 0.0);
        }
        if s.tmp_i32.len() < tmp_len {
            s.tmp_i32.resize(tmp_len, 0);
        }
        if s.cse_i32.len() < cse_len {
            s.cse_i32.resize(cse_len, 0);
        }
    }

    /// Input transform `V = Bᵀ d B`.
    ///
    /// `d` and `v` are `n×n` tiles of lane groups, row-major
    /// (`element (i,j) = buf[(i·n + j)·lanes ..][..lanes]`).
    pub fn input_tile_f32(&self, d: &[f32], v: &mut [f32], s: &mut TransformScratch) {
        let n = self.n();
        let lanes = s.lanes;
        debug_assert!(d.len() >= n * n * lanes && v.len() >= n * n * lanes);
        // Column pass: tmp[:, j] = Bᵀ · d[:, j].
        for j in 0..n {
            self.bt_code.execute_f32(
                lanes,
                d,
                j * lanes,
                n * lanes,
                &mut s.tmp,
                j * lanes,
                n * lanes,
                &mut s.cse,
            );
        }
        // Row pass: v[i, :] = Bᵀ · tmp[i, :]  (i.e. tmp · B).
        for i in 0..n {
            self.bt_code.execute_f32(
                lanes,
                &s.tmp,
                i * n * lanes,
                lanes,
                v,
                i * n * lanes,
                lanes,
                &mut s.cse,
            );
        }
    }

    /// Integer input transform (down-scaling baseline): `Bᵀ` is integral by
    /// construction, so the transform of an INT8 spatial-domain tile is
    /// exact in `i32`.
    pub fn input_tile_i32(&self, d: &[i32], v: &mut [i32], s: &mut TransformScratch) {
        let n = self.n();
        let lanes = s.lanes;
        debug_assert!(d.len() >= n * n * lanes && v.len() >= n * n * lanes);
        for j in 0..n {
            self.bt_code.execute_i32(
                lanes,
                d,
                j * lanes,
                n * lanes,
                &mut s.tmp_i32,
                j * lanes,
                n * lanes,
                &mut s.cse_i32,
            );
        }
        for i in 0..n {
            self.bt_code.execute_i32(
                lanes,
                &s.tmp_i32,
                i * n * lanes,
                lanes,
                v,
                i * n * lanes,
                lanes,
                &mut s.cse_i32,
            );
        }
    }

    /// Filter transform `U = G g Gᵀ`; `g` is `r×r`, `u` is `n×n`.
    pub fn filter_tile_f32(&self, g: &[f32], u: &mut [f32], s: &mut TransformScratch) {
        let (n, r) = (self.n(), self.r());
        let lanes = s.lanes;
        debug_assert!(g.len() >= r * r * lanes && u.len() >= n * n * lanes);
        // Column pass: tmp (n×r) column j = G · g[:, j].
        for j in 0..r {
            self.g_code.execute_f32(
                lanes,
                g,
                j * lanes,
                r * lanes,
                &mut s.tmp,
                j * lanes,
                r * lanes,
                &mut s.cse,
            );
        }
        // Row pass: u[i, :] = G · tmp[i, :]  (i.e. tmp · Gᵀ).
        for i in 0..n {
            self.g_code.execute_f32(
                lanes,
                &s.tmp,
                i * r * lanes,
                lanes,
                u,
                i * n * lanes,
                lanes,
                &mut s.cse,
            );
        }
    }

    /// Output transform `y = Aᵀ Z A`; `z` is `n×n`, `y` is `m×m`.
    pub fn output_tile_f32(&self, z: &[f32], y: &mut [f32], s: &mut TransformScratch) {
        let (n, m) = (self.n(), self.m());
        let lanes = s.lanes;
        debug_assert!(z.len() >= n * n * lanes && y.len() >= m * m * lanes);
        // Column pass: tmp (m×n) column j = Aᵀ · z[:, j].
        for j in 0..n {
            self.at_code.execute_f32(
                lanes,
                z,
                j * lanes,
                n * lanes,
                &mut s.tmp,
                j * lanes,
                n * lanes,
                &mut s.cse,
            );
        }
        // Row pass: y[i, :] = Aᵀ · tmp[i, :]  (i.e. tmp · A).
        for i in 0..m {
            self.at_code.execute_f32(
                lanes,
                &s.tmp,
                i * n * lanes,
                lanes,
                y,
                i * m * lanes,
                lanes,
                &mut s.cse,
            );
        }
    }

    // -- compiled (tape) transforms -------------------------------------

    /// Compiled [`Self::input_tile_f32`]: same layout, executed on the
    /// lowered tape at vector tier `vt`. Bitwise identical to the
    /// interpreted version.
    pub fn input_tile_f32_compiled(
        &self,
        vt: VecTier,
        d: &[f32],
        v: &mut [f32],
        s: &mut TransformScratch,
    ) {
        let n = self.n();
        let lanes = s.lanes;
        for j in 0..n {
            self.bt_tape
                .execute_f32(vt, lanes, d, j * lanes, n * lanes, &mut s.tmp, j * lanes, n * lanes);
        }
        for i in 0..n {
            self.bt_tape
                .execute_f32(vt, lanes, &s.tmp, i * n * lanes, lanes, v, i * n * lanes, lanes);
        }
    }

    /// Compiled [`Self::filter_tile_f32`].
    pub fn filter_tile_f32_compiled(
        &self,
        vt: VecTier,
        g: &[f32],
        u: &mut [f32],
        s: &mut TransformScratch,
    ) {
        let (n, r) = (self.n(), self.r());
        let lanes = s.lanes;
        for j in 0..r {
            self.g_tape
                .execute_f32(vt, lanes, g, j * lanes, r * lanes, &mut s.tmp, j * lanes, r * lanes);
        }
        for i in 0..n {
            self.g_tape
                .execute_f32(vt, lanes, &s.tmp, i * r * lanes, lanes, u, i * n * lanes, lanes);
        }
    }

    /// Compiled [`Self::output_tile_f32`].
    pub fn output_tile_f32_compiled(
        &self,
        vt: VecTier,
        z: &[f32],
        y: &mut [f32],
        s: &mut TransformScratch,
    ) {
        let (n, m) = (self.n(), self.m());
        let lanes = s.lanes;
        for j in 0..n {
            self.at_tape
                .execute_f32(vt, lanes, z, j * lanes, n * lanes, &mut s.tmp, j * lanes, n * lanes);
        }
        for i in 0..m {
            self.at_tape
                .execute_f32(vt, lanes, &s.tmp, i * n * lanes, lanes, y, i * m * lanes, lanes);
        }
    }

    // -- fused epilogue transforms (the LoWino production path) ----------

    /// Input transform with the **fused quantize epilogue**: the column
    /// pass runs on the compiled tape as usual, and the row pass quantizes
    /// each `V` element group in-register (Eq. 4 with scale
    /// `alphas[t]` for Winograd-domain element `t = i·n + j`, plus the
    /// `+128` compensation when `compensate`) and writes `q` directly as
    /// u8 lanes — the f32 `V` tile is never materialized.
    ///
    /// `q` uses the same `n×n` lane-group layout as `v` in
    /// [`Self::input_tile_f32`]. Bitwise identical to the interpreted
    /// transform followed by `quantize_f32_lanes_i8` per element group.
    pub fn input_tile_quantized(
        &self,
        vt: VecTier,
        d: &[f32],
        alphas: &[f32],
        compensate: bool,
        q: &mut [u8],
        s: &mut TransformScratch,
    ) {
        let n = self.n();
        let lanes = s.lanes;
        debug_assert!(alphas.len() >= n * n);
        for j in 0..n {
            self.bt_tape
                .execute_f32(vt, lanes, d, j * lanes, n * lanes, &mut s.tmp, j * lanes, n * lanes);
        }
        for i in 0..n {
            self.bt_tape.execute_quant_u8(
                vt,
                lanes,
                &s.tmp,
                i * n * lanes,
                lanes,
                alphas,
                i * n,
                1,
                compensate,
                q,
                i * n * lanes,
                lanes,
            );
        }
    }

    /// Output transform with the **fused dequantize prologue**: consumes
    /// the raw `i32` GEMM accumulator tile `z` directly, folding the
    /// `1/(α_V·α_U)` dequantization (Eq. 6) into the column-pass loads.
    /// Element `t = k·n + j` of `z` is scaled by `inv_alphas[t·stride]`
    /// (`stride = 1` per-element, `stride = 0` broadcasts a single scale).
    ///
    /// Bitwise identical to `dequantize_i32_lanes` into a scratch f32 tile
    /// followed by [`Self::output_tile_f32`].
    #[allow(clippy::too_many_arguments)]
    pub fn output_tile_dequantized(
        &self,
        vt: VecTier,
        z: &[i32],
        inv_alphas: &[f32],
        stride: usize,
        y: &mut [f32],
        s: &mut TransformScratch,
    ) {
        let (n, m) = (self.n(), self.m());
        let lanes = s.lanes;
        debug_assert!(stride == 0 || inv_alphas.len() >= n * n);
        for j in 0..n {
            self.at_tape.execute_dequant_f32(
                vt,
                lanes,
                z,
                j * lanes,
                n * lanes,
                inv_alphas,
                j * stride,
                n * stride,
                &mut s.tmp,
                j * lanes,
                n * lanes,
            );
        }
        for i in 0..m {
            self.at_tape
                .execute_f32(vt, lanes, &s.tmp, i * n * lanes, lanes, y, i * m * lanes, lanes);
        }
    }

    /// [`Self::output_tile_dequantized`] with the graph engine's fused
    /// **post-op epilogue** on the row pass: per output element, add the
    /// per-lane `bias`, add the matching element of the `m×m` lane-group
    /// `residual` tile, then ReLU — all in-register before the single
    /// store into `y` (see [`crate::tape::TapePostOps`] for the exact
    /// order and bitwise contract).
    ///
    /// Bitwise identical to [`Self::output_tile_dequantized`] followed by
    /// the scalar `((y + bias) + res).max(0.0)` per element.
    #[allow(clippy::too_many_arguments)]
    pub fn output_tile_dequantized_post(
        &self,
        vt: VecTier,
        z: &[i32],
        inv_alphas: &[f32],
        stride: usize,
        post: crate::tape::TapePostOps<'_>,
        y: &mut [f32],
        s: &mut TransformScratch,
    ) {
        let (n, m) = (self.n(), self.m());
        let lanes = s.lanes;
        debug_assert!(stride == 0 || inv_alphas.len() >= n * n);
        for j in 0..n {
            self.at_tape.execute_dequant_f32(
                vt,
                lanes,
                z,
                j * lanes,
                n * lanes,
                inv_alphas,
                j * stride,
                n * stride,
                &mut s.tmp,
                j * lanes,
                n * lanes,
            );
        }
        for i in 0..m {
            // Row `i` of the `m×m` residual tile lines up with row `i` of
            // `y`: slot `j` at `base + (i·m + j)·stride`.
            let row_post = crate::tape::TapePostOps {
                bias: post.bias,
                residual: post
                    .residual
                    .map(|(buf, base, stride)| (buf, base + i * m * stride, stride)),
                relu: post.relu,
            };
            self.at_tape.execute_f32_post(
                vt,
                lanes,
                &s.tmp,
                i * n * lanes,
                lanes,
                row_post,
                y,
                i * m * lanes,
                lanes,
            );
        }
    }
}

/// One-shot input transform of a scalar (`lanes = 1`) tile — reference use.
pub fn input_transform_f32(m: usize, r: usize, d: &[f32]) -> Result<Vec<f32>, MatrixError> {
    let t = TileTransformer::new(m, r)?;
    let n = t.n();
    let mut v = vec![0.0; n * n];
    let mut s = t.make_scratch(1);
    t.input_tile_f32(d, &mut v, &mut s);
    Ok(v)
}

/// One-shot integer input transform of a scalar tile.
pub fn input_transform_i32(m: usize, r: usize, d: &[i32]) -> Result<Vec<i32>, MatrixError> {
    let t = TileTransformer::new(m, r)?;
    let n = t.n();
    let mut v = vec![0; n * n];
    let mut s = t.make_scratch(1);
    t.input_tile_i32(d, &mut v, &mut s);
    Ok(v)
}

/// One-shot filter transform of a scalar tile.
pub fn filter_transform_f32(m: usize, r: usize, g: &[f32]) -> Result<Vec<f32>, MatrixError> {
    let t = TileTransformer::new(m, r)?;
    let n = t.n();
    let mut u = vec![0.0; n * n];
    let mut s = t.make_scratch(1);
    t.filter_tile_f32(g, &mut u, &mut s);
    Ok(u)
}

/// One-shot output transform of a scalar tile.
pub fn output_transform_f32(m: usize, r: usize, z: &[f32]) -> Result<Vec<f32>, MatrixError> {
    let t = TileTransformer::new(m, r)?;
    let mut y = vec![0.0; m * m];
    let mut s = t.make_scratch(1);
    t.output_tile_f32(z, &mut y, &mut s);
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: out = L · tile · Lᵀ-style products via explicit loops.
    fn dense_2d(l: &[f32], lr: usize, lc: usize, tile: &[f32], tn: usize) -> Vec<f32> {
        // first: e = L (lr×lc) · tile (lc×tn)
        let mut e = vec![0.0f32; lr * tn];
        for i in 0..lr {
            for j in 0..tn {
                for k in 0..lc {
                    e[i * tn + j] += l[i * lc + k] * tile[k * tn + j];
                }
            }
        }
        // second: out = e · Lᵀ  => out (lr×lr)
        let mut out = vec![0.0f32; lr * lr];
        for i in 0..lr {
            for j in 0..lr {
                for k in 0..tn {
                    out[i * lr + j] += e[i * tn + k] * l[j * lc + k];
                }
            }
        }
        out
    }

    fn tile(n: usize, seed: f32) -> Vec<f32> {
        (0..n * n)
            .map(|i| ((i as f32 + seed) * 0.7).sin() * 2.0)
            .collect()
    }

    #[test]
    fn input_transform_matches_dense_btdb() {
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3)] {
            let t = TileTransformer::new(m, r).unwrap();
            let n = t.n();
            let d = tile(n, 0.3);
            let v = input_transform_f32(m, r, &d).unwrap();
            let bt = t.matrices().bt.to_f32();
            let want = dense_2d(&bt, n, n, &d, n);
            for (a, b) in v.iter().zip(&want) {
                assert!((a - b).abs() < 1e-2 * b.abs().max(1.0), "F({m},{r}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn filter_transform_matches_dense_ggg() {
        for (m, r) in [(2usize, 3usize), (4, 3)] {
            let t = TileTransformer::new(m, r).unwrap();
            let n = t.n();
            let g = tile(r, 1.7);
            let u = filter_transform_f32(m, r, &g).unwrap();
            let gm = t.matrices().g.to_f32();
            let want = dense_2d(&gm, n, r, &g, r);
            for (a, b) in u.iter().zip(&want) {
                assert!((a - b).abs() < 1e-3, "F({m},{r}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn output_transform_matches_dense_atza() {
        for (m, r) in [(2usize, 3usize), (4, 3)] {
            let t = TileTransformer::new(m, r).unwrap();
            let n = t.n();
            let z = tile(n, 2.9);
            let y = output_transform_f32(m, r, &z).unwrap();
            let at = t.matrices().at.to_f32();
            let want = dense_2d(&at, m, n, &z, n);
            for (a, b) in y.iter().zip(&want) {
                assert!((a - b).abs() < 1e-2, "F({m},{r}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn full_winograd_tile_equals_direct_convolution() {
        // The end-to-end identity over one tile and one channel:
        // Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A == valid correlation of d with g.
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (3, 3)] {
            let t = TileTransformer::new(m, r).unwrap();
            let n = t.n();
            let d = tile(n, 0.11);
            let g = tile(r, 5.2);
            let v = input_transform_f32(m, r, &d).unwrap();
            let u = filter_transform_f32(m, r, &g).unwrap();
            let z: Vec<f32> = v.iter().zip(&u).map(|(a, b)| a * b).collect();
            let y = output_transform_f32(m, r, &z).unwrap();
            for oy in 0..m {
                for ox in 0..m {
                    let mut want = 0.0f32;
                    for ky in 0..r {
                        for kx in 0..r {
                            want += d[(oy + ky) * n + (ox + kx)] * g[ky * r + kx];
                        }
                    }
                    let got = y[oy * m + ox];
                    let tol = 1e-3 * want.abs().max(1.0) * (m as f32);
                    assert!(
                        (got - want).abs() < tol,
                        "F({m},{r}) at ({oy},{ox}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn integer_input_transform_exact_range_growth() {
        // Integer transform of a max-magnitude INT8 tile must stay within
        // growth(BT)^2 · 127 (paper §2.2) — checked exactly in i32.
        let t = TileTransformer::new(4, 3).unwrap();
        let n = t.n();
        let d = vec![127i32; n * n];
        let v = input_transform_i32(4, 3, &d).unwrap();
        let max = v.iter().map(|x| x.abs()).max().unwrap();
        assert!(max <= 100 * 127, "max={max}");
        // And alternating-sign worst case.
        let d: Vec<i32> = (0..n * n)
            .map(|i| if (i / n + i % n).is_multiple_of(2) { 127 } else { -127 })
            .collect();
        let v = input_transform_i32(4, 3, &d).unwrap();
        assert!(v.iter().all(|x| x.abs() <= 100 * 127));
    }

    #[test]
    fn ensure_scratch_grows_then_reuses() {
        let small = TileTransformer::new(2, 3).unwrap();
        let big = TileTransformer::new(6, 3).unwrap();
        let mut s = TransformScratch::empty();
        small.ensure_scratch(&mut s, 16);
        big.ensure_scratch(&mut s, 64);
        let tmp_ptr = s.tmp.as_ptr();
        // Shrinking requests keep the high-water buffers (no realloc, no move).
        small.ensure_scratch(&mut s, 16);
        assert_eq!(s.tmp.as_ptr(), tmp_ptr);
        assert_eq!(s.lanes, 16);
        // And the shared scratch still computes correctly at each width.
        let n = small.n();
        let d: Vec<f32> = (0..n * n * 16).map(|i| (i as f32).cos()).collect();
        let mut v = vec![0.0f32; n * n * 16];
        small.input_tile_f32(&d, &mut v, &mut s);
        for lane in [0usize, 15] {
            let d1: Vec<f32> = (0..n * n).map(|e| d[e * 16 + lane]).collect();
            let v1 = input_transform_f32(2, 3, &d1).unwrap();
            for e in 0..n * n {
                assert!((v[e * 16 + lane] - v1[e]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn lane_wise_matches_scalar() {
        let t = TileTransformer::new(4, 3).unwrap();
        let n = t.n();
        let lanes = 64;
        let d: Vec<f32> = (0..n * n * lanes).map(|i| ((i % 97) as f32 - 48.0) / 7.0).collect();
        let mut v = vec![0.0f32; n * n * lanes];
        let mut s = t.make_scratch(lanes);
        t.input_tile_f32(&d, &mut v, &mut s);
        // Check a few lanes against scalar execution.
        for lane in [0usize, 1, 31, 63] {
            let d1: Vec<f32> = (0..n * n).map(|e| d[e * lanes + lane]).collect();
            let v1 = input_transform_f32(4, 3, &d1).unwrap();
            for e in 0..n * n {
                assert!((v[e * lanes + lane] - v1[e]).abs() < 1e-3);
            }
        }
    }
}
