//! Exact rational arithmetic over `i128`.
//!
//! Winograd transformation matrices have small rational entries (e.g. the
//! `1/2`, `1/4`, `1/24` coefficients in `G` for larger tiles). Generating
//! them and verifying the minimal-filtering identity in floating point would
//! hide construction bugs behind rounding; instead all generation and
//! identity tests run over exact rationals.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// An exact rational number `num/den` with `den > 0`, always normalised.
///
/// Arithmetic panics on overflow of `i128` — far beyond anything the small
/// Winograd matrices produce — rather than silently wrapping.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den`, normalising sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Integer constructor.
    pub const fn int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (after normalisation).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Exact power with non-negative integer exponent.
    pub fn pow(&self, mut e: u32) -> Self {
        let mut base = *self;
        let mut acc = Rational::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Nearest `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Nearest `f32` value.
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let g = gcd(self.den, rhs.den);
        let l = self.den / g * rhs.den; // lcm, reduces overflow pressure
        let num = self
            .num
            .checked_mul(l / self.den)
            .and_then(|a| rhs.num.checked_mul(l / rhs.den).and_then(|b| a.checked_add(b)))
            .expect("Rational add overflow");
        Rational::new(num, l)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("Rational mul overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("Rational mul overflow");
        Rational::new(num, den)
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division really is multiplication by the reciprocal here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rational::ZERO);
        assert_eq!(r(1, 2).denom(), 2);
        assert_eq!(r(1, -2).numer(), -1);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(1, 2) * r(2, 3), r(1, 3));
        assert_eq!(r(1, 2) / r(3, 4), r(2, 3));
        assert_eq!(-r(1, 2), r(-1, 2));
        let mut x = r(1, 4);
        x += r(1, 4);
        assert_eq!(x, r(1, 2));
        x *= Rational::int(4);
        assert_eq!(x, Rational::int(2));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(r(1, 2).pow(0), Rational::ONE);
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(-2, 1).pow(2), Rational::int(4));
        assert_eq!(r(3, 4).recip(), r(4, 3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert!(r(7, 3) > Rational::int(2));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(1, 4).to_f32(), 0.25);
        assert_eq!(Rational::from(-3i64), Rational::int(-3));
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(!r(1, 2).is_zero());
        assert!(Rational::int(5).is_integer());
        assert!(!r(5, 2).is_integer());
        assert_eq!(r(-5, 2).abs(), r(5, 2));
    }
}
