//! # lowino-winograd
//!
//! Winograd minimal-filtering substrate: transformation-matrix generation,
//! codelet generation for the transforms, and the transforms themselves.
//!
//! The 2-D Winograd convolution (paper Eq. 1) is
//!
//! ```text
//! y_k = Aᵀ ( Σ_c (G g_{k,c} Gᵀ) ⊙ (Bᵀ d_c B) ) A
//! ```
//!
//! This crate provides:
//!
//! * [`rational`] — exact rational arithmetic over `i128`, so matrix
//!   generation and the algebraic-identity tests are error-free;
//! * [`matrices`] — Cook–Toom construction of `Aᵀ`, `G`, `Bᵀ` for arbitrary
//!   `F(m, r)` (the wincnn equivalent the paper relies on), plus the
//!   canonical Lavin matrices for `F(2,3)`, `F(4,3)`, `F(6,3)`;
//! * [`codelet`] — the transformation codelet generator of paper §4.2.4
//!   (Fig. 4): an expression IR derived from a transform matrix with
//!   zero-elimination and common-subexpression elimination, executed
//!   lane-wise over 64-channel groups;
//! * [`tape`] — codelet *compilation* (§4.2.4): lowering to a flat
//!   `(dst, src, coeff)` instruction tape with register-resident
//!   temporaries, executed over explicit three-tier f32 SIMD vectors with
//!   fused quantize/dequantize epilogues;
//! * [`transform`] — input (`Bᵀ d B`), filter (`G g Gᵀ`) and output
//!   (`Aᵀ Z A`) tile transforms in `f32` and the integer variants used by
//!   the down-scaling / up-casting baselines, in interpreted (reference
//!   oracle) and compiled forms;
//! * [`analysis`] — the value-range-growth analysis of paper §2.2 (the
//!   4× / 100× / ~10⁴× amplification that motivates Winograd-domain
//!   quantization).

pub mod analysis;
pub mod codelet;
pub mod matrices;
pub mod rational;
pub mod tape;
pub mod transform;

pub use analysis::{range_growth_1d, range_growth_2d};
pub use matrices::{WinogradMatrices, F2_3, F4_3, F6_3};
pub use rational::Rational;
pub use tape::{Tape, TapeInstr, TapePostOps};
pub use transform::{
    filter_transform_f32, input_transform_f32, input_transform_i32, output_transform_f32,
    TileTransformer, TransformScratch,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_matrices_exist_for_supported_tile_sizes() {
        for m in [2usize, 4, 6] {
            let w = WinogradMatrices::for_tile(m, 3).unwrap();
            assert_eq!(w.n(), m + 2);
        }
        assert!(WinogradMatrices::for_tile(3, 3).is_ok()); // generated on demand
        assert!(WinogradMatrices::for_tile(0, 3).is_err());
    }
}
