//! Value-range-growth analysis of the Winograd transforms (paper §2.2).
//!
//! The input transform multiplies the data by `Bᵀ` twice (rows then
//! columns), so the worst-case amplification of the value range is the
//! square of the largest row L1 norm of `Bᵀ`:
//!
//! * `F(2,3)`: 2² = **4×**
//! * `F(4,3)`: 10² = **100×**
//! * `F(6,3)`: ~10⁴×
//!
//! exactly the 4× / 100× / 10000× figures the paper quotes. The reciprocal
//! of this growth is the `α` the down-scaling approach must multiply by
//! (§2.3) — the root cause of its accuracy collapse at large tile sizes.

use crate::matrices::{MatrixError, RatMat, WinogradMatrices};
use crate::rational::Rational;

/// Largest row L1 norm of a matrix — the 1-D worst-case amplification.
pub fn l1_growth(m: &RatMat) -> Rational {
    let (rows, cols) = m.dims();
    let mut best = Rational::ZERO;
    for i in 0..rows {
        let mut s = Rational::ZERO;
        for j in 0..cols {
            s += m[(i, j)].abs();
        }
        if s > best {
            best = s;
        }
    }
    best
}

/// 1-D input-transform range growth of `F(m, r)`.
pub fn range_growth_1d(m: usize, r: usize) -> Result<f64, MatrixError> {
    let w = WinogradMatrices::for_tile(m, r)?;
    Ok(l1_growth(&w.bt).to_f64())
}

/// 2-D input-transform range growth of `F(m×m, r×r)` — the paper's
/// 4×/100×/10⁴× amplification factor.
pub fn range_growth_2d(m: usize, r: usize) -> Result<f64, MatrixError> {
    range_growth_1d(m, r).map(|g| g * g)
}

/// The down-scaling factor `α = 1/growth` the oneDNN-style approach applies
/// to the integer-transformed input (paper §2.3: `1/4`, `1/100`, `1/10000`).
pub fn down_scaling_alpha(m: usize, r: usize) -> Result<f64, MatrixError> {
    range_growth_2d(m, r).map(|g| 1.0 / g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_growth_matches_paper_quotes() {
        // §2.2: "the values of the transformed input matrix will increase up
        // to 4× and 100× ... for F(2×2,3×3) and F(4×4,3×3)".
        assert_eq!(range_growth_2d(2, 3).unwrap(), 4.0);
        assert_eq!(range_growth_2d(4, 3).unwrap(), 100.0);
        // §2.3: α = 1/10000 regime for m = 6 (order of magnitude: our
        // generated F(6,3) matrices use reciprocal points, giving growth in
        // the thousands).
        let g6 = range_growth_2d(6, 3).unwrap();
        assert!(g6 > 1_000.0, "g6={g6}");
    }

    #[test]
    fn down_scaling_alpha_is_reciprocal() {
        assert_eq!(down_scaling_alpha(2, 3).unwrap(), 0.25);
        assert_eq!(down_scaling_alpha(4, 3).unwrap(), 0.01);
    }

    #[test]
    fn growth_is_monotonic_in_tile_size() {
        let mut prev = 0.0;
        for m in [2usize, 4, 6] {
            let g = range_growth_2d(m, 3).unwrap();
            assert!(g > prev, "m={m}: {g} <= {prev}");
            prev = g;
        }
    }

    #[test]
    fn growth_bound_is_tight_empirically() {
        // A worst-case INT8 tile must reach (not exceed) the analytic bound
        // for F(2,3), whose Bᵀ has ±1 entries: signs can be chosen to align.
        use crate::transform::input_transform_i32;
        let g = range_growth_2d(2, 3).unwrap() as i32;
        // d chosen so row [1,0,-1,0] and its column pass align: d[0,j]=127,
        // d[2,j]=-127 pattern.
        let n = 4;
        let mut d = vec![0i32; n * n];
        for j in 0..n {
            d[j] = 127; // row 0
            d[2 * n + j] = -127; // row 2
        }
        for i in 0..n {
            d[i * n] = 127;
            d[i * n + 2] = -127;
        }
        d[0] = 127;
        d[2] = -127;
        d[2 * n] = -127;
        d[2 * n + 2] = 127;
        let v = input_transform_i32(2, 3, &d).unwrap();
        let max = v.iter().map(|x| x.abs()).max().unwrap();
        assert_eq!(max, g * 127, "bound should be attained");
    }
}
