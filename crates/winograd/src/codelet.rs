//! Codelet generation for Winograd transforms (paper §4.2.4, Fig. 4).
//!
//! A *codelet* computes `out = M · in` for one transformation matrix `M`,
//! where each `in[j]` / `out[i]` is a lane group (64 channels in the blocked
//! layout). The generator mirrors the paper's pipeline:
//!
//! 1. start from the transformation matrix (exact rationals, wincnn-style);
//! 2. **zero elimination** — terms with zero coefficient are never emitted;
//! 3. **common-subexpression elimination** — coefficient-pair patterns shared
//!    between rows (e.g. `-1·in[2] + 1·in[4]` in Fig. 4) are hoisted into
//!    temporaries, including sign-flipped occurrences;
//! 4. the resulting program is executed lane-wise; the inner loops are
//!    shape-constant and unrolled/vectorised by the compiler (the Rust
//!    equivalent of the paper's generated-and-compiled C++ codelets).

use crate::matrices::RatMat;
use crate::rational::Rational;

/// A value source inside a codelet program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Input slot `j` (row of the operand tile).
    In(usize),
    /// Temporary produced by the CSE pass.
    Temp(usize),
}

/// A linear combination `Σ coeff·source` (the right-hand side of one
/// generated statement).
pub type Expr = Vec<(Source, Rational)>;

/// A compiled transform codelet: temporaries first, then outputs.
#[derive(Debug, Clone)]
pub struct Codelet {
    n_in: usize,
    n_out: usize,
    temps: Vec<Expr>,
    outs: Vec<Expr>,
    /// f32 renderings, parallel to `temps`/`outs`, used by the executor.
    temps_f32: Vec<Vec<(Source, f32)>>,
    outs_f32: Vec<Vec<(Source, f32)>>,
}

impl Codelet {
    /// Generate a codelet for `out = M·in` with zero-elimination and CSE.
    pub fn generate(m: &RatMat) -> Self {
        let (rows, cols) = m.dims();
        // Zero elimination: dense rows -> sparse term lists.
        let mut outs: Vec<Expr> = (0..rows)
            .map(|i| {
                (0..cols)
                    .filter(|&j| !m[(i, j)].is_zero())
                    .map(|j| (Source::In(j), m[(i, j)]))
                    .collect()
            })
            .collect();

        // Greedy pairwise CSE: hoist any (term, term) pattern — up to a
        // global sign — that appears in at least two rows.
        let mut temps: Vec<Expr> = Vec::new();
        while let Some((pat, hits)) = best_shared_pair(&outs) {
            if hits < 2 {
                break;
            }
            let t = temps.len();
            temps.push(vec![pat.0, pat.1]);
            for row in outs.iter_mut() {
                replace_pair(row, &pat, t);
            }
            // Guard against pathological blow-up.
            if temps.len() > rows * cols {
                break;
            }
        }

        let render = |e: &Expr| -> Vec<(Source, f32)> {
            e.iter().map(|&(s, c)| (s, c.to_f32())).collect()
        };
        let temps_f32 = temps.iter().map(render).collect();
        let outs_f32 = outs.iter().map(render).collect();
        Codelet {
            n_in: cols,
            n_out: rows,
            temps,
            outs,
            temps_f32,
            outs_f32,
        }
    }

    /// Number of input slots.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output slots.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of temporaries introduced by CSE.
    pub fn n_temps(&self) -> usize {
        self.temps.len()
    }

    /// f32-rendered temporary expressions, in evaluation order (tape
    /// lowering input).
    pub(crate) fn temps_f32(&self) -> &[Vec<(Source, f32)>] {
        &self.temps_f32
    }

    /// f32-rendered output expressions (tape lowering input).
    pub(crate) fn outs_f32(&self) -> &[Vec<(Source, f32)>] {
        &self.outs_f32
    }

    /// Multiply+add operation count per lane — the metric the CSE pass
    /// minimises (used by tests and the ablation bench).
    pub fn op_count(&self) -> usize {
        self.temps.iter().chain(self.outs.iter()).map(Vec::len).sum()
    }

    /// True if every coefficient is an integer (required by the integer
    /// executor used in the down-scaling baseline).
    pub fn is_integral(&self) -> bool {
        self.temps
            .iter()
            .chain(self.outs.iter())
            .flatten()
            .all(|(_, c)| c.is_integer())
    }

    /// Execute over `f32` lanes with strided slot addressing.
    ///
    /// Slot `j` of the input starts at `input[in_base + j·in_stride]`; slot
    /// `i` of the output at `output[out_base + i·out_stride]`; each slot is
    /// `lanes` consecutive values. `scratch` must hold
    /// `n_temps()·lanes` values.
    #[inline]
    pub fn execute_f32(
        &self,
        lanes: usize,
        input: &[f32],
        in_base: usize,
        in_stride: usize,
        output: &mut [f32],
        out_base: usize,
        out_stride: usize,
        scratch: &mut [f32],
    ) {
        debug_assert!(scratch.len() >= self.temps_f32.len() * lanes);
        // Temporaries; temp t may reference In slots and temps < t.
        for (t, expr) in self.temps_f32.iter().enumerate() {
            let (done, rest) = scratch.split_at_mut(t * lanes);
            let dst = &mut rest[..lanes];
            accumulate_f32(expr, lanes, input, in_base, in_stride, done, dst);
        }
        // Outputs (reference In slots and temps). `output` must not alias
        // `input` — the transforms always write to a distinct buffer.
        for (i, expr) in self.outs_f32.iter().enumerate() {
            let base = out_base + i * out_stride;
            let dst = &mut output[base..base + lanes];
            accumulate_f32(expr, lanes, input, in_base, in_stride, scratch, dst);
        }
    }

    /// Execute over `i32` lanes (integer transforms for the down-scaling /
    /// up-casting baselines). Accumulation is in `i32`; exact for all
    /// supported `F(m, r)` on INT8-range inputs (worst-case magnitude
    /// `growth² · 127 < 2³¹`).
    ///
    /// # Panics
    ///
    /// Panics if the codelet is not integral (see [`Codelet::is_integral`]).
    #[inline]
    pub fn execute_i32(
        &self,
        lanes: usize,
        input: &[i32],
        in_base: usize,
        in_stride: usize,
        output: &mut [i32],
        out_base: usize,
        out_stride: usize,
        scratch: &mut [i32],
    ) {
        assert!(self.is_integral(), "integer execution of fractional codelet");
        debug_assert!(scratch.len() >= self.temps.len() * lanes);
        for (t, expr) in self.temps.iter().enumerate() {
            let (done, rest) = scratch.split_at_mut(t * lanes);
            let dst = &mut rest[..lanes];
            accumulate_i32(expr, lanes, input, in_base, in_stride, done, dst);
        }
        for (i, expr) in self.outs.iter().enumerate() {
            let base = out_base + i * out_stride;
            let dst = &mut output[base..base + lanes];
            accumulate_i32(expr, lanes, input, in_base, in_stride, scratch, dst);
        }
    }
}

// -- executor helpers ---------------------------------------------------

#[inline]
fn accumulate_f32(
    expr: &[(Source, f32)],
    lanes: usize,
    input: &[f32],
    in_base: usize,
    in_stride: usize,
    scratch: &[f32],
    dst: &mut [f32],
) {
    dst[..lanes].fill(0.0);
    for &(src, coeff) in expr {
        let s = match src {
            Source::In(j) => &input[in_base + j * in_stride..][..lanes],
            Source::Temp(t) => &scratch[t * lanes..][..lanes],
        };
        for l in 0..lanes {
            dst[l] += coeff * s[l];
        }
    }
}

#[inline]
fn accumulate_i32(
    expr: &[(Source, Rational)],
    lanes: usize,
    input: &[i32],
    in_base: usize,
    in_stride: usize,
    scratch: &[i32],
    dst: &mut [i32],
) {
    dst[..lanes].fill(0);
    for &(src, coeff) in expr {
        let c = coeff.numer() as i32;
        let s = match src {
            Source::In(j) => &input[in_base + j * in_stride..][..lanes],
            Source::Temp(t) => &scratch[t * lanes..][..lanes],
        };
        for l in 0..lanes {
            dst[l] += c * s[l];
        }
    }
}

// -- CSE pass helpers ----------------------------------------------------

type Pair = ((Source, Rational), (Source, Rational));

/// Find the (canonicalised) pair of terms shared by the most rows, counting
/// sign-flipped occurrences.
fn best_shared_pair(rows: &[Expr]) -> Option<(Pair, usize)> {
    let mut best: Option<(Pair, usize)> = None;
    let mut candidates: Vec<Pair> = Vec::new();
    for row in rows {
        for a in 0..row.len() {
            for b in (a + 1)..row.len() {
                candidates.push(canonical_pair(row[a], row[b]));
            }
        }
    }
    candidates.sort_by_key(pair_key);
    candidates.dedup();
    for pat in candidates {
        let hits = rows.iter().filter(|r| find_pair(r, &pat).is_some()).count();
        if best.as_ref().is_none_or(|(_, h)| hits > *h) {
            best = Some((pat, hits));
        }
    }
    best
}

/// Canonical form: first term has the lower source index and positive
/// coefficient sign (the global sign is recoverable at substitution time).
fn canonical_pair(a: (Source, Rational), b: (Source, Rational)) -> Pair {
    let (x, y) = if source_key(a.0) <= source_key(b.0) {
        (a, b)
    } else {
        (b, a)
    };
    if x.1 < Rational::ZERO {
        ((x.0, -x.1), (y.0, -y.1))
    } else {
        (x, y)
    }
}

fn source_key(s: Source) -> (u8, usize) {
    match s {
        Source::In(j) => (0, j),
        Source::Temp(t) => (1, t),
    }
}

fn pair_key(p: &Pair) -> (u8, usize, i128, i128, u8, usize, i128, i128) {
    (
        source_key(p.0 .0).0,
        source_key(p.0 .0).1,
        p.0 .1.numer(),
        p.0 .1.denom(),
        source_key(p.1 .0).0,
        source_key(p.1 .0).1,
        p.1 .1.numer(),
        p.1 .1.denom(),
    )
}

/// If `row` contains the pattern (possibly sign-flipped), return the sign.
fn find_pair(row: &Expr, pat: &Pair) -> Option<Rational> {
    for sign in [Rational::ONE, -Rational::ONE] {
        let want0 = (pat.0 .0, pat.0 .1 * sign);
        let want1 = (pat.1 .0, pat.1 .1 * sign);
        if row.contains(&want0) && row.contains(&want1) {
            return Some(sign);
        }
    }
    None
}

/// Replace an occurrence of `pat` in `row` by `sign·Temp(t)`.
fn replace_pair(row: &mut Expr, pat: &Pair, t: usize) {
    if let Some(sign) = find_pair(row, pat) {
        row.retain(|&term| term != (pat.0 .0, pat.0 .1 * sign) && term != (pat.1 .0, pat.1 .1 * sign));
        row.push((Source::Temp(t), sign));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::WinogradMatrices;

    fn run_dense(m: &RatMat, input: &[f32]) -> Vec<f32> {
        let (rows, cols) = m.dims();
        (0..rows)
            .map(|i| (0..cols).map(|j| m[(i, j)].to_f32() * input[j]).sum())
            .collect()
    }

    fn check_matches_dense(m: &RatMat) {
        let code = Codelet::generate(m);
        let (rows, cols) = m.dims();
        let input: Vec<f32> = (0..cols).map(|j| (j as f32 + 1.0) * 0.37 - 1.0).collect();
        let mut out = vec![0.0f32; rows];
        let mut scratch = vec![0.0f32; code.n_temps().max(1)];
        code.execute_f32(1, &input, 0, 1, &mut out, 0, 1, &mut scratch);
        let want = run_dense(m, &input);
        for (a, b) in out.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4, "{out:?} vs {want:?}");
        }
    }

    #[test]
    fn codelets_match_dense_for_all_transform_matrices() {
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (3, 5)] {
            let w = WinogradMatrices::for_tile(m, r).unwrap();
            check_matches_dense(&w.bt);
            check_matches_dense(&w.g);
            check_matches_dense(&w.at);
        }
    }

    #[test]
    fn zero_elimination_reduces_ops() {
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.bt);
        let dense_ops = 6 * 6;
        // Bᵀ⟨4,3⟩ has 22 nonzeros; ops must not exceed that (CSE keeps the
        // total term count at worst equal while hoisting shared work).
        assert!(code.op_count() <= 22, "ops={}", code.op_count());
        assert!(code.op_count() < dense_ops);
    }

    #[test]
    fn cse_finds_shared_pairs_in_f4_3_bt() {
        // Rows 3 and 4 of Bᵀ⟨4,3⟩ are [0,∓2,-1,±2,1,0] — they share the
        // (-1·in[2], +1·in[4]) pattern of paper Fig. 4 (up to sign pairing),
        // which must be hoisted into a temporary so the shared sum is
        // computed once instead of per row.
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.bt);
        assert!(code.n_temps() >= 1, "expected CSE to fire");
        assert!(code.op_count() <= 22, "ops={}", code.op_count());
    }

    #[test]
    fn lane_execution_matches_scalar_execution() {
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.bt);
        let lanes = 8;
        let input: Vec<f32> = (0..6 * lanes).map(|i| (i as f32 * 0.13).sin()).collect();
        let mut out = vec![0.0f32; 6 * lanes];
        let mut scratch = vec![0.0f32; code.n_temps().max(1) * lanes];
        code.execute_f32(lanes, &input, 0, lanes, &mut out, 0, lanes, &mut scratch);
        // Scalar per-lane check.
        for l in 0..lanes {
            let scalar_in: Vec<f32> = (0..6).map(|j| input[j * lanes + l]).collect();
            let want = run_dense(&w.bt, &scalar_in);
            for i in 0..6 {
                assert!((out[i * lanes + l] - want[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn strided_addressing() {
        // Column-wise access of a 4x4 tile stored row-major with lanes=2.
        let w = WinogradMatrices::lavin_f2_3();
        let code = Codelet::generate(&w.bt);
        let lanes = 2;
        let n = 4;
        let tile: Vec<f32> = (0..n * n * lanes).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; n * n * lanes];
        let mut scratch = vec![0.0f32; code.n_temps().max(1) * lanes];
        let col = 1;
        code.execute_f32(
            lanes,
            &tile,
            col * lanes,
            n * lanes,
            &mut out,
            col * lanes,
            n * lanes,
            &mut scratch,
        );
        for i in 0..n {
            let scalar_in: Vec<f32> = (0..n).map(|k| tile[(k * n + col) * lanes]).collect();
            let want = run_dense(&w.bt, &scalar_in);
            assert!((out[(i * n + col) * lanes] - want[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn integer_execution_exact() {
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.bt);
        assert!(code.is_integral());
        let input: Vec<i32> = vec![3, -7, 11, 127, -128, 55];
        let mut out = vec![0i32; 6];
        let mut scratch = vec![0i32; code.n_temps().max(1)];
        code.execute_i32(1, &input, 0, 1, &mut out, 0, 1, &mut scratch);
        for i in 0..6 {
            let want: i64 = (0..6)
                .map(|j| w.bt[(i, j)].numer() as i64 * i64::from(input[j]))
                .sum();
            assert_eq!(i64::from(out[i]), want);
        }
    }

    #[test]
    #[should_panic(expected = "fractional codelet")]
    fn integer_execution_rejects_fractional() {
        let w = WinogradMatrices::lavin_f2_3();
        let code = Codelet::generate(&w.g); // G has 1/2 entries
        let mut out = vec![0i32; 4];
        let mut scratch = vec![0i32; code.n_temps().max(1)];
        code.execute_i32(1, &[1, 2, 3], 0, 1, &mut out, 0, 1, &mut scratch);
    }
}
