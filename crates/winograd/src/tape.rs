//! Codelet **compilation**: lower a generated [`Codelet`] to a flat
//! instruction tape and execute it over explicit SIMD vectors.
//!
//! The paper JIT-compiles its transform codelets to native code (§4.2.4);
//! the interpreted executor in [`codelet`](crate::codelet) walks
//! `Vec<(Source, f32)>` term lists per lane group, paying dispatch and
//! bounds-check cost on every term. The tape is the compiled form: one
//! dense `dst += coeff · src` triple per term, operating on a small
//! **register file** — transform matrices are at most 8×8 with a handful
//! of CSE temporaries, so every input slot, temporary and output of a 1-D
//! codelet fits in vector registers for the whole program. The executor
//! loads each input slot once, streams the triples, and stores (or
//! *fuses*) the outputs:
//!
//! * [`Tape::execute_f32`] — plain f32-in/f32-out, the compiled twin of
//!   [`Codelet::execute_f32`];
//! * [`Tape::execute_quant_u8`] — the fused **quantize epilogue** (paper
//!   Eq. 4 + the §4.2.1 `+128` compensation): output slots are quantized
//!   in-register and emitted as `u8` lanes, so the input-transform row
//!   pass writes `V` directly in its low-precision GEMM layout;
//! * [`Tape::execute_dequant_f32`] — the fused **dequantize prologue**
//!   (Eq. 6): input slots are raw `i32` GEMM accumulators, converted and
//!   scaled by `1/(α_V·α_U)` at load time, so the output-transform column
//!   pass consumes `Z` without a separate dequantization pass.
//!
//! Every path is bitwise identical to the interpreted executor composed
//! with the scalar `lowino-simd` conversions (for finite values — see
//! `lowino_simd::vecf32`); the interpreter stays as the reference oracle
//! and the equivalence is property-tested per tier.

use crate::codelet::{Codelet, Source};
use lowino_simd::vecf32::{F32Vector, F32x1, VecTier};

/// Register-file capacity of the tape executor. One register per input
/// slot, CSE temporary and output slot; the lowering asserts the program
/// fits. `F(6,3)` needs 8 + temps + 8; 32 leaves headroom for every
/// supported tile size.
pub const MAX_REGS: usize = 32;

/// One compiled statement: `regs[dst] += coeff · regs[src]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapeInstr {
    /// Destination register (a temp or output slot).
    pub dst: u8,
    /// Source register (an input slot or earlier temp).
    pub src: u8,
    /// The f32-rendered matrix coefficient.
    pub coeff: f32,
}

/// Per-destination post-ops fused into a tape's output stores (the graph
/// engine's bias / residual-add / ReLU, PR-3-style: applied while the
/// finished output vector is still in a register, before its one store).
///
/// `None` everywhere (`TapePostOps::default()`) makes
/// [`Tape::execute_f32_post`] behave exactly like [`Tape::execute_f32`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TapePostOps<'a> {
    /// Per-lane addend shared by all output slots (lanes are channels in
    /// the blocked layout): lane `l` of every slot gains `bias[l]`. Must
    /// hold at least `lanes` values.
    pub bias: Option<&'a [f32]>,
    /// Per-slot addend laid out like the output: `(buf, base, stride)` —
    /// slot `i`, lane `l` gains `buf[base + i·stride + l]`. The
    /// skip-connection tile of a residual block.
    pub residual: Option<(&'a [f32], usize, usize)>,
    /// Apply `max(·, 0.0)` last ([`F32Vector::max`] semantics).
    pub relu: bool,
}

/// [`TapePostOps`] lowered to raw pointers (null ⇒ absent) so the
/// per-tier `#[target_feature]` wrappers keep plain-data signatures.
#[derive(Clone, Copy)]
struct RawPost {
    bias: *const f32,
    res: *const f32,
    res_stride: usize,
    relu: bool,
}

impl RawPost {
    fn from_post(post: &TapePostOps<'_>) -> Self {
        let (res, res_stride) = match post.residual {
            Some((buf, base, stride)) => (unsafe { buf.as_ptr().add(base) }, stride),
            None => (core::ptr::null(), 0),
        };
        RawPost {
            bias: post.bias.map_or(core::ptr::null(), |b| b.as_ptr()),
            res,
            res_stride,
            relu: post.relu,
        }
    }
}

/// A lowered codelet: a flat multiply-accumulate tape over a register
/// file laid out `[inputs | temps | outputs]`.
#[derive(Debug, Clone)]
pub struct Tape {
    n_in: usize,
    n_temps: usize,
    n_out: usize,
    instrs: Vec<TapeInstr>,
}

impl Tape {
    /// Lower `code` to its instruction tape. Instruction order follows the
    /// interpreter exactly — temporaries in definition order, then outputs,
    /// each accumulating its terms in expression order from zero — which is
    /// what makes the two executors bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics if the program needs more than [`MAX_REGS`] registers.
    pub fn lower(code: &Codelet) -> Self {
        let (n_in, n_temps, n_out) = (code.n_in(), code.n_temps(), code.n_out());
        let regs = n_in + n_temps + n_out;
        assert!(
            regs <= MAX_REGS,
            "codelet needs {regs} registers (max {MAX_REGS})"
        );
        let reg_of = |s: Source| -> u8 {
            match s {
                Source::In(j) => j as u8,
                Source::Temp(t) => (n_in + t) as u8,
            }
        };
        let mut instrs = Vec::new();
        for (t, expr) in code.temps_f32().iter().enumerate() {
            let dst = (n_in + t) as u8;
            for &(src, coeff) in expr {
                instrs.push(TapeInstr {
                    dst,
                    src: reg_of(src),
                    coeff,
                });
            }
        }
        for (i, expr) in code.outs_f32().iter().enumerate() {
            let dst = (n_in + n_temps + i) as u8;
            for &(src, coeff) in expr {
                instrs.push(TapeInstr {
                    dst,
                    src: reg_of(src),
                    coeff,
                });
            }
        }
        Tape {
            n_in,
            n_temps,
            n_out,
            instrs,
        }
    }

    /// Number of input slots.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output slots.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of CSE temporaries (register-resident; no scratch needed).
    pub fn n_temps(&self) -> usize {
        self.n_temps
    }

    /// Multiply-accumulate instruction count (equals the codelet's
    /// [`op_count`](Codelet::op_count)).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the tape has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Compiled twin of [`Codelet::execute_f32`]: slot `j` of the input
    /// starts at `input[in_base + j·in_stride]`, slot `i` of the output at
    /// `output[out_base + i·out_stride]`, each slot `lanes` consecutive
    /// values. No scratch — temporaries live in registers.
    #[inline]
    pub fn execute_f32(
        &self,
        vt: VecTier,
        lanes: usize,
        input: &[f32],
        in_base: usize,
        in_stride: usize,
        output: &mut [f32],
        out_base: usize,
        out_stride: usize,
    ) {
        self.check_spans(vt, lanes, input.len(), in_base, in_stride, output.len(), out_base, out_stride);
        let ip = unsafe { input.as_ptr().add(in_base) };
        let op = unsafe { output.as_mut_ptr().add(out_base) };
        match vt {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: spans checked above; tier availability asserted in
            // `check_spans`.
            VecTier::F32x16 => unsafe {
                x86::f32_avx512(self, lanes, ip, in_stride, op, out_stride)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            VecTier::F32x8 => unsafe { x86::f32_avx2(self, lanes, ip, in_stride, op, out_stride) },
            // SAFETY: scalar model has no feature requirement.
            _ => unsafe { drive_f32::<F32x1>(self, lanes, ip, in_stride, op, out_stride) },
        }
    }

    /// [`Self::execute_f32`] with a fused **post-op epilogue** applied to
    /// every output slot before its store, in this fixed order:
    ///
    /// 1. `bias` — per-lane addend (lanes are channels in the blocked
    ///    layout), the same `bias[l..l+W]` vector added to every slot;
    /// 2. `residual` — per-slot addend laid out like the output (slot `i`
    ///    at `res[res_base + i·res_stride]`), the skip-connection tile;
    /// 3. `relu` — `max(·, 0.0)` with `maxps` semantics (see
    ///    [`F32Vector::max`]).
    ///
    /// Bitwise identical to [`Self::execute_f32`] followed by the scalar
    /// spelling `((y + bias) + res).max(0.0)` per element, on every tier —
    /// `add` is plain IEEE and never contracted, `max` matches
    /// `f32::max(v, 0.0)` for all finite-or-NaN inputs.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn execute_f32_post(
        &self,
        vt: VecTier,
        lanes: usize,
        input: &[f32],
        in_base: usize,
        in_stride: usize,
        post: TapePostOps<'_>,
        output: &mut [f32],
        out_base: usize,
        out_stride: usize,
    ) {
        self.check_spans(vt, lanes, input.len(), in_base, in_stride, output.len(), out_base, out_stride);
        if let Some(bias) = post.bias {
            assert!(bias.len() >= lanes, "bias shorter than the lane group");
        }
        if let Some((res, res_base, res_stride)) = post.residual {
            assert!(res.len() >= res_base + (self.n_out - 1) * res_stride + lanes);
        }
        let raw = RawPost::from_post(&post);
        let ip = unsafe { input.as_ptr().add(in_base) };
        let op = unsafe { output.as_mut_ptr().add(out_base) };
        match vt {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: spans checked above; tier availability asserted in
            // `check_spans`.
            VecTier::F32x16 => unsafe {
                x86::f32_post_avx512(self, lanes, ip, in_stride, raw, op, out_stride)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            VecTier::F32x8 => unsafe {
                x86::f32_post_avx2(self, lanes, ip, in_stride, raw, op, out_stride)
            },
            // SAFETY: scalar model has no feature requirement.
            _ => unsafe { drive_post::<F32x1>(self, lanes, ip, in_stride, raw, op, out_stride) },
        }
    }

    /// Fused quantize epilogue: run the tape, then per output slot `i`
    /// quantize with `alphas[alpha_base + i·alpha_stride]` (one scale per
    /// Winograd-domain element, shared by all lanes of the slot), add the
    /// `+128` compensation when `compensate`, and store the slot as `u8`
    /// lanes at `output[out_base + i·out_stride]`.
    ///
    /// Bitwise identical (finite values) to [`Self::execute_f32`] followed
    /// by [`lowino_simd::quantize_f32_lanes_i8`] per slot.
    #[inline]
    pub fn execute_quant_u8(
        &self,
        vt: VecTier,
        lanes: usize,
        input: &[f32],
        in_base: usize,
        in_stride: usize,
        alphas: &[f32],
        alpha_base: usize,
        alpha_stride: usize,
        compensate: bool,
        output: &mut [u8],
        out_base: usize,
        out_stride: usize,
    ) {
        self.check_spans(vt, lanes, input.len(), in_base, in_stride, output.len(), out_base, out_stride);
        assert!(alphas.len() > alpha_base + (self.n_out - 1) * alpha_stride);
        let offset = if compensate { 128 } else { 0 };
        let ip = unsafe { input.as_ptr().add(in_base) };
        let ap = unsafe { alphas.as_ptr().add(alpha_base) };
        let op = unsafe { output.as_mut_ptr().add(out_base) };
        match vt {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: spans checked above; tier availability asserted in
            // `check_spans`.
            VecTier::F32x16 => unsafe {
                x86::quant_avx512(self, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            VecTier::F32x8 => unsafe {
                x86::quant_avx2(self, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride)
            },
            // SAFETY: scalar model has no feature requirement.
            _ => unsafe {
                drive_quant::<F32x1>(self, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride)
            },
        }
    }

    /// Fused dequantize prologue: input slots are raw `i32` GEMM
    /// accumulators; slot `j` is loaded as
    /// `z as f32 · scales[scale_base + j·scale_stride]` (Eq. 6 folded into
    /// the load; `scale_stride = 0` broadcasts one scale). The tape then
    /// runs as usual and stores f32 outputs.
    ///
    /// Bitwise identical to [`lowino_simd::dequantize_i32_lanes`] per slot
    /// followed by [`Self::execute_f32`].
    #[inline]
    pub fn execute_dequant_f32(
        &self,
        vt: VecTier,
        lanes: usize,
        input: &[i32],
        in_base: usize,
        in_stride: usize,
        scales: &[f32],
        scale_base: usize,
        scale_stride: usize,
        output: &mut [f32],
        out_base: usize,
        out_stride: usize,
    ) {
        self.check_spans(vt, lanes, input.len(), in_base, in_stride, output.len(), out_base, out_stride);
        assert!(scales.len() > scale_base + (self.n_in - 1) * scale_stride);
        let ip = unsafe { input.as_ptr().add(in_base) };
        let sp = unsafe { scales.as_ptr().add(scale_base) };
        let op = unsafe { output.as_mut_ptr().add(out_base) };
        match vt {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: spans checked above; tier availability asserted in
            // `check_spans`.
            VecTier::F32x16 => unsafe {
                x86::dequant_avx512(self, lanes, ip, in_stride, sp, scale_stride, op, out_stride)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            VecTier::F32x8 => unsafe {
                x86::dequant_avx2(self, lanes, ip, in_stride, sp, scale_stride, op, out_stride)
            },
            // SAFETY: scalar model has no feature requirement.
            _ => unsafe {
                drive_dequant::<F32x1>(self, lanes, ip, in_stride, sp, scale_stride, op, out_stride)
            },
        }
    }

    /// Common bounds/capability checks for the execute entry points.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn check_spans(
        &self,
        vt: VecTier,
        lanes: usize,
        in_len: usize,
        in_base: usize,
        in_stride: usize,
        out_len: usize,
        out_base: usize,
        out_stride: usize,
    ) {
        assert!(in_len >= in_base + (self.n_in - 1) * in_stride + lanes);
        assert!(out_len >= out_base + (self.n_out - 1) * out_stride + lanes);
        debug_assert!(vt <= VecTier::detect(), "vec tier {vt} not supported");
    }
}

// -- generic executor core ----------------------------------------------
//
// `#[inline(always)]` generic bodies instantiated inside per-tier
// `#[target_feature]` wrappers — the same codegen pattern as
// `lowino_simd::dpbusd`.

/// Register-file size of the *small* executor instantiation. The file
/// holds only inputs and CSE temporaries (sources are never outputs), but
/// the tape's dynamic source indices still force it onto the stack (LLVM
/// cannot scalar-promote a dynamically indexed array), so every lane chunk
/// pays one zero-store per file slot — sizing the file to the program
/// instead of always [`MAX_REGS`] cuts that fixed cost for the small
/// tiles (only `F(6,3)`'s `Bᵀ` needs more than 16 slots).
const SMALL_REGS: usize = 16;

/// Register-file size of the *tiny* executor instantiation — all three
/// `F(2,3)` codelets fit their inputs + temps in 8 file slots.
const TINY_REGS: usize = 8;

/// Evaluate the CSE temporaries into `file[n_in..]`, consuming the
/// leading instructions; `k` is left at the first output instruction.
///
/// The lowering emits instructions grouped by destination (temporaries in
/// definition order, then outputs in order), so each destination's terms
/// are a contiguous run — the accumulator stays in a true vector register
/// and only completed values touch the (stack-resident) file. Term order
/// within a run matches the interpreter's accumulate-from-zero exactly.
#[inline(always)]
unsafe fn eval_temps<V: F32Vector, const N: usize>(tape: &Tape, file: &mut [V; N], k: &mut usize) {
    let instrs = tape.instrs.as_slice();
    for t in 0..tape.n_temps {
        let dst = (tape.n_in + t) as u8;
        let mut acc = V::zero();
        while *k < instrs.len() && instrs[*k].dst == dst {
            let ins = instrs[*k];
            acc = acc.add(V::splat(ins.coeff).mul(file[ins.src as usize]));
            *k += 1;
        }
        file[tape.n_in + t] = acc;
    }
}

/// Accumulate output slot `i`'s terms starting at instruction `k`,
/// returning the finished vector — outputs never round-trip through the
/// file, they go straight to the caller's store/quantize epilogue.
#[inline(always)]
unsafe fn eval_output<V: F32Vector, const N: usize>(
    tape: &Tape,
    file: &[V; N],
    k: &mut usize,
    i: usize,
) -> V {
    let instrs = tape.instrs.as_slice();
    let dst = (tape.n_in + tape.n_temps + i) as u8;
    let mut acc = V::zero();
    while *k < instrs.len() && instrs[*k].dst == dst {
        let ins = instrs[*k];
        acc = acc.add(V::splat(ins.coeff).mul(file[ins.src as usize]));
        *k += 1;
    }
    acc
}

/// Load the f32 input slots and evaluate the temporaries; returns the
/// file and the instruction cursor positioned at the first output term.
#[inline(always)]
unsafe fn load_and_eval<V: F32Vector, const N: usize>(
    tape: &Tape,
    ip: *const f32,
    in_stride: usize,
) -> ([V; N], usize) {
    let mut file = [V::zero(); N];
    for j in 0..tape.n_in {
        file[j] = V::load(ip.add(j * in_stride));
    }
    let mut k = 0;
    eval_temps(tape, &mut file, &mut k);
    (file, k)
}

/// As [`load_and_eval`], but inputs are `i32` lanes dequantized at load
/// time.
#[inline(always)]
unsafe fn load_and_eval_dequant<V: F32Vector, const N: usize>(
    tape: &Tape,
    ip: *const i32,
    in_stride: usize,
    sp: *const f32,
    scale_stride: usize,
) -> ([V; N], usize) {
    let mut file = [V::zero(); N];
    for j in 0..tape.n_in {
        file[j] = V::load_i32_scaled(ip.add(j * in_stride), *sp.add(j * scale_stride));
    }
    let mut k = 0;
    eval_temps(tape, &mut file, &mut k);
    (file, k)
}

#[inline(always)]
unsafe fn drive_f32_sized<V: F32Vector, const N: usize>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    op: *mut f32,
    out_stride: usize,
) {
    let main = lanes - lanes % V::WIDTH;
    let mut l = 0;
    while l < main {
        let (file, mut k) = load_and_eval::<V, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).store(op.add(i * out_stride + l));
        }
        l += V::WIDTH;
    }
    while l < lanes {
        let (file, mut k) = load_and_eval::<F32x1, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).store(op.add(i * out_stride + l));
        }
        l += 1;
    }
}

#[inline(always)]
unsafe fn drive_f32<V: F32Vector>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    op: *mut f32,
    out_stride: usize,
) {
    let file_regs = tape.n_in + tape.n_temps;
    if file_regs <= TINY_REGS {
        drive_f32_sized::<V, TINY_REGS>(tape, lanes, ip, in_stride, op, out_stride);
    } else if file_regs <= SMALL_REGS {
        drive_f32_sized::<V, SMALL_REGS>(tape, lanes, ip, in_stride, op, out_stride);
    } else {
        drive_f32_sized::<V, MAX_REGS>(tape, lanes, ip, in_stride, op, out_stride);
    }
}

/// One output vector through the post-op epilogue: bias, then residual
/// slot tile, then ReLU — the register-resident fusion point.
#[inline(always)]
unsafe fn apply_post<V: F32Vector>(mut v: V, post: RawPost, i: usize, l: usize) -> V {
    if !post.bias.is_null() {
        v = v.add(V::load(post.bias.add(l)));
    }
    if !post.res.is_null() {
        v = v.add(V::load(post.res.add(i * post.res_stride + l)));
    }
    if post.relu {
        v = v.max(V::zero());
    }
    v
}

#[inline(always)]
unsafe fn drive_post_sized<V: F32Vector, const N: usize>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    post: RawPost,
    op: *mut f32,
    out_stride: usize,
) {
    let main = lanes - lanes % V::WIDTH;
    let mut l = 0;
    while l < main {
        let (file, mut k) = load_and_eval::<V, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            let v = eval_output(tape, &file, &mut k, i);
            apply_post(v, post, i, l).store(op.add(i * out_stride + l));
        }
        l += V::WIDTH;
    }
    while l < lanes {
        let (file, mut k) = load_and_eval::<F32x1, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            let v = eval_output(tape, &file, &mut k, i);
            apply_post(v, post, i, l).store(op.add(i * out_stride + l));
        }
        l += 1;
    }
}

#[inline(always)]
unsafe fn drive_post<V: F32Vector>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    post: RawPost,
    op: *mut f32,
    out_stride: usize,
) {
    let file_regs = tape.n_in + tape.n_temps;
    if file_regs <= TINY_REGS {
        drive_post_sized::<V, TINY_REGS>(tape, lanes, ip, in_stride, post, op, out_stride);
    } else if file_regs <= SMALL_REGS {
        drive_post_sized::<V, SMALL_REGS>(tape, lanes, ip, in_stride, post, op, out_stride);
    } else {
        drive_post_sized::<V, MAX_REGS>(tape, lanes, ip, in_stride, post, op, out_stride);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn drive_quant_sized<V: F32Vector, const N: usize>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    ap: *const f32,
    alpha_stride: usize,
    offset: i32,
    op: *mut u8,
    out_stride: usize,
) {
    let main = lanes - lanes % V::WIDTH;
    let mut l = 0;
    while l < main {
        let (file, mut k) = load_and_eval::<V, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).quantize_u8(
                *ap.add(i * alpha_stride),
                offset,
                op.add(i * out_stride + l),
            );
        }
        l += V::WIDTH;
    }
    while l < lanes {
        let (file, mut k) = load_and_eval::<F32x1, N>(tape, ip.add(l), in_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).quantize_u8(
                *ap.add(i * alpha_stride),
                offset,
                op.add(i * out_stride + l),
            );
        }
        l += 1;
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn drive_quant<V: F32Vector>(
    tape: &Tape,
    lanes: usize,
    ip: *const f32,
    in_stride: usize,
    ap: *const f32,
    alpha_stride: usize,
    offset: i32,
    op: *mut u8,
    out_stride: usize,
) {
    let file_regs = tape.n_in + tape.n_temps;
    if file_regs <= TINY_REGS {
        drive_quant_sized::<V, TINY_REGS>(
            tape, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride,
        );
    } else if file_regs <= SMALL_REGS {
        drive_quant_sized::<V, SMALL_REGS>(
            tape, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride,
        );
    } else {
        drive_quant_sized::<V, MAX_REGS>(
            tape, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride,
        );
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn drive_dequant_sized<V: F32Vector, const N: usize>(
    tape: &Tape,
    lanes: usize,
    ip: *const i32,
    in_stride: usize,
    sp: *const f32,
    scale_stride: usize,
    op: *mut f32,
    out_stride: usize,
) {
    let main = lanes - lanes % V::WIDTH;
    let mut l = 0;
    while l < main {
        let (file, mut k) =
            load_and_eval_dequant::<V, N>(tape, ip.add(l), in_stride, sp, scale_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).store(op.add(i * out_stride + l));
        }
        l += V::WIDTH;
    }
    while l < lanes {
        let (file, mut k) =
            load_and_eval_dequant::<F32x1, N>(tape, ip.add(l), in_stride, sp, scale_stride);
        for i in 0..tape.n_out {
            eval_output(tape, &file, &mut k, i).store(op.add(i * out_stride + l));
        }
        l += 1;
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn drive_dequant<V: F32Vector>(
    tape: &Tape,
    lanes: usize,
    ip: *const i32,
    in_stride: usize,
    sp: *const f32,
    scale_stride: usize,
    op: *mut f32,
    out_stride: usize,
) {
    let file_regs = tape.n_in + tape.n_temps;
    if file_regs <= TINY_REGS {
        drive_dequant_sized::<V, TINY_REGS>(
            tape, lanes, ip, in_stride, sp, scale_stride, op, out_stride,
        );
    } else if file_regs <= SMALL_REGS {
        drive_dequant_sized::<V, SMALL_REGS>(
            tape, lanes, ip, in_stride, sp, scale_stride, op, out_stride,
        );
    } else {
        drive_dequant_sized::<V, MAX_REGS>(
            tape, lanes, ip, in_stride, sp, scale_stride, op, out_stride,
        );
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use lowino_simd::vecf32::{F32x16, F32x8};

    #[target_feature(enable = "avx512f")]
    pub unsafe fn f32_avx512(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_f32::<F32x16>(tape, lanes, ip, in_stride, op, out_stride);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn f32_avx2(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_f32::<F32x8>(tape, lanes, ip, in_stride, op, out_stride);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn f32_post_avx512(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        post: RawPost,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_post::<F32x16>(tape, lanes, ip, in_stride, post, op, out_stride);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn f32_post_avx2(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        post: RawPost,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_post::<F32x8>(tape, lanes, ip, in_stride, post, op, out_stride);
    }

    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn quant_avx512(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        ap: *const f32,
        alpha_stride: usize,
        offset: i32,
        op: *mut u8,
        out_stride: usize,
    ) {
        drive_quant::<F32x16>(tape, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn quant_avx2(
        tape: &Tape,
        lanes: usize,
        ip: *const f32,
        in_stride: usize,
        ap: *const f32,
        alpha_stride: usize,
        offset: i32,
        op: *mut u8,
        out_stride: usize,
    ) {
        drive_quant::<F32x8>(tape, lanes, ip, in_stride, ap, alpha_stride, offset, op, out_stride);
    }

    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn dequant_avx512(
        tape: &Tape,
        lanes: usize,
        ip: *const i32,
        in_stride: usize,
        sp: *const f32,
        scale_stride: usize,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_dequant::<F32x16>(tape, lanes, ip, in_stride, sp, scale_stride, op, out_stride);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn dequant_avx2(
        tape: &Tape,
        lanes: usize,
        ip: *const i32,
        in_stride: usize,
        sp: *const f32,
        scale_stride: usize,
        op: *mut f32,
        out_stride: usize,
    ) {
        drive_dequant::<F32x8>(tape, lanes, ip, in_stride, sp, scale_stride, op, out_stride);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::WinogradMatrices;

    #[test]
    fn all_supported_codelets_fit_the_register_file() {
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (3, 3), (3, 5)] {
            let w = WinogradMatrices::for_tile(m, r).unwrap();
            for mat in [&w.bt, &w.g, &w.at] {
                let code = Codelet::generate(mat);
                let tape = Tape::lower(&code);
                assert!(tape.n_in() + tape.n_temps() + tape.n_out() <= MAX_REGS);
                assert_eq!(tape.len(), code.op_count());
            }
        }
    }

    #[test]
    fn post_epilogue_matches_unfused_scalar_smoke() {
        // Full per-tier coverage lives in tests/post_epilogue.rs; this is
        // the in-crate smoke check of the fused bias/residual/ReLU order.
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.at);
        let tape = Tape::lower(&code);
        let (n_out, lanes) = (tape.n_out(), 5);
        let input: Vec<f32> = (0..tape.n_in() * lanes)
            .map(|i| (i as f32 * 0.31).cos() * 2.0)
            .collect();
        let bias: Vec<f32> = (0..lanes).map(|l| l as f32 * 0.25 - 0.5).collect();
        let res: Vec<f32> = (0..n_out * lanes).map(|i| (i as f32 * 0.11).sin()).collect();
        let mut plain = vec![0.0f32; n_out * lanes];
        tape.execute_f32(VecTier::Scalar, lanes, &input, 0, lanes, &mut plain, 0, lanes);
        let want: Vec<u32> = (0..n_out * lanes)
            .map(|i| ((plain[i] + bias[i % lanes] + res[i]).max(0.0)).to_bits())
            .collect();
        let mut got = vec![0.0f32; n_out * lanes];
        let post = TapePostOps {
            bias: Some(&bias),
            residual: Some((&res, 0, lanes)),
            relu: true,
        };
        tape.execute_f32_post(VecTier::Scalar, lanes, &input, 0, lanes, post, &mut got, 0, lanes);
        assert_eq!(got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), want);
        // Default post-ops degenerate to the plain executor.
        let mut ident = vec![0.0f32; n_out * lanes];
        tape.execute_f32_post(
            VecTier::Scalar, lanes, &input, 0, lanes,
            TapePostOps::default(), &mut ident, 0, lanes,
        );
        assert_eq!(
            ident.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            plain.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tape_matches_interpreter_bitwise_scalar_smoke() {
        // Full per-tier property coverage lives in tests/tape_equivalence.rs;
        // this is the in-crate smoke check.
        let w = WinogradMatrices::lavin_f4_3();
        let code = Codelet::generate(&w.bt);
        let tape = Tape::lower(&code);
        let lanes = 5;
        let input: Vec<f32> = (0..6 * lanes).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let mut want = vec![0.0f32; 6 * lanes];
        let mut scratch = vec![0.0f32; code.n_temps().max(1) * lanes];
        code.execute_f32(lanes, &input, 0, lanes, &mut want, 0, lanes, &mut scratch);
        let mut got = vec![0.0f32; 6 * lanes];
        tape.execute_f32(VecTier::Scalar, lanes, &input, 0, lanes, &mut got, 0, lanes);
        assert_eq!(
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
