//! Integration tests for the global recorder: gating, drain/reset, chrome
//! JSON round-trip through the in-tree validator, and concurrent emission.
//!
//! The recorder is process-global, so every test that flips `set_enabled`
//! or drains serialises on [`test_lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use lowino_testkit::validate_json;
use lowino_trace as trace;
use lowino_trace::EventKind;

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Events recorded by this test binary's threads since the last reset.
fn all_events() -> Vec<trace::Event> {
    trace::drain().into_iter().flat_map(|t| t.events).collect()
}

#[test]
fn disabled_recorder_emits_nothing() {
    let _guard = test_lock();
    trace::set_enabled(false);
    trace::reset();
    {
        let _s = trace::span("quiet/span");
        trace::counter("quiet/counter", 7);
        trace::instant("quiet/instant", 1);
    }
    assert!(
        all_events().is_empty(),
        "disabled recorder must record nothing"
    );
}

#[test]
fn span_open_across_disable_still_closes() {
    let _guard = test_lock();
    trace::set_enabled(true);
    trace::reset();
    let s = trace::span("gate/span");
    trace::set_enabled(false);
    drop(s);
    let evs = all_events();
    let begins = evs.iter().filter(|e| e.kind == EventKind::Begin).count();
    let ends = evs.iter().filter(|e| e.kind == EventKind::End).count();
    assert_eq!((begins, ends), (1, 1), "armed span must close after disable");
    trace::reset();
}

#[test]
fn chrome_json_round_trips_through_validator() {
    let _guard = test_lock();
    trace::set_enabled(true);
    trace::reset();
    {
        let _outer = trace::span_arg("json/outer", 3);
        {
            let _inner = trace::span("json/inner");
            trace::counter("json/bytes", 100);
            trace::counter("json/bytes", 23);
        }
        trace::instant("json/mark", 9);
    }
    let json = trace::chrome_trace_json();
    trace::set_enabled(false);
    validate_json(&json).unwrap_or_else(|e| panic!("emitted JSON is invalid: {e}\n{json}"));
    for needle in [
        "\"traceEvents\"",
        "\"json/outer\"",
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
        "\"ph\":\"C\"",
        "\"ph\":\"i\"",
        // Counter events carry the running total, so the second add shows 123.
        "\"value\":123",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    let summary = trace::summary();
    assert!(summary.contains("json/outer"), "summary lists spans");
    assert!(summary.contains("json/bytes"), "summary lists counters");
    assert!(summary.contains("123"), "summary totals counters");
    trace::reset();
}

#[test]
fn concurrent_threads_emit_well_nested_per_thread_pairs() {
    let _guard = test_lock();
    trace::set_enabled(true);
    trace::reset();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                for i in 0..50u64 {
                    let _outer = trace::span_arg("mt/outer", t);
                    let _inner = trace::span_arg("mt/inner", i);
                    trace::counter("mt/work", 1);
                }
            });
        }
    });
    let threads = trace::drain();
    trace::set_enabled(false);
    let active: Vec<_> = threads.iter().filter(|t| !t.events.is_empty()).collect();
    assert!(active.len() >= 4, "each emitting thread gets its own ring");
    let mut total_spans = 0u64;
    for th in &active {
        let mut depth = 0i64;
        for ev in &th.events {
            match ev.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => {
                    depth -= 1;
                    assert!(depth >= 0, "tid {}: End without Begin", th.tid);
                    total_spans += 1;
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "tid {}: unbalanced spans", th.tid);
    }
    // Some scoped threads may reuse a ring registered by an earlier test's
    // thread, but the span count across all rings is exact.
    let span_count: u64 = total_spans;
    assert_eq!(span_count, 4 * 50 * 2, "every begin matched an end");
    let json = trace::chrome_trace_json();
    validate_json(&json).expect("multi-thread JSON validates");
    trace::reset();
}
