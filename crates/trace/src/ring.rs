//! Single-producer event ring buffer.
//!
//! Each tracing thread owns exactly one [`Ring`]: the owner pushes events,
//! any thread may snapshot. Pushing is lock-free and wait-free — one slot
//! write plus one `Release` store of the head counter. The ring has a fixed
//! capacity; once full, new events overwrite the oldest, so a drain always
//! sees the **newest** `capacity` events in emission order.
//!
//! Readers use the `Acquire` head load to bound the region of fully
//! published slots. A concurrent reader could still observe a slot that the
//! producer is in the middle of overwriting (head has not advanced yet for
//! that lap); the recorder only drains at quiescent points (end of a bench
//! run, between test phases), so this benign race never surfaces in
//! practice — and a torn `Event` is inert data, never a pointer the reader
//! follows (the `name` field is a `&'static str` written atomically enough
//! in practice but *conservatively* the drain API is documented as
//! quiescent-only).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

/// What a single ring slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening edge (chrome `ph:"B"`).
    Begin,
    /// Span closing edge (chrome `ph:"E"`); `name` repeats the opener's.
    End,
    /// Monotonic counter add (chrome `ph:"C"`, cumulated at export).
    Counter,
    /// Point-in-time marker (chrome `ph:"i"`).
    Instant,
}

/// One trace event. `ts_ns` is nanoseconds since the process trace epoch.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Static event name (e.g. `"pool/phase"`).
    pub name: &'static str,
    /// Payload: span/instant argument or counter delta.
    pub arg: u64,
    /// Timestamp in nanoseconds since the trace epoch.
    pub ts_ns: u64,
}

impl Event {
    const EMPTY: Event = Event {
        kind: EventKind::Instant,
        name: "",
        arg: 0,
        ts_ns: 0,
    };
}

struct Slot(UnsafeCell<Event>);

/// Fixed-capacity single-producer ring of [`Event`]s.
pub struct Ring {
    tid: u32,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: only the owning thread writes slots (single-producer contract,
// upheld by the thread-local registration in `lib.rs`); readers bound
// themselves by the Acquire-loaded head and only run at quiescent points.
unsafe impl Sync for Ring {}
// SAFETY: the `Arc<Ring>` is shared with the global registry; `Event` is
// plain copyable data with no thread affinity.
unsafe impl Send for Ring {}

impl Ring {
    /// A ring for logical thread `tid` holding at most `capacity` events
    /// (rounded up to at least 2).
    pub fn new(tid: u32, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            tid,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot(UnsafeCell::new(Event::EMPTY)))
                .collect(),
        }
    }

    /// Logical thread id this ring records for.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotonic; ≥ retained count).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Append one event, overwriting the oldest once the ring is full.
    ///
    /// Must only be called by the ring's owning thread (single producer).
    pub fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let idx = (h % self.slots.len() as u64) as usize;
        // SAFETY: single-producer — only the owner thread calls `push`, so
        // no other writer exists; readers honouring the quiescent-drain
        // contract do not read this slot until the Release store below.
        unsafe { *self.slots[idx].0.get() = ev };
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out the retained events, oldest first.
    ///
    /// Intended for quiescent points (the producer is parked or done); see
    /// the module docs for the tearing caveat if called concurrently.
    pub fn snapshot(&self) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = h.saturating_sub(cap);
        (start..h)
            .map(|i| {
                let idx = (i % cap) as usize;
                // SAFETY: slots in `[h - cap, h)` were fully published by
                // the Release store in `push` before we Acquire-loaded `h`.
                unsafe { *self.slots[idx].0.get() }
            })
            .collect()
    }

    /// Discard all retained events. Test/bench helper: callers must ensure
    /// the owning producer is quiescent.
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, arg: u64) -> Event {
        Event {
            kind: EventKind::Counter,
            name,
            arg,
            ts_ns: arg,
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let r = Ring::new(7, 8);
        assert_eq!(r.tid(), 7);
        assert_eq!(r.capacity(), 8);
        for i in 0..5 {
            r.push(ev("a", i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.iter().enumerate().all(|(i, e)| e.arg == i as u64));
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let r = Ring::new(0, 8);
        for i in 0..27 {
            r.push(ev("x", i));
        }
        assert_eq!(r.pushed(), 27);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8, "retains exactly capacity");
        let args: Vec<u64> = snap.iter().map(|e| e.arg).collect();
        assert_eq!(args, (19..27).collect::<Vec<_>>(), "newest 8, oldest first");
    }

    #[test]
    fn clear_empties_the_ring() {
        let r = Ring::new(0, 4);
        for i in 0..9 {
            r.push(ev("x", i));
        }
        r.clear();
        assert!(r.snapshot().is_empty());
        r.push(ev("y", 42));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].arg, 42);
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let r = Ring::new(0, 0);
        assert_eq!(r.capacity(), 2);
        r.push(ev("a", 1));
        r.push(ev("b", 2));
        r.push(ev("c", 3));
        let args: Vec<u64> = r.snapshot().iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![2, 3]);
    }
}
