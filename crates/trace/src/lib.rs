//! # lowino-trace
//!
//! The observability spine of the LoWino stack: one process-wide, env-gated
//! recorder replacing the previous scatter of ad-hoc telemetry. Every layer
//! (pool, executors, GEMM, quantization, tuner, scratch) emits into the same
//! three primitives:
//!
//! * **spans** — named begin/end pairs with the emitting thread id
//!   ([`span`], RAII-closed by [`SpanGuard`]);
//! * **counters** — monotonic adds cumulated at export ([`counter`]);
//! * **instants** — point-in-time markers ([`instant`]).
//!
//! Counters **drop zero deltas** (a zero add carries no information for a
//! cumulating export); instants record their argument verbatim, zeros
//! included. Emitters that must appear in every trace regardless of value —
//! the pipelined GEMM scheduler's `gemm/steal` / `pool/steal` markers,
//! which CI greps for on runs that may never steal — therefore use
//! [`instant`], while genuinely cumulative quantities (`gemm/pack_ns`,
//! `pool/idle_ns`, `gemm/panel_bytes`, …) stay counters.
//!
//! ## Overhead discipline
//!
//! Tracing is **off by default** and gated on a single process-wide relaxed
//! [`AtomicBool`]: when disabled, every emit is one relaxed load and an
//! untaken branch — no timestamp, no TLS access, no allocation. The
//! zero-steady-state-allocation guarantee of the executor path (see
//! `lowino-conv`'s counting-allocator test) is preserved because a disabled
//! recorder touches no heap; even when enabled, the only allocation is the
//! one-time ring registration of each emitting thread.
//!
//! ## Storage
//!
//! Each emitting thread owns a fixed-capacity single-producer
//! [`ring::Ring`]; once full it overwrites the oldest events, so a drain
//! sees the newest window (sized by [`DEFAULT_RING_CAPACITY`]). Rings are
//! registered in a global list so [`drain`] can walk all threads.
//!
//! ## Activation & export
//!
//! Setting `LOWINO_TRACE=<path>` and calling [`init_from_env`] (done by
//! `StaticPool::new` and the bench mains) enables recording and remembers
//! the path; [`flush_to_env`] then writes a chrome://tracing "trace event
//! format" JSON document there and prints a plain-text summary table to
//! stderr. Tests drive the recorder programmatically with [`set_enabled`] /
//! [`drain`] / [`reset`] instead of the environment.

mod export;
pub mod ring;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

pub use ring::{Event, EventKind, Ring};

/// Events retained per thread before wraparound (newest win).
///
/// Sized for the dynamically scheduled pool (DESIGN.md §11): work-stealing
/// splits each phase into `O(log n)` chunks per worker and every chunk
/// re-enters the instrumented phase body, multiplying per-phase event
/// volume several-fold over the static schedule. 64 Ki events (2 MiB per
/// emitting thread, allocated only while tracing) keeps a whole smoke-bench
/// run — including the one-shot `graph/compile` events at its head — inside
/// the retained window; CI greps for those names fail loudly if this ever
/// regresses.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static OUT_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Is the recorder active? One relaxed atomic load — the entire cost of
/// every instrumentation site while tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically switch recording on or off (tests and benches; the env
/// path is [`init_from_env`]). Spans already open stay armed so their `End`
/// edges still land and nesting remains consistent.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// One-time activation from the environment: if `LOWINO_TRACE` is set to a
/// non-empty path, enable recording and remember the path for
/// [`flush_to_env`]. Idempotent and cheap to call from every entry point
/// (pool construction, bench mains).
pub fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(path) = std::env::var("LOWINO_TRACE") {
            if !path.is_empty() {
                set_output_path(Some(PathBuf::from(path)));
                set_enabled(true);
            }
        }
    });
}

/// Where [`flush_to_env`] writes the chrome-trace JSON, if anywhere.
pub fn output_path() -> Option<PathBuf> {
    lock(&OUT_PATH).clone()
}

/// Override the flush destination (normally taken from `LOWINO_TRACE`).
pub fn set_output_path(path: Option<PathBuf>) {
    *lock(&OUT_PATH) = path;
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Emit unconditionally (callers have already checked [`enabled`], or hold
/// an armed [`SpanGuard`] whose `End` must land regardless).
fn emit(kind: EventKind, name: &'static str, arg: u64) {
    let ev = Event {
        kind,
        name,
        arg,
        ts_ns: now_ns(),
    };
    // `try_with` so a drop-emitted event during thread teardown is silently
    // discarded instead of panicking on destroyed TLS.
    let _ = LOCAL.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(tid, DEFAULT_RING_CAPACITY));
            lock(&REGISTRY).push(Arc::clone(&ring));
            ring
        });
        ring.push(ev);
    });
}

/// RAII span: emitted the `Begin` edge on construction (when recording),
/// emits the matching `End` edge on drop. Zero-cost when unarmed.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            emit(EventKind::End, self.name, 0);
        }
    }
}

/// Open a named span on the calling thread; the returned guard closes it.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_arg(name, 0)
}

/// [`span`] with a `u64` argument attached to the `Begin` edge (e.g. a
/// phase index).
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    emit(EventKind::Begin, name, arg);
    SpanGuard { name, armed: true }
}

/// Add `delta` to the named monotonic counter (per-thread; cumulated per
/// `(thread, name)` at export).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() && delta > 0 {
        emit(EventKind::Counter, name, delta);
    }
}

/// Record a point-in-time marker with a `u64` payload.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if enabled() {
        emit(EventKind::Instant, name, arg);
    }
}

/// One thread's drained events.
pub struct ThreadEvents {
    /// Logical trace thread id (registration order, starting at 1).
    pub tid: u32,
    /// Events lost to ring wraparound (oldest-first).
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

/// Snapshot every registered thread's retained events (non-destructive).
///
/// Intended for quiescent points — after a job joined, at the end of a
/// bench run — see [`ring::Ring::snapshot`] for the concurrency caveat.
pub fn drain() -> Vec<ThreadEvents> {
    let rings: Vec<Arc<Ring>> = lock(&REGISTRY).iter().cloned().collect();
    rings
        .iter()
        .map(|r| {
            let events = r.snapshot();
            ThreadEvents {
                tid: r.tid(),
                dropped: r.pushed().saturating_sub(events.len() as u64),
                events,
            }
        })
        .collect()
}

/// Discard all recorded events on every registered ring (registrations are
/// kept — thread-locals still point at their rings). Test/bench helper for
/// scoping a recording window; producers must be quiescent.
pub fn reset() {
    for ring in lock(&REGISTRY).iter() {
        ring.clear();
    }
}

/// Render everything recorded so far as a chrome://tracing JSON document
/// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn chrome_trace_json() -> String {
    export::chrome_trace_json(&drain())
}

/// Render everything recorded so far as an aligned plain-text table
/// (per-span count/total/mean, counter totals, instant counts).
pub fn summary() -> String {
    export::summary(&drain())
}

/// If an output path is configured ([`init_from_env`] /
/// [`set_output_path`]), write the chrome-trace JSON there, print the
/// summary table to stderr, and return the path. Returns `None` (and stays
/// silent) when tracing was never activated; I/O errors are reported on
/// stderr rather than panicking — tracing must never take the process down.
pub fn flush_to_env() -> Option<PathBuf> {
    let path = output_path()?;
    let json = chrome_trace_json();
    match std::fs::write(&path, &json) {
        Ok(()) => {
            eprint!("{}", summary());
            eprintln!("trace written to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("lowino-trace: failed to write {}: {e}", path.display());
            None
        }
    }
}
