//! Drained-event export: chrome://tracing JSON and a plain-text summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ring::EventKind;
use crate::ThreadEvents;

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, name: &str, ph: char, tid: u32, ts_ns: u64) {
    out.push_str("{\"name\":\"");
    escape_json(name, out);
    let ts_us = ts_ns as f64 / 1000.0;
    let _ = write!(
        out,
        "\",\"cat\":\"lowino\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3}"
    );
}

/// Render drained events as a chrome://tracing "trace event format"
/// document (the `{"traceEvents":[...]}` object form).
///
/// Counters are cumulated per `(tid, name)` so the rendered `C` events show
/// running totals, matching the "monotonic add" counter semantics.
pub(crate) fn chrome_trace_json(threads: &[ThreadEvents]) -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for te in threads {
        let mut running: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &te.events {
            if !first {
                out.push(',');
            }
            first = false;
            match ev.kind {
                EventKind::Begin => {
                    push_common(&mut out, ev.name, 'B', te.tid, ev.ts_ns);
                    let _ = write!(out, ",\"args\":{{\"arg\":{}}}}}", ev.arg);
                }
                EventKind::End => {
                    push_common(&mut out, ev.name, 'E', te.tid, ev.ts_ns);
                    out.push('}');
                }
                EventKind::Counter => {
                    let total = running.entry(ev.name).or_insert(0);
                    *total += ev.arg;
                    push_common(&mut out, ev.name, 'C', te.tid, ev.ts_ns);
                    let _ = write!(out, ",\"args\":{{\"value\":{total}}}}}");
                }
                EventKind::Instant => {
                    push_common(&mut out, ev.name, 'i', te.tid, ev.ts_ns);
                    let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"arg\":{}}}}}", ev.arg);
                }
            }
        }
    }
    out.push_str("]}");
    out
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

/// Render drained events as an aligned plain-text table: per-span-name
/// count/total/mean, per-counter-name totals, per-instant-name counts.
///
/// Span begin/end pairs are matched per thread with a stack; orphans left
/// by ring wraparound (an `End` whose `Begin` was overwritten, or an open
/// `Begin` at drain time) are skipped.
pub(crate) fn summary(threads: &[ThreadEvents]) -> String {
    let mut spans: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut instants: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut dropped = 0u64;
    for te in threads {
        dropped += te.dropped;
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for ev in &te.events {
            match ev.kind {
                EventKind::Begin => stack.push((ev.name, ev.ts_ns)),
                EventKind::End => {
                    if let Some((name, begin_ns)) = stack.pop() {
                        if name == ev.name {
                            let agg = spans.entry(name).or_default();
                            agg.count += 1;
                            agg.total_ns += ev.ts_ns.saturating_sub(begin_ns);
                        }
                    }
                }
                EventKind::Counter => *counters.entry(ev.name).or_insert(0) += ev.arg,
                EventKind::Instant => *instants.entry(ev.name).or_insert(0) += 1,
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== lowino trace summary ==");
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>14} {:>12}",
            "span", "count", "total ms", "mean us"
        );
        for (name, agg) in &spans {
            let total_ms = agg.total_ns as f64 / 1e6;
            let mean_us = agg.total_ns as f64 / 1e3 / agg.count.max(1) as f64;
            let _ = writeln!(
                out,
                "  {:<30} {:>10} {:>14.3} {:>12.2}",
                name, agg.count, total_ms, mean_us
            );
        }
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<32} {:>16}", "counter", "total");
        for (name, total) in &counters {
            let _ = writeln!(out, "  {name:<30} {total:>16}");
        }
    }
    if !instants.is_empty() {
        let _ = writeln!(out, "{:<32} {:>10}", "instant", "count");
        for (name, count) in &instants {
            let _ = writeln!(out, "  {name:<30} {count:>10}");
        }
    }
    if dropped > 0 {
        let _ = writeln!(out, "(ring wraparound dropped {dropped} oldest events)");
    }
    out
}
