//! Graceful degradation: a convolution that survives algorithm failure.
//!
//! [`ResilientConv`] wraps the algorithm ladder
//!
//! ```text
//! LoWino{m} → UpCast{min(m,4)} → WinogradF32{m} → DirectF32
//! ```
//!
//! and *demotes* — rebuilds itself one rung down — whenever the current
//! algorithm fails to construct, fails at runtime
//! ([`ExecError::WorkerPanic`]), or passes but with unhealthy numerics
//! (quantization saturation above [`HealthPolicy::max_saturation_ratio`],
//! or non-finite output values). Each rung trades speed for sturdiness:
//! the bottom of the ladder is the full-precision direct convolution,
//! which quantizes nothing and transforms nothing.
//!
//! Demotions are sticky (the layer keeps serving from the demoted rung),
//! recorded in [`ResilientConv::demotions`], and emitted as a
//! `resilient/demote` trace instant so production traces show exactly when
//! and why a layer degraded.
//!
//! Caller errors do **not** demote: a mismatched tensor
//! ([`ExecError::IoShape`]) or a rejected non-finite input
//! ([`ExecError::NonFiniteInput`]) would fail identically on every rung,
//! so they are returned to the caller unchanged.

use lowino_conv::{
    calibrate_spatial, calibrate_winograd_domain, Algorithm, ConvContext, ConvError,
    ConvExecutor, ConvPostOps, DirectF32Conv, ExecError, LoWinoConv, StageTimings, UpCastConv,
    WinogradF32Conv,
};
use lowino_tensor::{BlockedImage, ConvShape, Tensor4};

/// When a passing execute still counts as unhealthy.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Demote when `saturated / total` of the last execute's quantized
    /// intermediates exceeds this ratio (the calibrated scales no longer
    /// fit the live data distribution). Set above 1.0 to disable.
    pub max_saturation_ratio: f64,
    /// Demote when the output contains NaN/±inf values. One linear pass
    /// over the output per execute; set `false` to disable.
    pub check_output_finite: bool,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            max_saturation_ratio: 0.25,
            check_output_finite: true,
        }
    }
}

impl HealthPolicy {
    /// The overload-brownout policy: every post-execute health scan is
    /// disabled, so an execute costs no extra passes over the output and
    /// numerics alone never trigger a demotion rebuild. A browned-out
    /// server deliberately trades the §9 quality guards for latency
    /// headroom; hard failures (worker panics, build errors) still demote.
    pub fn relaxed() -> Self {
        Self {
            max_saturation_ratio: f64::INFINITY,
            check_output_finite: false,
        }
    }
}

/// Why a demotion happened.
#[derive(Debug)]
pub enum DemotionReason {
    /// The algorithm failed to construct (calibration or planning error).
    BuildFailed(ConvError),
    /// `execute` returned a recoverable runtime error (worker panic).
    ExecFailed(ExecError),
    /// Quantization saturation exceeded the policy threshold.
    SaturationBreach {
        /// Saturated quantized values in the last execute.
        saturated: u64,
        /// Total quantized values in the last execute.
        total: u64,
    },
    /// The output contained non-finite values.
    NonFiniteOutput {
        /// Number of NaN/±inf output values found.
        count: u64,
    },
}

impl core::fmt::Display for DemotionReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DemotionReason::BuildFailed(e) => write!(f, "build failed: {e}"),
            DemotionReason::ExecFailed(e) => write!(f, "execute failed: {e}"),
            DemotionReason::SaturationBreach { saturated, total } => {
                write!(f, "saturation breach: {saturated}/{total} quantized values")
            }
            DemotionReason::NonFiniteOutput { count } => {
                write!(f, "{count} non-finite output value(s)")
            }
        }
    }
}

/// One recorded demotion step.
#[derive(Debug)]
pub struct Demotion {
    /// The algorithm that failed (or was unhealthy).
    pub from: Algorithm,
    /// The algorithm demoted to.
    pub to: Algorithm,
    /// Why.
    pub reason: DemotionReason,
}

/// A self-healing convolution layer: executes on the fastest algorithm
/// that is currently healthy, demoting down the ladder on failure.
pub struct ResilientConv {
    spec: ConvShape,
    weights: Tensor4,
    samples: Vec<BlockedImage>,
    policy: HealthPolicy,
    /// Rungs not yet tried, in demotion order.
    remaining: Vec<Algorithm>,
    exec: Box<dyn ConvExecutor + Send>,
    demotions: Vec<Demotion>,
    /// Whether [`Self::seed_blocking`] was called — demoted rungs are then
    /// re-seeded so a rebuilt executor keeps tuner-chosen blockings.
    seeded: bool,
}

impl ResilientConv {
    /// Plan a resilient layer with the default [`HealthPolicy`].
    /// `samples` calibrate the quantized rungs (LoWino in the Winograd
    /// domain, up-casting in the spatial domain).
    pub fn new(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        samples: Vec<BlockedImage>,
    ) -> Result<Self, ConvError> {
        Self::with_policy(spec, m, weights, samples, HealthPolicy::default())
    }

    /// [`Self::new`] with an explicit health policy.
    pub fn with_policy(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        samples: Vec<BlockedImage>,
        policy: HealthPolicy,
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let mut remaining = vec![
            Algorithm::LoWino { m },
            // Up-casting is the sturdiest quantized scheme (INT16
            // intermediates), but its integer transform overflows above
            // F(4×4) — clamp the tile.
            Algorithm::UpCast { m: m.min(4) },
            Algorithm::WinogradF32 { m },
            Algorithm::DirectF32,
        ];
        let mut demotions = Vec::new();
        let mut pending: Option<(Algorithm, ConvError)> = None;
        let mut exec = None;
        while !remaining.is_empty() {
            let algo = remaining.remove(0);
            let attempt = build_algo(&spec, weights, &samples, algo);
            if let Some((from, err)) = pending.take() {
                lowino_trace::instant("resilient/demote", demotions.len() as u64);
                demotions.push(Demotion {
                    from,
                    to: algo,
                    reason: DemotionReason::BuildFailed(err),
                });
            }
            match attempt {
                Ok(e) => {
                    exec = Some(e);
                    break;
                }
                Err(err) => pending = Some((algo, err)),
            }
        }
        match exec {
            Some(exec) => Ok(Self {
                spec,
                weights: weights.clone(),
                samples,
                policy,
                remaining,
                exec,
                demotions,
                seeded: false,
            }),
            // Even DirectF32 failed: nothing to serve from.
            None => Err(pending.expect("chain was non-empty").1),
        }
    }

    /// The algorithm currently serving this layer.
    pub fn algorithm(&self) -> Algorithm {
        self.exec.algorithm()
    }

    /// The layer spec.
    pub fn spec(&self) -> &ConvShape {
        &self.spec
    }

    /// Every demotion taken so far, oldest first.
    pub fn demotions(&self) -> &[Demotion] {
        &self.demotions
    }

    /// The active health policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Swap the health policy live — the serving brownout controller
    /// relaxes the per-execute health scans under overload and restores
    /// them when pressure clears. Takes effect from the next execute;
    /// demotions already taken stay (the ladder is sticky by design).
    pub fn set_policy(&mut self, policy: HealthPolicy) {
        self.policy = policy;
    }

    /// Seed the serving executor's GEMM blocking from the context's tuner
    /// (exact wisdom → shape class → cost model; never a measurement).
    /// Demotions after this call re-seed the rebuilt rung automatically.
    pub fn seed_blocking(&mut self, ctx: &ConvContext) {
        self.seeded = true;
        self.apply_seed(ctx);
    }

    fn apply_seed(&mut self, ctx: &ConvContext) {
        if let Some(shape) = self.exec.gemm_shape() {
            self.exec.set_blocking(ctx.seed_blocking(&shape));
        }
    }

    /// Run the layer, demoting down the ladder until a rung produces a
    /// healthy result. Errs only when the chain is exhausted (every rung
    /// including direct-f32 failed) or on a caller error (shape mismatch /
    /// rejected non-finite input), which no demotion can fix.
    pub fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ConvError> {
        self.execute_post(input, output, &ConvPostOps::default(), ctx)
    }

    /// [`Self::execute`] with [`ConvPostOps`] (bias / residual-add / ReLU)
    /// applied to the output — the graph engine's entry point. The post-op
    /// contract is part of [`ConvExecutor`], so every rung of the ladder
    /// honours it: a demoted layer produces the same post-processed output
    /// (modulo the rung's own numerics) and the demotion logic is shared
    /// unchanged.
    pub fn execute_post(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        post: &ConvPostOps<'_>,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ConvError> {
        loop {
            match self.exec.execute_post(input, output, post, ctx) {
                Ok(times) => {
                    let Some(reason) = self.health_breach(output) else {
                        return Ok(times);
                    };
                    self.demote(reason)?;
                }
                Err(err @ ExecError::WorkerPanic { .. }) => {
                    self.demote(DemotionReason::ExecFailed(err))?;
                }
                // Caller errors: every rung would reject them identically.
                Err(err) => return Err(err.into()),
            }
            if self.seeded {
                self.apply_seed(ctx);
            }
        }
    }

    /// Post-execute health check against the policy.
    fn health_breach(&self, output: &BlockedImage) -> Option<DemotionReason> {
        if let Some((saturated, total)) = self.exec.saturation() {
            if total > 0 && saturated as f64 > self.policy.max_saturation_ratio * total as f64 {
                return Some(DemotionReason::SaturationBreach { saturated, total });
            }
        }
        if self.policy.check_output_finite {
            let count = output.data().iter().filter(|v| !v.is_finite()).count() as u64;
            if count > 0 {
                return Some(DemotionReason::NonFiniteOutput { count });
            }
        }
        None
    }

    /// Move down the ladder, skipping rungs that fail to build.
    fn demote(&mut self, reason: DemotionReason) -> Result<(), ConvError> {
        let mut from = self.exec.algorithm();
        let mut reason = reason;
        loop {
            if self.remaining.is_empty() {
                return Err(ConvError::Unsupported(format!(
                    "resilient fallback chain exhausted: {from} failed ({reason}) with no \
                     sturdier algorithm left"
                )));
            }
            let next = self.remaining.remove(0);
            let attempt = build_algo(&self.spec, &self.weights, &self.samples, next);
            lowino_trace::instant("resilient/demote", self.demotions.len() as u64);
            match attempt {
                Ok(exec) => {
                    self.demotions.push(Demotion { from, to: next, reason });
                    self.exec = exec;
                    return Ok(());
                }
                Err(err) => {
                    self.demotions.push(Demotion { from, to: next, reason });
                    from = next;
                    reason = DemotionReason::BuildFailed(err);
                }
            }
        }
    }
}

/// Build one rung of the ladder, running whatever calibration it needs.
fn build_algo(
    spec: &ConvShape,
    weights: &Tensor4,
    samples: &[BlockedImage],
    algo: Algorithm,
) -> Result<Box<dyn ConvExecutor + Send>, ConvError> {
    Ok(match algo {
        Algorithm::LoWino { m } => {
            let scale = calibrate_winograd_domain(spec, m, samples)?;
            Box::new(LoWinoConv::new(*spec, m, weights, scale)?)
        }
        Algorithm::UpCast { m } => {
            let scale = calibrate_spatial(samples)?;
            Box::new(UpCastConv::new(*spec, m, weights, scale)?)
        }
        Algorithm::WinogradF32 { m } => Box::new(WinogradF32Conv::new(*spec, m, weights)?),
        Algorithm::DirectF32 => Box::new(DirectF32Conv::new(*spec, weights)?),
        other => {
            return Err(ConvError::Unsupported(format!(
                "{other} is not part of the resilient fallback chain"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(scale: f32) -> (ConvShape, Tensor4, BlockedImage) {
        let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
        let w = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
            ((k + c + y + x) as f32 * 0.3).sin() * 0.2 * scale
        });
        let input = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
            ((c * 5 + y * 3 + x) as f32 * 0.17).cos() * scale
        });
        (spec, w, BlockedImage::from_nchw(&input))
    }

    #[test]
    fn healthy_layer_serves_lowino_with_no_demotions() {
        let (spec, w, img) = setup(1.0);
        let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
        assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
        let mut ctx = ConvContext::new(2);
        let mut out = BlockedImage::zeros(1, 8, 10, 10);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        assert!(conv.demotions().is_empty());
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn unsupported_tile_demotes_at_construction() {
        // F(9,3) has no generated transform: LoWino fails to build,
        // up-cast clamps the tile to 4 and serves.
        let (spec, w, img) = setup(1.0);
        let conv = ResilientConv::new(spec, 9, &w, vec![img]).unwrap();
        assert_eq!(conv.algorithm(), Algorithm::UpCast { m: 4 });
        assert_eq!(conv.demotions().len(), 1);
        let d = &conv.demotions()[0];
        assert_eq!(d.from, Algorithm::LoWino { m: 9 });
        assert_eq!(d.to, Algorithm::UpCast { m: 4 });
        assert!(matches!(d.reason, DemotionReason::BuildFailed(_)));
    }

    #[test]
    fn saturation_breach_demotes_to_full_precision() {
        // Calibrate on a quiet sample, then execute a 1000× louder input:
        // nearly every quantized value clips, so both quantized rungs
        // breach the saturation policy and the layer settles on a
        // full-precision algorithm that handles the range fine.
        let (spec, w, quiet) = setup(1.0);
        let loud = {
            let t = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
                ((c * 5 + y * 3 + x) as f32 * 0.17).cos() * 1000.0
            });
            BlockedImage::from_nchw(&t)
        };
        let mut conv = ResilientConv::new(spec, 4, &w, vec![quiet]).unwrap();
        let mut ctx = ConvContext::new(1);
        let mut out = BlockedImage::zeros(1, 8, 10, 10);
        conv.execute(&loud, &mut out, &mut ctx).unwrap();
        assert!(
            !conv.algorithm().needs_spatial_scale()
                && !conv.algorithm().needs_winograd_scale(),
            "must settle on a full-precision rung, got {}",
            conv.algorithm()
        );
        assert!(conv
            .demotions()
            .iter()
            .any(|d| matches!(d.reason, DemotionReason::SaturationBreach { .. })));
        // And the served output is the real convolution.
        let mut reference = DirectF32Conv::new(spec, &w).unwrap();
        let mut want = BlockedImage::zeros(1, 8, 10, 10);
        reference.execute(&loud, &mut want, &mut ctx).unwrap();
        let err = out.to_nchw().rel_l2_error(&want.to_nchw());
        assert!(err < 1e-3, "rel error {err}");
    }

    #[test]
    fn non_finite_output_exhausts_chain_with_an_error() {
        // 1e30-magnitude inputs and weights overflow f32 in every rung's
        // arithmetic (1e30 · 1e30 > f32::MAX), so each passing execute
        // breaches the output-finiteness check until the chain runs dry.
        let (spec, _, _) = setup(1.0);
        let w = Tensor4::from_fn(8, 8, 3, 3, |_, _, _, _| 1e30);
        let huge = {
            let t = Tensor4::from_fn(1, 8, 10, 10, |_, _, _, _| 1e30);
            BlockedImage::from_nchw(&t)
        };
        let mut conv = ResilientConv::new(spec, 4, &w, vec![huge.clone()]).unwrap();
        let mut ctx = ConvContext::new(1);
        let mut out = BlockedImage::zeros(1, 8, 10, 10);
        let err = conv.execute(&huge, &mut out, &mut ctx).unwrap_err();
        assert!(matches!(err, ConvError::Unsupported(_)), "{err:?}");
        assert!(err.to_string().contains("exhausted"), "{err}");
        assert_eq!(conv.demotions().len(), 3, "one demotion per rung");
        assert!(conv
            .demotions()
            .iter()
            .any(|d| matches!(d.reason, DemotionReason::NonFiniteOutput { .. })));
    }

    #[test]
    fn caller_errors_do_not_demote() {
        let (spec, w, img) = setup(1.0);
        let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
        let mut ctx = ConvContext::new(1);
        let mut wrong = BlockedImage::zeros(1, 8, 7, 7);
        let err = conv.execute(&img, &mut wrong, &mut ctx).unwrap_err();
        assert!(matches!(
            err,
            ConvError::Exec(ExecError::IoShape { which: "output", .. })
        ));
        assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
        assert!(conv.demotions().is_empty());
    }
}
