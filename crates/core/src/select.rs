//! Automatic algorithm selection — the paper's §7 future-work item
//! ("explore an automatic mechanism to select the optimal algorithm for a
//! convolutional layer among direct, Winograd, and others"), implemented as
//! a roofline-style cost model.
//!
//! The model reflects the §5.1/§5.3 observations:
//!
//! * the GEMM stage is compute-bound: cost ∝ padded MACs at the INT8 rate;
//! * the transformations are memory-bound: cost ∝ bytes moved (FP32 input
//!   reads, panel writes, Z reads, output writes);
//! * Winograd saves MACs by `m²r²/(m+r−1)²` but *adds* transform traffic
//!   that grows with `T = (m+r−1)²` — which is why direct convolution wins
//!   on transform-bound layers like YOLOv3_a and `F(4,3)` wins on
//!   compute-heavy ones.

use lowino_conv::Algorithm;
use lowino_tensor::{round_up, ConvShape, LANES};

/// Machine constants for the cost model. Defaults are calibrated to a
/// single AVX-512-VNNI core; ratios (not absolutes) drive the selection.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// INT8 MAC throughput (MAC/s) of the GEMM stage.
    pub int8_macs_per_sec: f64,
    /// Effective memory bandwidth (bytes/s) of the transform stages.
    pub bytes_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            int8_macs_per_sec: 150e9,
            bytes_per_sec: 8e9,
        }
    }
}

impl CostModel {
    /// Estimated execution time (seconds) of `algo` on `spec`.
    ///
    /// Returns `None` for configurations the algorithm cannot run
    /// (e.g. Winograd with stride ≠ 1).
    pub fn estimate(&self, spec: &ConvShape, algo: Algorithm) -> Option<f64> {
        let cp = round_up(spec.in_c, LANES) as f64;
        let kp = round_up(spec.out_c, LANES) as f64;
        let out_pixels = (spec.batch * spec.out_h() * spec.out_w()) as f64;
        match algo {
            Algorithm::DirectF32 => {
                // FP32 direct: MACs at 1/4 the INT8 rate, light traffic.
                let macs = out_pixels * cp * kp * (spec.r * spec.r) as f64;
                Some(macs / (self.int8_macs_per_sec / 4.0))
            }
            Algorithm::DirectInt8 => {
                let macs = out_pixels * cp * kp * (spec.r * spec.r) as f64;
                // Implicit GEMM: quantize each input pixel once (f32 read +
                // u8 write), de-quantize each output (i32 read + f32 write).
                let in_pixels = (spec.batch * spec.h * spec.w) as f64;
                let bytes = in_pixels * cp * (4.0 + 1.0) + out_pixels * kp * 4.0 * 2.0;
                Some(macs / self.int8_macs_per_sec + bytes / self.bytes_per_sec)
            }
            Algorithm::LoWino { m } | Algorithm::DownScale { m } | Algorithm::UpCast { m } => {
                let geom = spec.tiles(m).ok()?;
                let t = geom.t() as f64;
                let n_tiles = geom.total as f64;
                let macs = t * n_tiles * cp * kp;
                let rate = match algo {
                    Algorithm::UpCast { .. } => self.int8_macs_per_sec / 2.0,
                    _ => self.int8_macs_per_sec,
                };
                // Input transform: read n²·C_p f32 per tile, write T·C_p u8;
                // output: read T·K_p i32, write m²·K_p f32.
                let bytes = n_tiles
                    * (t * cp * (4.0 + 1.0) + t * kp * 4.0 + (m * m) as f64 * kp * 4.0);
                Some(macs / rate + bytes / self.bytes_per_sec)
            }
            Algorithm::WinogradF32 { m } => {
                let geom = spec.tiles(m).ok()?;
                let t = geom.t() as f64;
                let n_tiles = geom.total as f64;
                let macs = t * n_tiles * cp * kp;
                let bytes = n_tiles * t * (cp + kp) * 4.0 * 2.0;
                Some(macs / (self.int8_macs_per_sec / 4.0) + bytes / self.bytes_per_sec)
            }
        }
    }
}

/// Estimate the cost of one algorithm with the default machine model.
pub fn estimate_cost(spec: &ConvShape, algo: Algorithm) -> Option<f64> {
    CostModel::default().estimate(spec, algo)
}

/// Pick the fastest low-precision algorithm for a layer among INT8 direct
/// and LoWino `F(2,3)` / `F(4,3)` / `F(6,3)` (the candidates the paper's
/// conclusion proposes to choose between).
pub fn select_algorithm(spec: &ConvShape) -> Algorithm {
    let model = CostModel::default();
    let mut candidates = vec![Algorithm::DirectInt8];
    if spec.stride == 1 && spec.r == 3 {
        // m = 6 is deliberately excluded: per-tensor scales (the default
        // granularity) cannot span F(6,3)'s cross-position dynamic range,
        // so auto-selection only considers accuracy-safe tile sizes. Users
        // who enable per-position scales can request F(6,3) explicitly.
        candidates.extend([
            Algorithm::LoWino { m: 2 },
            Algorithm::LoWino { m: 4 },
        ]);
    }
    candidates
        .into_iter()
        .filter_map(|a| model.estimate(spec, a).map(|c| (a, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(a, _)| a)
        .unwrap_or(Algorithm::DirectInt8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winograd_saves_macs_on_compute_heavy_layers() {
        // VGG16_b-like: C = K = 512, 30×30 — heavily compute-bound.
        let spec = ConvShape::same(4, 512, 512, 30, 3).validate().unwrap();
        let direct = estimate_cost(&spec, Algorithm::DirectInt8).unwrap();
        let f4 = estimate_cost(&spec, Algorithm::LoWino { m: 4 }).unwrap();
        assert!(f4 < direct, "f4={f4} direct={direct}");
        let chosen = select_algorithm(&spec);
        assert!(matches!(chosen, Algorithm::LoWino { .. }), "{chosen}");
    }

    #[test]
    fn winograd_advantage_shrinks_on_transform_bound_layers() {
        // YOLOv3_a-like: batch 1, C = 64, K = 128, 64×64 — few channels,
        // lots of pixels: the transform traffic eats the MAC savings
        // (paper §5.1: "for some special layers, like Yolov3_a, direct
        // convolution outperforms F(4×4,3×3)"). The robust statement is the
        // *relative* one: F(4,3)'s advantage over direct must be far
        // smaller here than on the compute-heavy VGG16_b.
        let yolo = ConvShape::same(1, 64, 128, 64, 3).validate().unwrap();
        let vgg = ConvShape::same(4, 512, 512, 30, 3).validate().unwrap();
        let ratio = |spec: &ConvShape| {
            estimate_cost(spec, Algorithm::DirectInt8).unwrap()
                / estimate_cost(spec, Algorithm::LoWino { m: 4 }).unwrap()
        };
        let yolo_gain = ratio(&yolo);
        let vgg_gain = ratio(&vgg);
        assert!(
            vgg_gain > yolo_gain * 1.5,
            "vgg_gain={vgg_gain} yolo_gain={yolo_gain}"
        );
    }

    #[test]
    fn strided_layers_fall_back_to_direct() {
        let spec = ConvShape {
            stride: 2,
            ..ConvShape::same(1, 64, 64, 32, 3)
        };
        assert_eq!(select_algorithm(&spec), Algorithm::DirectInt8);
        assert!(estimate_cost(&spec, Algorithm::LoWino { m: 2 }).is_none());
    }

    #[test]
    fn upcast_costs_more_than_lowino() {
        let spec = ConvShape::same(1, 256, 256, 32, 3).validate().unwrap();
        let lw = estimate_cost(&spec, Algorithm::LoWino { m: 2 }).unwrap();
        let uc = estimate_cost(&spec, Algorithm::UpCast { m: 2 }).unwrap();
        assert!(uc > lw);
    }

    #[test]
    fn int8_beats_fp32_by_roughly_4x_on_gemm_bound_layers() {
        let spec = ConvShape::same(8, 512, 512, 16, 3).validate().unwrap();
        let f32w = estimate_cost(&spec, Algorithm::WinogradF32 { m: 4 }).unwrap();
        let i8w = estimate_cost(&spec, Algorithm::LoWino { m: 4 }).unwrap();
        assert!(f32w / i8w > 2.0, "ratio {}", f32w / i8w);
    }
}
