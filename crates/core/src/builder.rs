//! The user-facing engine and layer builder.
//!
//! [`Engine`] owns the shared execution resources (thread pool, SIMD tier,
//! wisdom); [`LayerBuilder`] plans one convolution layer — choosing the
//! algorithm (explicitly or via the cost model), running whatever
//! calibration the chosen scheme needs, packing the filters, and allocating
//! workspaces — into a reusable [`Layer`].

use std::path::PathBuf;
use std::time::Duration;

use lowino_conv::{
    calibrate_spatial, calibrate_winograd_domain, Algorithm, ConvContext, ConvError,
    ConvExecutor, DirectF32Conv, DirectInt8Conv, DownScaleConv, ExecError, LoWinoConv,
    StageTimings, UpCastConv, WinogradF32Conv,
};
use lowino_conv::calibrate::calibrate_winograd_domain_per_position;
use lowino_gemm::{RetuneConfig, TunePolicy, Wisdom};
use lowino_quant::QParams;
use lowino_simd::SimdTier;
use lowino_tensor::{BlockedImage, ConvShape, Tensor4};

use crate::select::select_algorithm;

/// How the builder picks the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Use the §7 cost model ([`crate::select::select_algorithm`]).
    Auto,
    /// Use exactly this algorithm.
    Fixed(Algorithm),
}

/// Shared execution engine.
pub struct Engine {
    ctx: ConvContext,
}

impl Engine {
    /// An engine with `threads` execution slots on the best SIMD tier.
    pub fn new(threads: usize) -> Self {
        Self {
            ctx: ConvContext::new(threads),
        }
    }

    /// An engine pinned to a SIMD tier (ablation benches).
    pub fn with_tier(threads: usize, tier: lowino_simd::SimdTier) -> Self {
        Self {
            ctx: ConvContext::with_tier(threads, tier),
        }
    }

    /// Start configuring an engine explicitly: tier, tuning policy,
    /// wisdom file, background retuning.
    pub fn builder(threads: usize) -> EngineBuilder {
        EngineBuilder {
            threads,
            tier: None,
            policy: None,
            wisdom_path: None,
            retune_interval: None,
        }
    }

    /// The underlying context (advanced use: wisdom, tier inspection).
    pub fn context_mut(&mut self) -> &mut ConvContext {
        &mut self.ctx
    }

    /// The underlying context, read-only (tuner seeding, tier queries).
    pub fn context(&self) -> &ConvContext {
        &self.ctx
    }

    /// Persist this engine's accumulated wisdom into `path` via the
    /// crash-safe merge-save (read-merge, tmp file, fsync, rename — the
    /// `wisdom/save` fault site). What a serving shard calls at shutdown
    /// so tuned blockings survive restarts; safe to call concurrently
    /// from engines sharing one file.
    pub fn save_wisdom(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        self.ctx.wisdom.merge_save(path.as_ref())
    }

    /// Allocate a correctly-shaped blocked output for a layer spec.
    pub fn alloc_output(&self, spec: &ConvShape) -> BlockedImage {
        BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w())
    }

    /// Run a planned layer. Every failure is recoverable ([`ExecError`]):
    /// the engine and the layer both remain usable afterwards.
    pub fn execute(
        &mut self,
        layer: &mut Layer,
        input: &BlockedImage,
        output: &mut BlockedImage,
    ) -> Result<StageTimings, ExecError> {
        layer.exec.execute(input, output, &mut self.ctx)
    }
}

/// Configures an [`Engine`] with explicit autotuning behaviour.
///
/// ```no_run
/// # use lowino::Engine;
/// # use lowino_gemm::TunePolicy;
/// let engine = Engine::builder(4)
///     .tune_policy(TunePolicy::Background)
///     .wisdom_path("model.wisdom")
///     .build();
/// ```
pub struct EngineBuilder {
    threads: usize,
    tier: Option<SimdTier>,
    policy: Option<TunePolicy>,
    wisdom_path: Option<PathBuf>,
    retune_interval: Option<Duration>,
}

impl EngineBuilder {
    /// Pin the SIMD tier (default: [`SimdTier::detect`]).
    pub fn tier(mut self, tier: SimdTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Set the tuning policy (default: `LOWINO_RETUNE`, falling back to
    /// [`TunePolicy::SeedOnly`]).
    pub fn tune_policy(mut self, policy: TunePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Wisdom file to seed from — and, under
    /// [`TunePolicy::Background`], to merge retune winners back into
    /// (default: `LOWINO_WISDOM` if set). Unreadable files degrade to
    /// empty wisdom.
    pub fn wisdom_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.wisdom_path = Some(path.into());
        self
    }

    /// Idle interval of the background retuner (only meaningful under
    /// [`TunePolicy::Background`]; default 100 ms).
    pub fn retune_interval(mut self, interval: Duration) -> Self {
        self.retune_interval = Some(interval);
        self
    }

    /// Construct the engine. Under [`TunePolicy::Background`] this spawns
    /// the retuner thread; it is joined when the engine (context) drops.
    pub fn build(self) -> Engine {
        let tier = self.tier.unwrap_or_else(SimdTier::detect);
        let policy = self.policy.unwrap_or_else(TunePolicy::from_env);
        let wisdom_path = self
            .wisdom_path
            .or_else(|| std::env::var("LOWINO_WISDOM").ok().map(PathBuf::from));
        let wisdom = wisdom_path
            .as_deref()
            .and_then(|p| Wisdom::load(p).ok())
            .unwrap_or_default();
        let retune = (policy == TunePolicy::Background).then(|| {
            let mut cfg = RetuneConfig::new(tier);
            if let Some(interval) = self.retune_interval {
                cfg.interval = interval;
            }
            cfg.wisdom_path = wisdom_path;
            cfg
        });
        Engine {
            ctx: ConvContext::with_tuning(self.threads, tier, policy, wisdom, retune),
        }
    }
}

/// A planned, reusable convolution layer.
pub struct Layer {
    exec: Box<dyn ConvExecutor + Send>,
}

impl Layer {
    /// The algorithm that was planned.
    pub fn algorithm(&self) -> Algorithm {
        self.exec.algorithm()
    }

    /// The layer spec.
    pub fn spec(&self) -> &ConvShape {
        self.exec.spec()
    }

    /// Borrow the underlying executor.
    pub fn executor_mut(&mut self) -> &mut (dyn ConvExecutor + Send) {
        &mut *self.exec
    }
}

/// Builder for a [`Layer`].
pub struct LayerBuilder<'w> {
    spec: ConvShape,
    weights: &'w Tensor4,
    algo: AlgoChoice,
    samples: Vec<BlockedImage>,
    input_scale: Option<QParams>,
    per_position: bool,
}

impl<'w> LayerBuilder<'w> {
    /// Start planning a layer with `K×C×r×r` weights.
    pub fn new(spec: ConvShape, weights: &'w Tensor4) -> Self {
        Self {
            spec,
            weights,
            algo: AlgoChoice::Auto,
            samples: Vec::new(),
            input_scale: None,
            per_position: false,
        }
    }

    /// Choose the algorithm (default: [`AlgoChoice::Auto`]).
    pub fn algorithm(mut self, algo: AlgoChoice) -> Self {
        self.algo = algo;
        self
    }

    /// Provide unlabelled activation samples for calibration (paper §3:
    /// "~500s of unlabelled sample images"). Required by every quantized
    /// algorithm unless [`input_scale`](Self::input_scale) is given.
    pub fn calibration_samples(mut self, samples: Vec<BlockedImage>) -> Self {
        self.samples = samples;
        self
    }

    /// Skip calibration and use an explicit input scale.
    pub fn input_scale(mut self, scale: QParams) -> Self {
        self.input_scale = Some(scale);
        self
    }

    /// Use per-tile-position scale granularity for LoWino (the extension
    /// that enables `F(6×6)`; requires calibration samples).
    pub fn per_position_scales(mut self, on: bool) -> Self {
        self.per_position = on;
        self
    }

    /// Plan the layer. GEMM-backed executors get their stage-② blocking
    /// seeded from the engine's tuner (exact wisdom → shape-class wisdom →
    /// cost model) — a first execute never stalls on a measurement sweep.
    pub fn build(self, engine: &Engine) -> Result<Layer, ConvError> {
        let spec = self.spec.validate()?;
        let algo = match self.algo {
            AlgoChoice::Fixed(a) => a,
            AlgoChoice::Auto => select_algorithm(&spec),
        };
        let need_samples = self.input_scale.is_none()
            && (algo.needs_spatial_scale() || algo.needs_winograd_scale());
        if need_samples && self.samples.is_empty() {
            return Err(ConvError::Calibration(format!(
                "{algo} needs calibration samples (or an explicit input_scale)"
            )));
        }
        let exec: Box<dyn ConvExecutor + Send> = match algo {
            Algorithm::DirectF32 => Box::new(DirectF32Conv::new(spec, self.weights)?),
            Algorithm::WinogradF32 { m } => {
                Box::new(WinogradF32Conv::new(spec, m, self.weights)?)
            }
            Algorithm::DirectInt8 => {
                let scale = match self.input_scale {
                    Some(s) => s,
                    None => calibrate_spatial(&self.samples)?,
                };
                Box::new(DirectInt8Conv::new(spec, self.weights, scale)?)
            }
            Algorithm::DownScale { m } => {
                let scale = match self.input_scale {
                    Some(s) => s,
                    None => calibrate_spatial(&self.samples)?,
                };
                Box::new(DownScaleConv::new(spec, m, self.weights, scale)?)
            }
            Algorithm::UpCast { m } => {
                let scale = match self.input_scale {
                    Some(s) => s,
                    None => calibrate_spatial(&self.samples)?,
                };
                Box::new(UpCastConv::new(spec, m, self.weights, scale)?)
            }
            Algorithm::LoWino { m } => {
                if self.per_position {
                    if self.samples.is_empty() {
                        return Err(ConvError::Calibration(
                            "per-position scales require calibration samples".into(),
                        ));
                    }
                    let scales =
                        calibrate_winograd_domain_per_position(&spec, m, &self.samples)?;
                    Box::new(LoWinoConv::new_per_position(spec, m, self.weights, &scales)?)
                } else {
                    let scale = match self.input_scale {
                        Some(s) => s,
                        None => calibrate_winograd_domain(&spec, m, &self.samples)?,
                    };
                    Box::new(LoWinoConv::new(spec, m, self.weights, scale)?)
                }
            }
        };
        let mut exec = exec;
        if let Some(shape) = exec.gemm_shape() {
            exec.set_blocking(engine.ctx.seed_blocking(&shape));
        }
        Ok(Layer { exec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::Tensor4;

    fn setup() -> (ConvShape, Tensor4, BlockedImage) {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let w = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
            ((k + c + y + x) as f32 * 0.3).sin() * 0.2
        });
        let input = Tensor4::from_fn(1, 8, 8, 8, |_, c, y, x| ((c + y + x) as f32 * 0.5).cos());
        (spec, w, BlockedImage::from_nchw(&input))
    }

    #[test]
    fn all_fixed_algorithms_build_and_run() {
        let (spec, w, img) = setup();
        let mut engine = Engine::new(1);
        for algo in [
            Algorithm::DirectF32,
            Algorithm::DirectInt8,
            Algorithm::WinogradF32 { m: 2 },
            Algorithm::LoWino { m: 2 },
            Algorithm::LoWino { m: 4 },
            Algorithm::DownScale { m: 2 },
            Algorithm::UpCast { m: 2 },
        ] {
            let mut layer = LayerBuilder::new(spec, &w)
                .algorithm(AlgoChoice::Fixed(algo))
                .calibration_samples(vec![img.clone()])
                .build(&engine)
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(layer.algorithm(), algo);
            assert_eq!(*layer.spec(), spec);
            let mut out = engine.alloc_output(&spec);
            let t = engine.execute(&mut layer, &img, &mut out).unwrap();
            assert!(t.total() > std::time::Duration::ZERO, "{algo}");
            assert!(out.max_abs() > 0.0, "{algo} produced all zeros");
        }
    }

    #[test]
    fn auto_selection_builds() {
        let (spec, w, img) = setup();
        let engine = Engine::new(1);
        let layer = LayerBuilder::new(spec, &w)
            .calibration_samples(vec![img])
            .build(&engine)
            .unwrap();
        // Whatever was chosen must be a quantized algorithm.
        assert!(
            layer.algorithm().needs_spatial_scale() || layer.algorithm().needs_winograd_scale()
        );
    }

    #[test]
    fn missing_calibration_is_an_error() {
        let (spec, w, _) = setup();
        let engine = Engine::new(1);
        let err = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
            .build(&engine);
        assert!(matches!(err, Err(ConvError::Calibration(_))));
        // FP32 algorithms don't need calibration.
        assert!(LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
            .build(&engine)
            .is_ok());
    }

    #[test]
    fn explicit_scale_skips_calibration() {
        let (spec, w, img) = setup();
        let mut engine = Engine::new(1);
        let mut layer = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
            .input_scale(QParams::from_threshold(8.0))
            .build(&engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn per_position_layer_builds() {
        let (spec, w, img) = setup();
        let mut engine = Engine::new(1);
        let mut layer = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
            .calibration_samples(vec![img.clone()])
            .per_position_scales(true)
            .build(&engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn invalid_spec_rejected() {
        let (_, w, _) = setup();
        let engine = Engine::new(1);
        let mut spec = ConvShape::same(1, 8, 8, 8, 3);
        spec.out_c = 0;
        assert!(LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
            .build(&engine)
            .is_err());
    }
}
