//! # LoWino
//!
//! Efficient low-precision Winograd convolutions on modern CPUs — a Rust
//! reproduction of *"LoWino: Towards Efficient Low-Precision Winograd
//! Convolutions on Modern CPUs"* (Li, Jia, Feng & Wang, ICPP '21).
//!
//! LoWino makes large-tile INT8 Winograd convolution viable by quantizing
//! **in the Winograd domain** — after the `Bᵀ d B` / `G g Gᵀ` transforms
//! have amplified the value range — and pairs that with a VNNI
//! (`vpdpbusd`) kernel featuring cache/register blocking, ±128 operand
//! compensation, non-temporal scatter stores, auto-tuned blocking and
//! static multi-core scheduling.
//!
//! ## Quick start
//!
//! ```
//! use lowino::prelude::*;
//!
//! // A 3×3 convolution layer: batch 1, 64→64 channels, 16×16, "same" pad.
//! let spec = ConvShape::same(1, 64, 64, 16, 3);
//! let weights = Tensor4::from_fn(64, 64, 3, 3, |k, c, y, x| {
//!     ((k + c + y + x) as f32 * 0.37).sin() * 0.1
//! });
//! let input = Tensor4::from_fn(1, 64, 16, 16, |_, c, y, x| {
//!     ((c + y * 3 + x) as f32 * 0.21).cos()
//! });
//!
//! let mut engine = Engine::new(1);
//! let mut layer = LayerBuilder::new(spec, &weights)
//!     .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
//!     .calibration_samples(vec![BlockedImage::from_nchw(&input)])
//!     .build(&engine)
//!     .expect("plan layer");
//!
//! let img = BlockedImage::from_nchw(&input);
//! let mut out = engine.alloc_output(&spec);
//! let timings = engine.execute(&mut layer, &img, &mut out).expect("run layer");
//! assert!(timings.total() > std::time::Duration::ZERO);
//! ```
//!
//! ## Crate map
//!
//! The public API re-exports the substrate crates:
//! [`lowino_tensor`] (layouts), [`lowino_simd`] (VNNI tiers),
//! [`lowino_winograd`] (transform generation & codelets), [`lowino_quant`]
//! (Eq. 4–7 quantization & KL calibration), [`lowino_gemm`] (the batched
//! tall-and-skinny INT8 GEMM), [`lowino_parallel`] (static scheduling) and
//! [`lowino_conv`] (the six convolution algorithms).

pub mod builder;
pub mod resilient;
pub mod select;

pub use builder::{AlgoChoice, Engine, EngineBuilder, Layer, LayerBuilder};
pub use resilient::{Demotion, DemotionReason, HealthPolicy, ResilientConv};
pub use select::{estimate_cost, select_algorithm, CostModel};

pub use lowino_conv::{
    apply_post_ops, calibrate_spatial, calibrate_winograd_domain, Algorithm, ConvContext,
    ConvError, ConvExecutor, ConvPostOps, DirectF32Conv, DirectInt8Conv, DownScaleConv,
    ExecError, LoWinoConv, NonFinitePolicy, StageTimings, UpCastConv, WinogradF32Conv,
};
pub use lowino_gemm::{
    Blocking, GemmCostModel, GemmShape, RetuneConfig, SeedSource, ShapeClass, TunePolicy,
    Wisdom,
};
pub use lowino_quant::QParams;
pub use lowino_simd::{dpbusd, SimdTier};
pub use lowino_tensor::{AlignedBuf, BlockedImage, ConvShape, Tensor4, TileGeometry, LANES};

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::builder::{AlgoChoice, Engine, Layer, LayerBuilder};
    pub use crate::resilient::{HealthPolicy, ResilientConv};
    pub use crate::select::select_algorithm;
    pub use lowino_conv::{Algorithm, ConvError, ConvExecutor, ExecError, StageTimings};
    pub use lowino_quant::QParams;
    pub use lowino_tensor::{BlockedImage, ConvShape, Tensor4};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn doc_example_compiles_and_runs() {
        let spec = ConvShape::same(1, 64, 64, 8, 3);
        let weights = Tensor4::from_fn(64, 64, 3, 3, |k, c, y, x| {
            ((k + c + y + x) as f32 * 0.37).sin() * 0.1
        });
        let input =
            Tensor4::from_fn(1, 64, 8, 8, |_, c, y, x| ((c + y * 3 + x) as f32 * 0.21).cos());
        let mut engine = Engine::new(1);
        let mut layer = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
            .calibration_samples(vec![BlockedImage::from_nchw(&input)])
            .build(&engine)
            .unwrap();
        let img = BlockedImage::from_nchw(&input);
        let mut out = engine.alloc_output(&spec);
        let t = engine.execute(&mut layer, &img, &mut out).unwrap();
        assert!(t.total() > std::time::Duration::ZERO);
        assert!(out.max_abs() > 0.0);
    }
}
