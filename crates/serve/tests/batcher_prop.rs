//! Deterministic property tests for the batching state machine.
//!
//! The batcher core is pure — every transition takes an explicit
//! `now_ns` — so these tests drive it under a **virtual clock** with
//! seeded Poisson arrivals and check, over thousands of sampled
//! configurations, the invariants the server's guarantees rest on:
//!
//! * every accepted request leaves in **exactly one** batch (no loss, no
//!   duplication), in FIFO order — or, once requests carry deadlines, in
//!   exactly one batch *or* exactly one shed, never both;
//! * no batch exceeds the size bound;
//! * with a free consumer, no request waits past the coalescing deadline
//!   (and its completion lands within deadline + its batch's service
//!   time);
//! * a request is **never dispatched at or past its deadline**, and is
//!   shed **iff** it expired while queued;
//! * the queue never exceeds its admission bound, and an offer is
//!   rejected **iff** the queue is at that bound.
//!
//! Failures shrink via the testkit harness and replay with
//! `LOWINO_PROP_SEED`.

use lowino_serve::batcher::{BatchConfig, BatcherCore, Pending, NO_DEADLINE};
use lowino_serve::Clock;
use lowino_testkit::{prop_assert, property, PoissonArrivals, VirtualClock};

/// One dispatched batch: when, and what.
struct Dispatched {
    at_ns: u64,
    batch: Vec<Pending<usize>>,
}

struct SimOutcome {
    /// `(id, enqueued_ns)` of every accepted offer, in admission order.
    accepted: Vec<(u64, u64)>,
    /// Arrival indices whose offers were rejected.
    rejected: Vec<usize>,
    dispatched: Vec<Dispatched>,
    /// `(shed_at_ns, request)` for every deadline-shed request.
    shed: Vec<(u64, Pending<usize>)>,
}

/// Simulate the batcher under Poisson arrivals with a single consumer
/// that takes `service_ns` per batch (0 = always-free consumer). Every
/// request carries deadline `enqueue + deadline_rel_ns`
/// ([`NO_DEADLINE`] disables deadlines). The virtual clock is the only
/// time source; batches are taken at the earliest instant the consumer
/// is free **and** the batcher is ready — exactly the threaded
/// dispatcher's contract, minus the threads.
fn run_sim(
    seed: u64,
    cfg: BatchConfig,
    n: usize,
    mean_gap_ns: u64,
    service_ns: u64,
    deadline_rel_ns: u64,
) -> Result<SimOutcome, String> {
    let clock = VirtualClock::new();
    let mut arrivals = PoissonArrivals::new(seed, mean_gap_ns);
    let mut b = BatcherCore::new(cfg);
    let mut out = SimOutcome {
        accepted: Vec::new(),
        rejected: Vec::new(),
        dispatched: Vec::new(),
        shed: Vec::new(),
    };
    let mut busy_until = 0u64;

    // Take every batch whose dispatch instant lands before `horizon`
    // (u64::MAX = drain everything).
    fn drain(
        b: &mut BatcherCore<usize>,
        clock: &VirtualClock,
        busy_until: &mut u64,
        service_ns: u64,
        horizon: u64,
        out: &mut SimOutcome,
    ) -> Result<(), String> {
        loop {
            let ready_at = if b.depth() >= b.config().max_batch {
                clock.now_ns()
            } else {
                match b.next_deadline() {
                    Some(d) => d,
                    None => return Ok(()),
                }
            };
            let at = ready_at.max(*busy_until);
            if at > horizon {
                return Ok(());
            }
            clock.advance_to(at);
            let taken = b.take_batch(clock.now_ns());
            if taken.batch.is_empty() && taken.expired.is_empty() {
                return Err(format!(
                    "ready batcher returned nothing at t={}",
                    clock.now_ns()
                ));
            }
            for p in taken.expired {
                out.shed.push((at, p));
            }
            if !taken.batch.is_empty() {
                *busy_until = at + service_ns;
                out.dispatched.push(Dispatched { at_ns: at, batch: taken.batch });
            }
        }
    }

    for i in 0..n {
        let t = arrivals.next_arrival_ns();
        drain(&mut b, &clock, &mut busy_until, service_ns, t, &mut out)?;
        clock.advance_to(t);
        let deadline = if deadline_rel_ns == NO_DEADLINE {
            NO_DEADLINE
        } else {
            t.saturating_add(deadline_rel_ns)
        };
        let depth_before = b.depth();
        match b.offer(i, t, deadline) {
            Ok(id) => out.accepted.push((id, t)),
            Err(p) => {
                if depth_before != cfg.queue_cap {
                    return Err(format!(
                        "rejected arrival {p} at depth {depth_before} (cap {})",
                        cfg.queue_cap
                    ));
                }
                out.rejected.push(p);
            }
        }
        if b.depth() > cfg.queue_cap {
            return Err(format!("depth {} exceeds cap {}", b.depth(), cfg.queue_cap));
        }
    }
    drain(&mut b, &clock, &mut busy_until, service_ns, u64::MAX, &mut out)?;
    if b.depth() != 0 {
        return Err(format!("{} requests stranded after drain", b.depth()));
    }
    Ok(out)
}

/// The invariants every simulation must uphold, whatever the consumer's
/// speed: each accepted request dispatched exactly once **or** shed
/// exactly once, FIFO among dispatched, size bound, full accounting.
fn check_core_invariants(cfg: &BatchConfig, n: usize, out: &SimOutcome) -> Result<(), String> {
    let mut seen: Vec<u64> = Vec::new();
    let mut last_id: Option<u64> = None;
    let mut last_at = 0u64;
    for d in &out.dispatched {
        if d.batch.len() > cfg.max_batch {
            return Err(format!(
                "batch of {} exceeds max_batch {}",
                d.batch.len(),
                cfg.max_batch
            ));
        }
        if d.at_ns < last_at {
            return Err(format!("dispatch times went backwards: {} < {last_at}", d.at_ns));
        }
        last_at = d.at_ns;
        for p in &d.batch {
            if let Some(prev) = last_id {
                if p.id <= prev {
                    return Err(format!("FIFO violated: id {} after {prev}", p.id));
                }
            }
            last_id = Some(p.id);
            if d.at_ns < p.enqueued_ns {
                return Err(format!(
                    "id {} dispatched at {} before its enqueue {}",
                    p.id, d.at_ns, p.enqueued_ns
                ));
            }
            seen.push(p.id);
        }
    }
    let mut resolved: Vec<u64> = seen
        .iter()
        .copied()
        .chain(out.shed.iter().map(|(_, p)| p.id))
        .collect();
    resolved.sort_unstable();
    let mut accepted_ids: Vec<u64> = out.accepted.iter().map(|&(id, _)| id).collect();
    accepted_ids.sort_unstable();
    if resolved != accepted_ids {
        return Err(format!(
            "dispatched+shed ids != accepted ids ({} + {} vs {})",
            seen.len(),
            out.shed.len(),
            out.accepted.len()
        ));
    }
    if out.accepted.len() + out.rejected.len() != n {
        return Err(format!(
            "accounting hole: {} accepted + {} rejected != {n}",
            out.accepted.len(),
            out.rejected.len()
        ));
    }
    Ok(())
}

property! {
    /// Free consumer (service = 0), no request deadlines: on top of the
    /// core invariants, no request may wait past the coalescing
    /// deadline, nothing is ever shed, and every completion lands within
    /// deadline + its batch's (zero) service time.
    #[cases(48)]
    fn free_consumer_never_misses_a_deadline(
        seed in 0u64..1_000_000,
        max_batch in 1usize..9,
        delay_us in 1u64..200,
        queue_cap in 1usize..33,
        n in 1usize..200,
        mean_gap_us in 1u64..100,
    ) {
        let cfg = BatchConfig {
            max_batch,
            max_delay_ns: delay_us * 1_000,
            queue_cap,
            ..BatchConfig::default()
        };
        let out = run_sim(seed, cfg, n, mean_gap_us * 1_000, 0, NO_DEADLINE)?;
        check_core_invariants(&cfg, n, &out)?;
        prop_assert!(out.shed.is_empty(), "shed without deadlines");
        for d in &out.dispatched {
            for p in &d.batch {
                let wait = d.at_ns - p.enqueued_ns;
                prop_assert!(
                    wait <= cfg.max_delay_ns,
                    "id {} waited {wait}ns past enqueue (deadline {}ns)",
                    p.id,
                    cfg.max_delay_ns
                );
            }
        }
        // A free consumer never leaves capacity idle: nothing is rejected.
        prop_assert!(
            out.rejected.is_empty() || queue_cap < max_batch,
            "free consumer rejected {} offers with cap {queue_cap} >= batch {max_batch}",
            out.rejected.len()
        );
    }

    /// Slow consumer: backpressure kicks in. The core invariants still
    /// hold — exactly-once, FIFO, size bound — and rejections happen
    /// only at the admission bound (checked inside the sim); completions
    /// stay within one service time of dispatch by construction.
    #[cases(32)]
    fn slow_consumer_backpressures_without_losing_requests(
        seed in 0u64..1_000_000,
        max_batch in 1usize..9,
        delay_us in 1u64..100,
        queue_cap in 1usize..17,
        n in 1usize..200,
        mean_gap_us in 1u64..30,
        service_us in 1u64..300,
    ) {
        let cfg = BatchConfig {
            max_batch,
            max_delay_ns: delay_us * 1_000,
            queue_cap,
            ..BatchConfig::default()
        };
        let out = run_sim(seed, cfg, n, mean_gap_us * 1_000, service_us * 1_000, NO_DEADLINE)?;
        check_core_invariants(&cfg, n, &out)?;
        // Sanity on the load model itself: with service >> gap and a
        // deep request stream, the bounded queue must actually have
        // exercised the rejection path at least once.
        if n >= 150 && service_us >= 100 && mean_gap_us <= 5 && queue_cap <= 8 {
            prop_assert!(
                !out.rejected.is_empty(),
                "overload never tripped admission control (n={n}, cap={queue_cap})"
            );
        }
    }

    /// Request deadlines, consumer of every speed: a request is never
    /// dispatched at or past its deadline, a request is shed only at or
    /// past its deadline, and under an overwhelmed consumer the shed
    /// path actually fires.
    #[cases(48)]
    fn requests_are_shed_iff_expired_and_never_dispatched_late(
        seed in 0u64..1_000_000,
        max_batch in 1usize..9,
        delay_us in 1u64..100,
        queue_cap in 2usize..17,
        n in 1usize..200,
        mean_gap_us in 1u64..30,
        service_us in 0u64..300,
        deadline_us in 5u64..500,
    ) {
        let cfg = BatchConfig {
            max_batch,
            max_delay_ns: delay_us * 1_000,
            queue_cap,
            // Keep the margin below the deadline so coalescing can
            // still happen at all under the tightest sampled deadlines.
            expiry_margin_ns: 1_000,
        };
        let out = run_sim(
            seed,
            cfg,
            n,
            mean_gap_us * 1_000,
            service_us * 1_000,
            deadline_us * 1_000,
        )?;
        check_core_invariants(&cfg, n, &out)?;
        for d in &out.dispatched {
            for p in &d.batch {
                prop_assert!(
                    d.at_ns < p.deadline_ns,
                    "id {} dispatched at {} at/past its deadline {}",
                    p.id,
                    d.at_ns,
                    p.deadline_ns
                );
            }
        }
        for (at, p) in &out.shed {
            prop_assert!(
                *at >= p.deadline_ns,
                "id {} shed at {at} before its deadline {}",
                p.id,
                p.deadline_ns
            );
        }
        // Load-model sanity: a consumer far slower than the deadline
        // budget with a steady stream must shed something.
        if n >= 150 && service_us >= 200 && mean_gap_us <= 5 && deadline_us <= 100 {
            prop_assert!(
                !out.shed.is_empty(),
                "overwhelmed consumer never shed (n={n}, deadline={deadline_us}us)"
            );
        }
    }
}

/// The virtual clock driving the sims satisfies the server's `Clock`
/// trait, so the same time source can drive the threaded server.
#[test]
fn virtual_clock_is_a_server_clock() {
    let v = VirtualClock::new();
    let c: &dyn Clock = &v;
    v.advance(123);
    assert_eq!(c.now_ns(), 123);
}
