//! Corrupt-input fuzzing for the HTTP layer (the PR-4 wisdom-fuzzer
//! pattern applied to the wire): random bytes, mutated valid requests,
//! oversized inputs and pipelined streams must all yield a clean
//! outcome — a parsed request, a 4xx/5xx status, or a closed
//! connection — and **never** a panic, at the parser level and through
//! the full threaded server.

use std::io::{BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use lowino_serve::http::{read_request, read_response, HttpError};
use lowino_serve::{BatchModel, HttpLimits, ServeConfig, Server};
use lowino_testkit::prop::vec_of;
use lowino_testkit::{prop_assert, property, Rng};

/// Parse and classify: Ok(request), clean error, or panic (the bug).
fn parse_outcome(bytes: &[u8]) -> Result<Option<(u16, bool)>, String> {
    let limits = HttpLimits::default();
    let res = catch_unwind(AssertUnwindSafe(|| {
        let mut r = BufReader::new(bytes);
        read_request(&mut r, &limits)
    }));
    match res {
        Err(_) => Err("parser panicked".to_string()),
        Ok(Ok(_)) => Ok(None),
        Ok(Err(HttpError::Closed)) | Ok(Err(HttpError::Io(_))) => Ok(Some((0, true))),
        Ok(Err(HttpError::Bad { status, .. })) => Ok(Some((status, false))),
    }
}

/// A valid request to mutate.
fn valid_request() -> Vec<u8> {
    b"POST /infer HTTP/1.1\r\nContent-Length: 8\r\nConnection: keep-alive\r\n\r\nabcdefgh"
        .to_vec()
}

property! {
    /// Pure noise: any byte soup must parse or fail cleanly.
    #[cases(256)]
    fn random_bytes_never_panic_the_parser(
        bytes in vec_of(0u16..256, 0..200),
    ) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        match parse_outcome(&bytes) {
            Err(e) => return Err(format!("{e} on {bytes:?}")),
            Ok(Some((status, closed))) => {
                prop_assert!(
                    closed || (400..=505).contains(&status),
                    "non-error status {status} for garbage"
                );
            }
            Ok(None) => {} // random bytes that happen to be a valid request
        }
    }

    /// Structured corruption: take a valid request and truncate it, flip
    /// bytes, or splice junk in. The parser must stay panic-free and
    /// classify every corruption as success, 4xx/5xx, or closed.
    #[cases(192)]
    fn mutated_requests_fail_cleanly(
        seed in 0u64..1_000_000,
        n_mutations in 1usize..6,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut bytes = valid_request();
        for _ in 0..n_mutations {
            match rng.range_usize(0, 4) {
                0 if !bytes.is_empty() => {
                    // Truncate somewhere.
                    bytes.truncate(rng.range_usize(0, bytes.len() + 1));
                }
                1 if !bytes.is_empty() => {
                    // Flip one byte to anything.
                    let i = rng.range_usize(0, bytes.len());
                    bytes[i] = rng.u8();
                }
                2 => {
                    // Insert a junk byte.
                    let i = rng.range_usize(0, bytes.len() + 1);
                    bytes.insert(i, rng.u8());
                }
                _ if bytes.len() > 1 => {
                    // Delete one byte.
                    let i = rng.range_usize(0, bytes.len());
                    bytes.remove(i);
                }
                _ => {}
            }
        }
        if let Err(e) = parse_outcome(&bytes) {
            return Err(format!("{e} after {n_mutations} mutations: {bytes:?}"));
        }
    }

    /// Pipelined well-formed requests all parse, in order, off one
    /// buffered stream.
    #[cases(32)]
    fn pipelined_requests_all_parse(k in 1usize..6, body_len in 0usize..40) {
        let mut wire = Vec::new();
        for i in 0..k {
            let body: Vec<u8> = (0..body_len).map(|j| (i * 7 + j) as u8).collect();
            wire.extend_from_slice(
                format!("POST /r{i} HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            );
            wire.extend_from_slice(&body);
        }
        let limits = HttpLimits::default();
        let mut r = BufReader::new(&wire[..]);
        for i in 0..k {
            match read_request(&mut r, &limits) {
                Ok(req) => {
                    prop_assert!(req.path == format!("/r{i}"), "path {} at {i}", req.path);
                    prop_assert!(req.body.len() == body_len, "body len at {i}");
                }
                Err(e) => return Err(format!("request {i} failed: {e:?}")),
            }
        }
        prop_assert!(
            matches!(read_request(&mut r, &limits), Err(HttpError::Closed)),
            "stream must end cleanly after {k} requests"
        );
    }
}

#[test]
fn oversized_inputs_hit_the_limits_not_the_allocator() {
    let limits = HttpLimits::default();
    // A request line far past max_line.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(limits.max_line * 2));
    match read_request(&mut BufReader::new(long.as_bytes()), &limits) {
        Err(HttpError::Bad { status: 431, .. }) => {}
        other => panic!("long line: {other:?}"),
    }
    // More headers than allowed.
    let mut many = String::from("GET / HTTP/1.1\r\n");
    for i in 0..(limits.max_headers + 4) {
        many.push_str(&format!("X-H{i}: v\r\n"));
    }
    many.push_str("\r\n");
    match read_request(&mut BufReader::new(many.as_bytes()), &limits) {
        Err(HttpError::Bad { status: 431, .. }) => {}
        other => panic!("many headers: {other:?}"),
    }
    // A declared body beyond max_body must be refused before allocation.
    let big = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
    match read_request(&mut BufReader::new(big.as_bytes()), &limits) {
        Err(HttpError::Bad { status: 413, .. }) => {}
        other => panic!("huge body: {other:?}"),
    }
}

/// Trivial model so the full server can sit behind the fuzzer.
struct SumModel;

impl BatchModel for SumModel {
    fn input_len(&self) -> usize {
        2
    }
    fn output_len(&self) -> usize {
        1
    }
    fn max_batch(&self) -> usize {
        4
    }
    fn infer(&mut self, inputs: &[f32], count: usize, outputs: &mut [f32]) -> Result<(), String> {
        for i in 0..count {
            outputs[i] = inputs[2 * i] + inputs[2 * i + 1];
        }
        Ok(())
    }
}

/// End-to-end: a live threaded server fed seeded garbage on many
/// connections answers 4xx or closes — and its panic counter stays 0.
/// A well-formed request afterwards proves the server is still healthy.
#[test]
fn live_server_survives_garbage_connections() {
    let server = Server::start(
        ServeConfig { max_delay_ns: 200_000, ..ServeConfig::default() },
        |_| SumModel,
    )
    .unwrap();
    let mut rng = Rng::seed_from_u64(0xF022);
    for round in 0..40 {
        let mut conn = server.connect();
        let n = rng.range_usize(1, 120);
        let junk: Vec<u8> = match round % 3 {
            0 => (0..n).map(|_| rng.u8()).collect(),
            1 => {
                // Mutated near-valid request.
                let mut v =
                    b"POST /infer HTTP/1.1\r\nContent-Length: 8\r\n\r\nabcdefgh".to_vec();
                let i = rng.range_usize(0, v.len());
                v[i] = rng.u8();
                v
            }
            _ => {
                // Truncated valid request (dies mid-body or mid-header).
                let v = b"POST /infer HTTP/1.1\r\nContent-Length: 8\r\n\r\nabcdefgh".to_vec();
                let keep = rng.range_usize(1, v.len());
                v[..keep].to_vec()
            }
        };
        // Write and hang up. Reading the reply would wedge on junk that
        // parses as a valid keep-alive request (the server rightly waits
        // for the next one); the parser-level properties above already
        // pin the 4xx/close classification. Here we only care that 40
        // abrupt garbage connections leave the server healthy.
        let _ = conn.write_all(&junk);
        drop(conn);
    }
    // Give the handlers a beat to observe the hangups.
    std::thread::sleep(std::time::Duration::from_millis(50));
    // The server still answers a well-formed request.
    let mut conn = BufReader::new(server.connect());
    let body = [1.0f32.to_le_bytes(), 2.0f32.to_le_bytes()].concat();
    conn.get_mut()
        .write_all(
            format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).as_bytes(),
        )
        .unwrap();
    conn.get_mut().write_all(&body).unwrap();
    let resp = read_response(&mut conn).unwrap();
    assert_eq!(resp.status, 200);
    drop(conn);
    let snap = server.shutdown();
    assert_eq!(snap.conn_panics, 0, "a fuzzed connection panicked its handler");
    // Some mutations only touch bytes the parser doesn't care about (body
    // contents, header values), so a few junk rounds legitimately complete
    // inference. At minimum the final well-formed request did.
    assert!(snap.completed >= 1, "final request not counted: {snap:?}");
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed,
        "accepted requests must all resolve: {snap:?}"
    );
}
