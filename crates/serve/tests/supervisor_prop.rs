//! Deterministic supervision tests: the full threaded server driven by
//! a **virtual clock**, with wedges and spawn-time deaths injected
//! through the testkit fault registry.
//!
//! Wall time only paces the supervisor's polling; every *decision* —
//! heartbeat staleness, restart backoff, event timestamps — reads the
//! virtual clock, so the tests advance time explicitly and assert exact
//! nanosecond arithmetic:
//!
//! * a wedged shard (no heartbeat, work pending) is **not** flagged at
//!   `wedge_timeout` and **is** flagged one nanosecond past it;
//! * the in-flight batch of a wedged shard is stolen and replayed
//!   **exactly once** — every caller still gets its own correct answer;
//! * the restart backoff schedule is exact and exponential
//!   (`base << restarts`), and respawns never fire early;
//! * after `max_restarts` the shard goes `Dead`: `/healthz` turns 503
//!   and accepted requests get clean 503s instead of hanging.
//!
//! The fault sites are process-global statics, so tests that arm them
//! serialize on one mutex.

use std::io::{BufReader, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lowino_serve::http;
use lowino_serve::{
    BatchModel, DuplexStream, ServeConfig, Server, ShardState, SupervisorEventKind, NO_DEADLINE,
};
use lowino_testkit::faults::{disarm_all, SHARD_SPAWN, SHARD_WEDGE};
use lowino_testkit::VirtualClock;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    let g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    disarm_all();
    g
}

struct EchoModel {
    il: usize,
}

impl BatchModel for EchoModel {
    fn input_len(&self) -> usize {
        self.il
    }
    fn output_len(&self) -> usize {
        1
    }
    fn max_batch(&self) -> usize {
        8
    }
    fn infer(&mut self, inputs: &[f32], count: usize, outputs: &mut [f32]) -> Result<(), String> {
        for i in 0..count {
            outputs[i] = inputs[i * self.il..(i + 1) * self.il].iter().sum();
        }
        Ok(())
    }
}

fn cfg(max_batch: usize, wedge_timeout_ns: u64, max_restarts: u64) -> ServeConfig {
    ServeConfig {
        shards: 1,
        max_batch,
        // Frozen virtual time never reaches a coalescing deadline, so
        // dispatch triggers purely on the size bound.
        max_delay_ns: 60_000_000_000,
        default_deadline_ns: NO_DEADLINE,
        wedge_timeout_ns,
        max_restarts,
        restart_backoff_ns: 1_000_000, // 1 ms virtual: crisp arithmetic
        ..ServeConfig::default()
    }
}

/// Fire one `/infer` from its own thread (the caller is busy driving
/// the clock); returns a join handle yielding `(status, body)`.
fn spawn_infer(conn: DuplexStream, vals: Vec<f32>) -> std::thread::JoinHandle<(u16, Vec<u8>)> {
    std::thread::spawn(move || {
        let mut conn = BufReader::new(conn);
        let mut body = Vec::new();
        for v in &vals {
            body.extend_from_slice(&v.to_le_bytes());
        }
        let head = format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());
        conn.get_mut().write_all(head.as_bytes()).unwrap();
        conn.get_mut().write_all(&body).unwrap();
        let r = http::read_response(&mut conn).unwrap();
        (r.status, r.body)
    })
}

fn get_status(server: &Server, path: &str) -> u16 {
    let mut conn = BufReader::new(server.connect());
    conn.get_mut()
        .write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    http::read_response(&mut conn).unwrap().status
}

/// Wall-poll until `cond` (the wall clock only paces detection; the
/// asserted timestamps all come from the virtual clock).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Wall-settle: give the supervisor a generous number of ticks to do
/// something it must NOT do, then let the caller assert it didn't.
fn settle() {
    std::thread::sleep(Duration::from_millis(40));
}

fn events_of(server: &Server, kind: SupervisorEventKind) -> Vec<u64> {
    server
        .supervisor_events()
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.at_ns)
        .collect()
}

#[test]
fn wedge_is_detected_exactly_past_the_timeout_and_the_batch_replays_once() {
    let _g = fault_guard();
    const WEDGE_NS: u64 = 10_000_000; // 10 ms virtual
    let clock = Arc::new(VirtualClock::new());
    let server =
        Server::start_with_clock(cfg(1, WEDGE_NS, 5), |_| EchoModel { il: 2 }, clock.clone())
            .unwrap();

    let wedges = SHARD_WEDGE.hits(); // cumulative since process start
    SHARD_WEDGE.arm();
    let client = spawn_infer(server.connect(), vec![1.5, 2.0]);
    // The worker took the batch, parked itself and stopped heartbeating
    // (its last beat is at virtual t=0).
    wait_until("the wedge fault to fire", || SHARD_WEDGE.hits() > wedges);

    // At exactly wedge_timeout the shard is still considered merely
    // slow: staleness is strict.
    clock.advance_to(WEDGE_NS);
    settle();
    assert!(
        events_of(&server, SupervisorEventKind::WedgeDetected).is_empty(),
        "wedge flagged at (not past) the timeout"
    );

    // One nanosecond past: detected, stolen, replayed.
    clock.advance(1);
    wait_until("wedge detection", || {
        !events_of(&server, SupervisorEventKind::WedgeDetected).is_empty()
    });
    assert_eq!(
        events_of(&server, SupervisorEventKind::WedgeDetected),
        vec![WEDGE_NS + 1],
        "detection is stamped at the first instant staleness held"
    );

    // The respawn obeys the backoff: scheduled at detection + base.
    let respawn_at = WEDGE_NS + 1 + 1_000_000;
    clock.advance_to(respawn_at);
    wait_until("the respawn", || {
        !events_of(&server, SupervisorEventKind::Respawned).is_empty()
    });
    assert_eq!(events_of(&server, SupervisorEventKind::Respawned), vec![respawn_at]);

    // The stolen request is replayed on the fresh worker and the caller
    // gets its answer — exactly one, and the right one.
    let (status, body) = client.join().unwrap();
    assert_eq!(status, 200);
    assert_eq!(f32::from_le_bytes([body[0], body[1], body[2], body[3]]), 3.5);

    let snap = server.shutdown();
    assert_eq!(snap.completed, 1);
    // The per-shard counter tracks steals exactly; the global one also
    // counts dispatcher deferrals while the shard was down.
    assert_eq!(snap.per_shard[0].replayed, 1, "stolen once, replayed once");
    assert!(snap.replayed >= 1);
    assert_eq!(snap.per_shard[0].restarts, 1);
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable
    );
}

#[test]
fn concurrent_batch_survives_a_wedge_with_every_reply_correctly_paired() {
    let _g = fault_guard();
    const WEDGE_NS: u64 = 5_000_000;
    let clock = Arc::new(VirtualClock::new());
    let server =
        Server::start_with_clock(cfg(2, WEDGE_NS, 5), |_| EchoModel { il: 2 }, clock.clone())
            .unwrap();

    let wedges = SHARD_WEDGE.hits();
    SHARD_WEDGE.arm();
    // Two connections coalesce into one batch (size bound 2; virtual
    // time frozen, so the coalescing deadline can't fire first).
    let a = spawn_infer(server.connect(), vec![1.0, 2.0]);
    let b = spawn_infer(server.connect(), vec![10.0, 20.0]);
    wait_until("the wedged batch", || SHARD_WEDGE.hits() > wedges);

    clock.advance_to(WEDGE_NS + 1);
    wait_until("wedge detection", || {
        !events_of(&server, SupervisorEventKind::WedgeDetected).is_empty()
    });
    clock.advance(1_000_000);
    wait_until("the respawn", || {
        !events_of(&server, SupervisorEventKind::Respawned).is_empty()
    });

    // Both callers get exactly one answer each, paired to their own
    // input — replay preserved identity, duplicated nothing.
    let (sa, ba) = a.join().unwrap();
    let (sb, bb) = b.join().unwrap();
    assert_eq!((sa, sb), (200, 200));
    assert_eq!(f32::from_le_bytes([ba[0], ba[1], ba[2], ba[3]]), 3.0);
    assert_eq!(f32::from_le_bytes([bb[0], bb[1], bb[2], bb[3]]), 30.0);

    let snap = server.shutdown();
    assert_eq!(snap.completed, 2);
    assert_eq!(
        snap.per_shard[0].replayed,
        2,
        "both members of the batch stolen once"
    );
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable
    );
}

#[test]
fn backoff_schedule_is_exact_exponential_and_exhaustion_means_dead() {
    let _g = fault_guard();
    const WEDGE_NS: u64 = 10_000_000;
    const BASE: u64 = 1_000_000;
    let clock = Arc::new(VirtualClock::new());
    let server =
        Server::start_with_clock(cfg(1, WEDGE_NS, 2), |_| EchoModel { il: 2 }, clock.clone())
            .unwrap();

    // Wedge the only shard to start the restart ladder.
    let wedges = SHARD_WEDGE.hits();
    SHARD_WEDGE.arm();
    let client = spawn_infer(server.connect(), vec![4.0, 5.0]);
    wait_until("the wedge fault to fire", || SHARD_WEDGE.hits() > wedges);
    clock.advance_to(WEDGE_NS + 1);
    wait_until("wedge detection", || {
        !events_of(&server, SupervisorEventKind::WedgeDetected).is_empty()
    });
    let d1 = events_of(&server, SupervisorEventKind::WedgeDetected)[0];

    // Respawn #1 is due at d1 + BASE (restarts = 0 → backoff = base).
    // Make it die at spawn, and check it does not fire a tick early.
    SHARD_SPAWN.arm();
    clock.advance_to(d1 + BASE - 1);
    settle();
    assert!(
        events_of(&server, SupervisorEventKind::Respawned).is_empty(),
        "respawn fired before its backoff elapsed"
    );
    clock.advance(1);
    wait_until("respawn #1", || {
        !events_of(&server, SupervisorEventKind::Respawned).is_empty()
    });
    assert_eq!(events_of(&server, SupervisorEventKind::Respawned), vec![d1 + BASE]);

    // The spawn fault killed it instantly → death detected (virtual
    // time is frozen at the respawn instant, so the detection stamp
    // equals it), restarts = 1 → backoff doubles.
    wait_until("death detection #1", || {
        !events_of(&server, SupervisorEventKind::DeathDetected).is_empty()
    });
    let d2 = events_of(&server, SupervisorEventKind::DeathDetected)[0];
    assert_eq!(d2, d1 + BASE, "frozen clock: death stamped at the respawn instant");

    SHARD_SPAWN.arm();
    clock.advance_to(d2 + 2 * BASE - 1);
    settle();
    assert_eq!(
        events_of(&server, SupervisorEventKind::Respawned).len(),
        1,
        "second respawn fired before its doubled backoff elapsed"
    );
    clock.advance(1);
    wait_until("respawn #2", || {
        events_of(&server, SupervisorEventKind::Respawned).len() == 2
    });
    assert_eq!(
        events_of(&server, SupervisorEventKind::Respawned),
        vec![d1 + BASE, d2 + 2 * BASE],
        "backoff schedule is base << restarts, exactly"
    );

    // That death exhausts max_restarts = 2: the shard is Dead for good,
    // the stranded request gets a clean 503, /healthz flips to 503 and
    // new work is refused with 503 instead of hanging.
    wait_until("the shard to be declared dead", || {
        !events_of(&server, SupervisorEventKind::GaveUp).is_empty()
    });
    assert_eq!(server.shard_states(), vec![ShardState::Dead]);
    let (status, _) = client.join().unwrap();
    assert_eq!(status, 503, "stranded request answered, not hung");
    assert_eq!(get_status(&server, "/healthz"), 503);
    let (status, _) = spawn_infer(server.connect(), vec![1.0, 1.0]).join().unwrap();
    assert_eq!(status, 503, "new work refused while all shards dead");

    let snap = server.shutdown();
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.unavailable, 2);
    assert_eq!(snap.per_shard[0].state, "dead");
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable
    );
}

#[test]
fn spawn_death_at_startup_is_respawned_not_fatal() {
    let _g = fault_guard();
    let clock = Arc::new(VirtualClock::new());
    // Two shards: shard 0 (first spawn) eats the fault and dies during
    // model construction; startup fails cleanly rather than hanging —
    // the supervisor never ran, so this is a hard config-time error.
    SHARD_SPAWN.arm();
    let res = Server::start_with_clock(
        ServeConfig { shards: 2, ..cfg(1, 10_000_000, 3) },
        |_| EchoModel { il: 2 },
        clock.clone(),
    );
    assert!(res.is_err(), "a shard dying during construction fails startup");
    disarm_all();
}
