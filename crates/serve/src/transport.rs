//! In-memory duplex byte streams — the socket abstraction that makes the
//! whole server hermetically testable.
//!
//! [`duplex_pair`] returns two connected endpoints, each `Read + Write`
//! exactly like a `TcpStream`: what one writes, the other reads, with
//! blocking reads and EOF-on-close semantics. The server's connection
//! handler is generic over `Read + Write`, so tests and benches run the
//! *identical* code path over these pipes that production runs over TCP
//! — no loopback ports, no flaky bind races, no OS socket buffers in the
//! timing.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of the duplex: an unbounded byte queue with EOF.
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        s.buf.extend(data);
        self.readable.notify_all();
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !s.buf.is_empty() {
                let n = s.buf.len().min(out.len());
                for slot in out.iter_mut().take(n) {
                    *slot = s.buf.pop_front().expect("n <= len");
                }
                return Ok(n);
            }
            if s.closed {
                return Ok(0); // EOF
            }
            s = self.readable.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        self.readable.notify_all();
    }
}

/// One endpoint of an in-memory connection. Dropping it closes the
/// connection: the peer's reads drain then return EOF and its writes
/// fail — the same shutdown shape a closed TCP socket gives a server.
pub struct DuplexStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

/// A connected pair of in-memory streams.
pub fn duplex_pair() -> (DuplexStream, DuplexStream) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        DuplexStream { rx: Arc::clone(&a), tx: Arc::clone(&b) },
        DuplexStream { rx: b, tx: a },
    )
}

impl DuplexStream {
    /// Close both directions immediately (a hard disconnect; plain drop
    /// closes only the outgoing side).
    pub fn shutdown(&self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Close both directions: the peer's reads drain whatever we
        // already wrote and then see EOF, and the peer's writes fail
        // fast instead of filling a buffer nobody will read.
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn drop_yields_eof_after_drain() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut all = Vec::new();
        b.read_to_end(&mut all).unwrap();
        assert_eq!(all, b"tail", "buffered bytes drain before EOF");
        assert!(b.write_all(b"x").is_err(), "write to dropped peer fails");
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (mut a, mut b) = duplex_pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }
}
