//! The threaded server: connection handlers feed one shared
//! [`BatcherCore`], a dispatcher thread releases ready batches
//! round-robin to shard workers, each shard runs its own
//! [`BatchModel`] on its own engine (and thread pool), and `/stats`
//! reports the whole state as JSON.
//!
//! Thread/ownership layout:
//!
//! ```text
//! conn threads ──offer──▶ BatcherCore (Mutex) ◀──take── dispatcher ──▶ shard 0 worker
//!      ▲                        │ Condvar                    │          shard 1 worker …
//!      └──── oneshot reply ◀────┴────── bounded channels ────┘
//! ```
//!
//! Guarantees the tests pin down:
//!
//! * **backpressure, not loss** — the batcher queue is bounded (503 on
//!   overflow) and shard channels are bounded (a slow shard backs the
//!   queue up into 503s); an *accepted* request always gets a response,
//!   including across shutdown (the dispatcher force-flushes the queue
//!   before exiting).
//! * **panic isolation** — each connection handler runs under
//!   `catch_unwind` (counted in `/stats`), and shard inference panics
//!   are converted into 500 responses rather than hangs.
//! * **observability** — `serve/request` and `serve/batch` spans,
//!   `serve/queue_depth` and `serve/batch_occupancy` instants, and the
//!   `serve/requests` counter; `/stats` serves the counters as JSON.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::batcher::{BatchConfig, BatcherCore, Pending};
use crate::clock::{Clock, SystemClock};
use crate::http::{self, HttpError, HttpLimits};
use crate::model::BatchModel;
use crate::transport::{duplex_pair, DuplexStream};

/// Server configuration (see `README.md` for the matching env vars).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine shards: independent models, each with its own thread pool.
    pub shards: usize,
    /// Worker threads per shard's engine.
    pub threads_per_shard: usize,
    /// Batch size bound (must be ≤ the model's planned batch capacity).
    pub max_batch: usize,
    /// Coalescing deadline: dispatch a partial batch once its oldest
    /// request is this old.
    pub max_delay_ns: u64,
    /// Admission bound on the shared queue (503 beyond).
    pub queue_cap: usize,
    /// Batches in flight per shard before backpressure reaches the
    /// queue.
    pub shard_queue: usize,
    /// HTTP input limits.
    pub limits: HttpLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            threads_per_shard: 1,
            max_batch: 4,
            max_delay_ns: 2_000_000, // 2 ms
            queue_cap: 64,
            shard_queue: 2,
            limits: HttpLimits::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `LOWINO_SERVE_SHARDS`, `LOWINO_SERVE_BATCH`,
    /// `LOWINO_SERVE_DEADLINE_US` and `LOWINO_SERVE_QUEUE`. Unparseable
    /// values panic loudly — a half-applied serving config is worse than
    /// no server.
    pub fn from_env() -> Self {
        fn env_usize(name: &str, default: usize) -> usize {
            match std::env::var(name) {
                Ok(v) => v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
                Err(_) => default,
            }
        }
        let d = Self::default();
        Self {
            shards: env_usize("LOWINO_SERVE_SHARDS", d.shards).max(1),
            threads_per_shard: d.threads_per_shard,
            max_batch: env_usize("LOWINO_SERVE_BATCH", d.max_batch).max(1),
            max_delay_ns: env_usize(
                "LOWINO_SERVE_DEADLINE_US",
                (d.max_delay_ns / 1_000) as usize,
            ) as u64
                * 1_000,
            queue_cap: env_usize("LOWINO_SERVE_QUEUE", d.queue_cap).max(1),
            shard_queue: d.shard_queue,
            limits: HttpLimits::default(),
        }
    }

    fn batch_config(&self) -> BatchConfig {
        BatchConfig {
            max_batch: self.max_batch,
            max_delay_ns: self.max_delay_ns,
            queue_cap: self.queue_cap,
        }
    }
}

/// One queued inference: decoded input plus the reply channel back to
/// the connection thread.
struct Job {
    input: Vec<f32>,
    resp: SyncSender<Result<Vec<f32>, String>>,
}

type Batch = Vec<Pending<Job>>;

#[derive(Default)]
struct ShardStats {
    requests: AtomicU64,
    batches: AtomicU64,
    demotions: AtomicU64,
    wisdom_errors: AtomicU64,
    algorithms: Mutex<Vec<String>>,
}

struct Shared {
    batcher: Mutex<BatcherCore<Job>>,
    dispatch_cv: Condvar,
    clock: Arc<dyn Clock>,
    shutdown: AtomicBool,
    limits: HttpLimits,
    /// `(input_len, output_len)` reported by the shard models.
    dims: OnceLock<(usize, usize)>,
    completed: AtomicU64,
    failed: AtomicU64,
    http_errors: AtomicU64,
    conn_panics: AtomicU64,
    shutdown_rejects: AtomicU64,
    open_conns: AtomicUsize,
    shards: Vec<ShardStats>,
}

/// Point-in-time view of every counter (also what `/stats` serializes).
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// 503s from the queue bound.
    pub rejected: u64,
    /// 503s because shutdown had begun.
    pub shutdown_rejects: u64,
    /// 200s delivered.
    pub completed: u64,
    /// 500s delivered (inference errors/panics).
    pub failed: u64,
    /// Batches released by the batcher.
    pub batches: u64,
    /// Requests released in those batches.
    pub dispatched: u64,
    /// Mean batch occupancy.
    pub mean_occupancy: f64,
    /// Queue depth right now.
    pub queue_depth: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Malformed / mis-shaped requests answered 4xx.
    pub http_errors: u64,
    /// Connection handlers that panicked (should stay 0).
    pub conn_panics: u64,
    /// Total demotions across all shard ladders.
    pub demotions: u64,
    /// Per-shard detail.
    pub per_shard: Vec<ShardSnapshot>,
}

/// Per-shard counters.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Requests this shard answered.
    pub requests: u64,
    /// Batches this shard executed.
    pub batches: u64,
    /// Demotions taken by this shard's ladders.
    pub demotions: u64,
    /// Failed shutdown wisdom saves.
    pub wisdom_errors: u64,
    /// Active algorithm per conv, in op order.
    pub algorithms: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl StatsSnapshot {
    /// Serialize for the `/stats` endpoint.
    pub fn to_json(&self) -> String {
        let per_shard: Vec<String> = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let algos: Vec<String> = s
                    .algorithms
                    .iter()
                    .map(|a| format!("\"{}\"", json_escape(a)))
                    .collect();
                format!(
                    "{{\"shard\":{},\"requests\":{},\"batches\":{},\"demotions\":{},\
                     \"wisdom_errors\":{},\"algorithms\":[{}]}}",
                    i,
                    s.requests,
                    s.batches,
                    s.demotions,
                    s.wisdom_errors,
                    algos.join(",")
                )
            })
            .collect();
        format!(
            "{{\"shards\":{},\"accepted\":{},\"rejected\":{},\"shutdown_rejects\":{},\
             \"completed\":{},\"failed\":{},\"batches\":{},\"dispatched\":{},\
             \"mean_occupancy\":{:.3},\"queue_depth\":{},\"max_queue_depth\":{},\
             \"http_errors\":{},\"conn_panics\":{},\"demotions\":{},\"per_shard\":[{}]}}",
            self.per_shard.len(),
            self.accepted,
            self.rejected,
            self.shutdown_rejects,
            self.completed,
            self.failed,
            self.batches,
            self.dispatched,
            self.mean_occupancy,
            self.queue_depth,
            self.max_queue_depth,
            self.http_errors,
            self.conn_panics,
            self.demotions,
            per_shard.join(",")
        )
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let (bs, depth) = {
        let b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
        (b.stats(), b.depth())
    };
    let per_shard: Vec<ShardSnapshot> = shared
        .shards
        .iter()
        .map(|s| ShardSnapshot {
            requests: s.requests.load(Ordering::Acquire),
            batches: s.batches.load(Ordering::Acquire),
            demotions: s.demotions.load(Ordering::Acquire),
            wisdom_errors: s.wisdom_errors.load(Ordering::Acquire),
            algorithms: s
                .algorithms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        })
        .collect();
    StatsSnapshot {
        accepted: bs.accepted,
        rejected: bs.rejected,
        shutdown_rejects: shared.shutdown_rejects.load(Ordering::Acquire),
        completed: shared.completed.load(Ordering::Acquire),
        failed: shared.failed.load(Ordering::Acquire),
        batches: bs.batches,
        dispatched: bs.dispatched,
        mean_occupancy: bs.mean_occupancy(),
        queue_depth: depth,
        max_queue_depth: bs.max_depth,
        http_errors: shared.http_errors.load(Ordering::Acquire),
        conn_panics: shared.conn_panics.load(Ordering::Acquire),
        demotions: per_shard.iter().map(|s| s.demotions).sum(),
        per_shard,
    }
}

/// The running server. Dropping it (or calling [`Server::shutdown`])
/// drains the queue, answers every accepted request, persists shard
/// state and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    accept_handle: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl Server {
    /// Start shards and the dispatcher under the real-time clock.
    /// `factory(shard_index)` is called **inside** each shard's thread to
    /// build its model — models never cross threads.
    pub fn start<M, F>(cfg: ServeConfig, factory: F) -> Result<Self, String>
    where
        M: BatchModel + 'static,
        F: Fn(usize) -> M + Send + Sync + 'static,
    {
        Self::start_with_clock(cfg, factory, Arc::new(SystemClock::new()))
    }

    /// [`Server::start`] with an explicit [`Clock`] (virtual in tests).
    pub fn start_with_clock<M, F>(
        cfg: ServeConfig,
        factory: F,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, String>
    where
        M: BatchModel + 'static,
        F: Fn(usize) -> M + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        let shared = Arc::new(Shared {
            batcher: Mutex::new(BatcherCore::new(cfg.batch_config())),
            dispatch_cv: Condvar::new(),
            clock,
            shutdown: AtomicBool::new(false),
            limits: cfg.limits,
            dims: OnceLock::new(),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            conn_panics: AtomicU64::new(0),
            shutdown_rejects: AtomicU64::new(0),
            open_conns: AtomicUsize::new(0),
            shards: (0..cfg.shards).map(|_| ShardStats::default()).collect(),
        });

        let factory = Arc::new(factory);
        let (dims_tx, dims_rx) = mpsc::channel::<(usize, usize, usize)>();
        let mut senders: Vec<SyncSender<Batch>> = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for idx in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<Batch>(cfg.shard_queue.max(1));
            senders.push(tx);
            let shared2 = Arc::clone(&shared);
            let factory2 = Arc::clone(&factory);
            let dims_tx2 = dims_tx.clone();
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("lowino-shard-{idx}"))
                    .spawn(move || shard_worker(shared2, idx, rx, factory2(idx), dims_tx2))
                    .map_err(|e| format!("spawning shard {idx}: {e}"))?,
            );
        }
        drop(dims_tx);

        // Handshake: every shard reports its model's shape before the
        // server accepts traffic; inconsistent factories are a hard
        // start-up error, not a runtime surprise.
        let mut dims: Option<(usize, usize, usize)> = None;
        for _ in 0..cfg.shards {
            let got = dims_rx
                .recv()
                .map_err(|_| "a shard died during model construction".to_string())?;
            match dims {
                None => dims = Some(got),
                Some(d) if d != got => {
                    drop(senders);
                    for h in shard_handles {
                        let _ = h.join();
                    }
                    return Err(format!("shard models disagree on shape: {d:?} vs {got:?}"));
                }
                Some(_) => {}
            }
        }
        let (il, ol, model_batch) = dims.expect("cfg.shards >= 1");
        if cfg.max_batch > model_batch {
            drop(senders);
            for h in shard_handles {
                let _ = h.join();
            }
            return Err(format!(
                "max_batch {} exceeds the model's planned batch {}",
                cfg.max_batch, model_batch
            ));
        }
        shared.dims.set((il, ol)).expect("dims set once");

        let shared2 = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("lowino-dispatch".into())
            .spawn(move || dispatcher_loop(shared2, senders))
            .map_err(|e| format!("spawning dispatcher: {e}"))?;

        Ok(Self {
            shared,
            dispatcher: Some(dispatcher),
            shard_handles,
            accept_handle: None,
            local_addr: None,
        })
    }

    /// `(input_len, output_len)` in `f32`s, as reported by the shards.
    pub fn dims(&self) -> (usize, usize) {
        *self.shared.dims.get().expect("set during start")
    }

    /// Counter snapshot (the same data `/stats` serves).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Serve one already-connected byte stream on a detached thread —
    /// the hermetic entry point ([`Server::connect`] wraps it; the TCP
    /// accept loop uses it too).
    pub fn serve_stream<S>(&self, stream: S)
    where
        S: Read + Write + Send + 'static,
    {
        spawn_connection(Arc::clone(&self.shared), stream);
    }

    /// Open an in-memory connection to this server.
    pub fn connect(&self) -> DuplexStream {
        let (client, server_end) = duplex_pair();
        self.serve_stream(server_end);
        client
    }

    /// Bind a TCP listener (e.g. `127.0.0.1:0`) and accept connections
    /// until shutdown. Returns the bound address.
    pub fn bind(&mut self, addr: &str) -> Result<SocketAddr, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("lowino-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(s) => spawn_connection(Arc::clone(&shared), s),
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| format!("spawning acceptor: {e}"))?;
        self.accept_handle = Some(handle);
        self.local_addr = Some(local);
        Ok(local)
    }

    /// Stop accepting, flush the queue (every accepted request is still
    /// answered), run shard shutdown hooks and join all threads.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        snapshot(&self.shared)
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.dispatch_cv.notify_all();
        if let Some(h) = self.accept_handle.take() {
            // Wake the blocking accept with a throwaway connection.
            if let Some(addr) = self.local_addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        // In-flight responses are already sent; give connection threads
        // a bounded window to finish writing and notice client EOFs.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.open_conns.load(Ordering::Acquire) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || !self.shard_handles.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn spawn_connection<S>(shared: Arc<Shared>, stream: S)
where
    S: Read + Write + Send + 'static,
{
    shared.open_conns.fetch_add(1, Ordering::AcqRel);
    let shared2 = Arc::clone(&shared);
    let res = std::thread::Builder::new()
        .name("lowino-conn".into())
        .spawn(move || {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                handle_connection(&shared2, stream);
            }));
            if caught.is_err() {
                shared2.conn_panics.fetch_add(1, Ordering::AcqRel);
            }
            shared2.open_conns.fetch_sub(1, Ordering::AcqRel);
        });
    if res.is_err() {
        // Spawn failed (OS thread exhaustion): the thread never ran, so
        // undo its count and drop the stream (hard disconnect).
        shared.open_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection<S: Read + Write>(shared: &Arc<Shared>, stream: S) {
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader, &shared.limits) {
            Ok(r) => r,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(HttpError::Bad { status, reason }) => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                let _ = http::write_error(reader.get_mut(), status, reason, false);
                break;
            }
        };
        let _sp = lowino_trace::span("serve/request");
        let keep = req.keep_alive;
        let ok = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/infer") => handle_infer(shared, &mut reader, &req),
            ("GET", "/stats") => {
                let json = snapshot(shared).to_json();
                http::write_response(
                    reader.get_mut(),
                    200,
                    "application/json",
                    json.as_bytes(),
                    keep,
                )
                .is_ok()
            }
            ("GET", "/healthz") => {
                http::write_response(reader.get_mut(), 200, "text/plain", b"ok\n", keep)
                    .is_ok()
            }
            ("GET" | "POST", _) => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                http::write_error(reader.get_mut(), 404, "no such endpoint", keep).is_ok()
            }
            _ => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                http::write_error(reader.get_mut(), 405, "method not allowed", keep)
                    .is_ok()
            }
        };
        if !ok || !keep {
            break;
        }
    }
}

/// Handle one `/infer`: decode, offer, await the shard's reply, respond.
/// Returns false when the connection should close (write failure).
fn handle_infer<S: Read + Write>(
    shared: &Arc<Shared>,
    reader: &mut BufReader<S>,
    req: &http::Request,
) -> bool {
    let (il, ol) = *shared.dims.get().expect("dims set before serving");
    let keep = req.keep_alive;
    if req.body.len() != il * 4 {
        shared.http_errors.fetch_add(1, Ordering::AcqRel);
        return http::write_error(
            reader.get_mut(),
            400,
            "body must be input_len f32s (little-endian)",
            keep,
        )
        .is_ok();
    }
    let input: Vec<f32> = req
        .body
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    let (tx, rx) = mpsc::sync_channel::<Result<Vec<f32>, String>>(1);
    let job = Job { input, resp: tx };
    let verdict = {
        let mut b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
        if shared.shutdown.load(Ordering::Acquire) {
            shared.shutdown_rejects.fetch_add(1, Ordering::AcqRel);
            Err(())
        } else {
            let now = shared.clock.now_ns();
            let r = b.offer(job, now).map(|_| ()).map_err(|_| ());
            lowino_trace::instant("serve/queue_depth", b.depth() as u64);
            r
        }
    };
    if verdict.is_err() {
        return http::write_error(reader.get_mut(), 503, "queue full", keep).is_ok();
    }
    lowino_trace::counter("serve/requests", 1);
    // The batch this request joined may now be full — wake the
    // dispatcher so the size bound triggers without waiting a deadline.
    shared.dispatch_cv.notify_all();
    match rx.recv() {
        Ok(Ok(out)) => {
            debug_assert_eq!(out.len(), ol);
            let mut bytes = Vec::with_capacity(out.len() * 4);
            for v in &out {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            shared.completed.fetch_add(1, Ordering::AcqRel);
            http::write_response(
                reader.get_mut(),
                200,
                "application/octet-stream",
                &bytes,
                keep,
            )
            .is_ok()
        }
        Ok(Err(msg)) => {
            shared.failed.fetch_add(1, Ordering::AcqRel);
            http::write_error(reader.get_mut(), 500, &msg, keep).is_ok()
        }
        Err(_) => {
            // Reply sender dropped without a response: shard worker died.
            shared.failed.fetch_add(1, Ordering::AcqRel);
            http::write_error(reader.get_mut(), 500, "shard unavailable", keep).is_ok()
        }
    }
}

fn dispatcher_loop(shared: Arc<Shared>, senders: Vec<SyncSender<Batch>>) {
    let mut rr = 0usize;
    loop {
        let mut exit = false;
        let batch: Batch = {
            let mut b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Force-flush: accepted requests are answered even
                    // though their deadline hasn't expired.
                    let v = b.force_take();
                    exit = v.is_empty();
                    break v;
                }
                let now = shared.clock.now_ns();
                if b.ready(now) {
                    break b.take_batch(now);
                }
                // Sleep to the deadline, capped so virtual-clock tests
                // (where wall sleeps don't advance "now") still poll.
                let wait_ns = match b.next_deadline() {
                    Some(dl) => dl.saturating_sub(now).clamp(100_000, 5_000_000),
                    None => 50_000_000,
                };
                b = shared
                    .dispatch_cv
                    .wait_timeout(b, Duration::from_nanos(wait_ns))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        if exit {
            break;
        }
        if batch.is_empty() {
            continue;
        }
        lowino_trace::instant("serve/batch_occupancy", batch.len() as u64);
        let shard = rr % senders.len();
        rr = rr.wrapping_add(1);
        // Bounded send: a slow shard blocks us here, the queue fills,
        // and admission control turns the pressure into 503s.
        if let Err(mpsc::SendError(batch)) = senders[shard].send(batch) {
            for p in batch {
                let _ = p.payload.resp.send(Err("shard unavailable".into()));
            }
        }
    }
}

fn shard_worker<M: BatchModel>(
    shared: Arc<Shared>,
    idx: usize,
    rx: Receiver<Batch>,
    mut model: M,
    dims_tx: mpsc::Sender<(usize, usize, usize)>,
) {
    let il = model.input_len();
    let ol = model.output_len();
    let cap = model.max_batch();
    let _ = dims_tx.send((il, ol, cap));
    drop(dims_tx);
    let stats = &shared.shards[idx];
    let mut inputs = vec![0f32; cap * il];
    let mut outputs = vec![0f32; cap * ol];
    let mut last_demotions = usize::MAX; // force one initial algorithms publish
    while let Ok(batch) = rx.recv() {
        let n = batch.len();
        let _sp = lowino_trace::span_arg("serve/batch", n as u64);
        debug_assert!(n >= 1 && n <= cap, "dispatcher respects max_batch");
        for (i, p) in batch.iter().enumerate() {
            inputs[i * il..(i + 1) * il].copy_from_slice(&p.payload.input);
        }
        // A panic inside inference (an armed fault the ladder could not
        // absorb) must not strand the batch's callers.
        let result = catch_unwind(AssertUnwindSafe(|| {
            model.infer(&inputs[..n * il], n, &mut outputs[..n * ol])
        }))
        .unwrap_or_else(|_| Err("inference panicked".into()));
        match result {
            Ok(()) => {
                for (i, p) in batch.into_iter().enumerate() {
                    let _ = p
                        .payload
                        .resp
                        .send(Ok(outputs[i * ol..(i + 1) * ol].to_vec()));
                }
            }
            Err(msg) => {
                for p in batch {
                    let _ = p.payload.resp.send(Err(msg.clone()));
                }
            }
        }
        stats.requests.fetch_add(n as u64, Ordering::AcqRel);
        stats.batches.fetch_add(1, Ordering::AcqRel);
        let demos = model.demotions();
        stats.demotions.store(demos as u64, Ordering::Release);
        if demos != last_demotions {
            last_demotions = demos;
            *stats.algorithms.lock().unwrap_or_else(|e| e.into_inner()) =
                model.algorithms();
        }
    }
    if model.on_shutdown().is_err() {
        stats.wisdom_errors.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity-ish model: output = [sum of inputs]; optional failure.
    struct EchoModel {
        il: usize,
        fail: bool,
    }

    impl BatchModel for EchoModel {
        fn input_len(&self) -> usize {
            self.il
        }
        fn output_len(&self) -> usize {
            1
        }
        fn max_batch(&self) -> usize {
            4
        }
        fn infer(
            &mut self,
            inputs: &[f32],
            count: usize,
            outputs: &mut [f32],
        ) -> Result<(), String> {
            if self.fail {
                return Err("deliberate".into());
            }
            for i in 0..count {
                outputs[i] = inputs[i * self.il..(i + 1) * self.il].iter().sum();
            }
            Ok(())
        }
    }

    fn post_infer(conn: &mut BufReader<DuplexStream>, vals: &[f32]) -> http::Response {
        let mut body = Vec::new();
        for v in vals {
            body.extend_from_slice(&v.to_le_bytes());
        }
        let head = format!(
            "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.get_mut().write_all(head.as_bytes()).unwrap();
        conn.get_mut().write_all(&body).unwrap();
        http::read_response(conn).unwrap()
    }

    #[test]
    fn serves_infer_stats_and_errors_over_duplex() {
        let cfg = ServeConfig {
            shards: 2,
            max_batch: 2,
            max_delay_ns: 500_000,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, |_| EchoModel { il: 3, fail: false }).unwrap();
        assert_eq!(server.dims(), (3, 1));
        let mut conn = BufReader::new(server.connect());
        let r = post_infer(&mut conn, &[1.0, 2.0, 3.5]);
        assert_eq!(r.status, 200);
        assert_eq!(r.body.len(), 4);
        let sum = f32::from_le_bytes([r.body[0], r.body[1], r.body[2], r.body[3]]);
        assert_eq!(sum, 6.5);

        // Wrong body size → 400, connection stays usable.
        conn.get_mut()
            .write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc")
            .unwrap();
        assert_eq!(http::read_response(&mut conn).unwrap().status, 400);

        // /stats parses and reflects the completed request.
        conn.get_mut()
            .write_all(b"GET /stats HTTP/1.1\r\n\r\n")
            .unwrap();
        let stats = http::read_response(&mut conn).unwrap();
        assert_eq!(stats.status, 200);
        let json = String::from_utf8(stats.body).unwrap();
        lowino_testkit::validate_json(&json).unwrap();
        assert!(json.contains("\"completed\":1"), "{json}");

        // Unknown path → 404; /healthz → 200.
        conn.get_mut()
            .write_all(b"GET /nope HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        assert_eq!(http::read_response(&mut conn).unwrap().status, 404);
        assert_eq!(http::read_response(&mut conn).unwrap().status, 200);

        drop(conn);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.conn_panics, 0);
        assert_eq!(snap.http_errors, 2, "400 + 404");
    }

    #[test]
    fn inference_failure_maps_to_500_not_a_hang() {
        let server = Server::start(
            ServeConfig { max_delay_ns: 100_000, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: true },
        )
        .unwrap();
        let mut conn = BufReader::new(server.connect());
        let r = post_infer(&mut conn, &[1.0, 2.0]);
        assert_eq!(r.status, 500);
        drop(conn);
        let snap = server.shutdown();
        assert_eq!((snap.completed, snap.failed), (0, 1));
    }

    #[test]
    fn mismatched_shard_factories_fail_startup() {
        let res = Server::start(
            ServeConfig { shards: 2, ..ServeConfig::default() },
            |i| EchoModel { il: 2 + i, fail: false },
        );
        match res {
            Err(err) => assert!(err.contains("disagree"), "{err}"),
            Ok(_) => panic!("shards disagreeing on input_len must fail startup"),
        }
    }

    #[test]
    fn oversized_max_batch_fails_startup() {
        let res = Server::start(
            ServeConfig { max_batch: 9, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: false },
        );
        match res {
            Err(err) => assert!(err.contains("exceeds"), "{err}"),
            Ok(_) => panic!("max_batch beyond the model's capacity must fail startup"),
        }
    }

    #[test]
    fn serves_over_real_tcp_loopback() {
        let mut server = Server::start(
            ServeConfig { max_delay_ns: 100_000, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: false },
        )
        .unwrap();
        let addr = server.bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = BufReader::new(stream);
        let mut body = Vec::new();
        for v in [2.0f32, 3.0] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        conn.get_mut()
            .write_all(
                format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            )
            .unwrap();
        conn.get_mut().write_all(&body).unwrap();
        let r = http::read_response(&mut conn).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            f32::from_le_bytes([r.body[0], r.body[1], r.body[2], r.body[3]]),
            5.0
        );
        drop(conn);
        server.shutdown();
    }
}
