//! The threaded server: connection handlers feed one shared
//! [`BatcherCore`], a dispatcher thread releases ready batches to the
//! shortest-backlog shard, each shard runs its own [`BatchModel`] on its
//! own engine (and thread pool), and a supervisor thread keeps the
//! shards alive: it detects dead and wedged workers, steals their
//! in-flight work for exactly-once replay, respawns them with
//! exponential backoff, and runs the overload-brownout controller.
//!
//! Thread/ownership layout:
//!
//! ```text
//! conn threads ──offer──▶ BatcherCore (Mutex) ◀──take── dispatcher ──▶ shard slot 0 ─ worker 0
//!      ▲                        │ Condvar                    │          shard slot 1 ─ worker 1 …
//!      └──── oneshot reply ◀────┤                            │ (min-depth pick)
//!                               │    supervisor ──heartbeats/steal/respawn──▶ slots
//!                               └──requeue_front── supervisor (replay)
//! ```
//!
//! Guarantees the tests pin down:
//!
//! * **backpressure, not loss** — the batcher queue is bounded (503 on
//!   overflow) and shard mailboxes are bounded (a slow shard backs the
//!   queue up into 503s); an *accepted* request always gets exactly one
//!   response — 200, 500, 504 or 503 — including across shard deaths,
//!   wedges and shutdown: `accepted == completed + failed + timed_out +
//!   unavailable`.
//! * **deadlines** — requests carry an absolute deadline
//!   (`X-Lowino-Deadline-Us`, default `LOWINO_SERVE_TIMEOUT_US`); an
//!   expired request is shed with a 504 *before* it costs shard work.
//! * **self-healing** — shard workers heartbeat; the supervisor abandons
//!   a wedged worker (stale heartbeat with work pending), steals its
//!   in-flight batch, replays it FIFO, and respawns via the model
//!   factory with exponential backoff, giving up (state `Dead`, traffic
//!   routed to survivors) after `max_restarts`.
//! * **brownout** — under queue-depth or p99-vs-deadline pressure the
//!   [`BrownoutPolicy`] steps `max_batch`/`max_delay_ns` down (and, at
//!   the last rung, relaxes shard health policies), hysteretically
//!   stepping back up when pressure clears.
//! * **panic isolation** — each connection handler runs under
//!   `catch_unwind` (counted in `/stats`), and shard inference panics
//!   are converted into 500 responses rather than hangs.
//! * **observability** — `serve/request` and `serve/batch` spans,
//!   `serve/queue_depth`, `serve/batch_occupancy`, `serve/shard_restart`,
//!   `serve/deadline_shed` and `serve/brownout` instants, the
//!   `serve/requests` counter; `/stats` serves everything as JSON and
//!   `/healthz` turns 503 when every shard is dead.

use std::collections::VecDeque;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::batcher::{BatchConfig, BatcherCore, Pending, NO_DEADLINE};
use crate::brownout::{BrownoutConfig, BrownoutInput, BrownoutPolicy, BrownoutStep};
use crate::clock::{Clock, SystemClock};
use crate::http::{self, HttpError, HttpLimits};
use crate::model::BatchModel;
use crate::supervisor::{backoff_ns, Recv, ShardSlot, ShardState};
use crate::transport::{duplex_pair, DuplexStream};

use lowino_testkit::faults::{SHARD_SPAWN, SHARD_WEDGE};

/// How often an idle shard worker wakes to heartbeat (wall time). The
/// wedge detector tolerates one missed period, so `wedge_timeout` must
/// sit well above this.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(2);

/// Wall pacing of the supervisor's detection loop.
const SUPERVISOR_TICK: Duration = Duration::from_millis(1);

/// Restart backoff ceiling.
const BACKOFF_CAP_NS: u64 = 1_000_000_000; // 1 s

/// During shutdown the virtual clock may be frozen, so wedge detection
/// falls back to wall time: a worker whose progress counter has not
/// moved for this many supervisor ticks while work is pending is
/// abandoned so shutdown can complete.
const SHUTDOWN_STAGNANT_TICKS: u32 = 200;

/// Recent-latency window feeding the brownout p99 estimate.
const LATENCY_WINDOW: usize = 512;

/// Server configuration (see `README.md` for the matching env vars).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine shards: independent models, each with its own thread pool.
    pub shards: usize,
    /// Worker threads per shard's engine.
    pub threads_per_shard: usize,
    /// Batch size bound (must be ≤ the model's planned batch capacity).
    pub max_batch: usize,
    /// Coalescing deadline: dispatch a partial batch once its oldest
    /// request is this old.
    pub max_delay_ns: u64,
    /// Admission bound on the shared queue (503 beyond).
    pub queue_cap: usize,
    /// Batches in flight per shard before backpressure reaches the
    /// queue.
    pub shard_queue: usize,
    /// HTTP input limits.
    pub limits: HttpLimits,
    /// Default relative request deadline for requests without an
    /// `X-Lowino-Deadline-Us` header ([`NO_DEADLINE`] = none).
    pub default_deadline_ns: u64,
    /// No heartbeat for this long while work is pending ⇒ the shard is
    /// wedged: abandon, steal, respawn.
    pub wedge_timeout_ns: u64,
    /// Respawns per shard before it is declared `Dead` for good.
    pub max_restarts: u64,
    /// Base restart backoff (doubles per restart, capped at 1 s).
    pub restart_backoff_ns: u64,
    /// Overload-brownout thresholds.
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            threads_per_shard: 1,
            max_batch: 4,
            max_delay_ns: 2_000_000, // 2 ms
            queue_cap: 64,
            shard_queue: 2,
            limits: HttpLimits::default(),
            default_deadline_ns: NO_DEADLINE,
            wedge_timeout_ns: 500_000_000, // 500 ms
            max_restarts: 5,
            restart_backoff_ns: 10_000_000, // 10 ms
            brownout: BrownoutConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `LOWINO_SERVE_SHARDS`, `LOWINO_SERVE_BATCH`,
    /// `LOWINO_SERVE_DEADLINE_US`, `LOWINO_SERVE_QUEUE`,
    /// `LOWINO_SERVE_TIMEOUT_US`, `LOWINO_SERVE_WEDGE_US` and
    /// `LOWINO_SERVE_MAX_RESTARTS`. Unparseable values panic loudly — a
    /// half-applied serving config is worse than no server.
    pub fn from_env() -> Self {
        fn env_u64(name: &str, default: u64) -> u64 {
            match std::env::var(name) {
                Ok(v) => v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}={v:?} is not a number")),
                Err(_) => default,
            }
        }
        let d = Self::default();
        Self {
            shards: (env_u64("LOWINO_SERVE_SHARDS", d.shards as u64) as usize).max(1),
            threads_per_shard: d.threads_per_shard,
            max_batch: (env_u64("LOWINO_SERVE_BATCH", d.max_batch as u64) as usize).max(1),
            max_delay_ns: env_u64("LOWINO_SERVE_DEADLINE_US", d.max_delay_ns / 1_000) * 1_000,
            queue_cap: (env_u64("LOWINO_SERVE_QUEUE", d.queue_cap as u64) as usize).max(1),
            shard_queue: d.shard_queue,
            limits: HttpLimits::default(),
            // 0 (or absent) = no default deadline.
            default_deadline_ns: match env_u64("LOWINO_SERVE_TIMEOUT_US", 0) {
                0 => NO_DEADLINE,
                us => us.saturating_mul(1_000),
            },
            wedge_timeout_ns: env_u64("LOWINO_SERVE_WEDGE_US", d.wedge_timeout_ns / 1_000)
                .saturating_mul(1_000),
            max_restarts: env_u64("LOWINO_SERVE_MAX_RESTARTS", d.max_restarts),
            restart_backoff_ns: d.restart_backoff_ns,
            brownout: BrownoutConfig::default(),
        }
    }

    fn batch_config(&self) -> BatchConfig {
        BatchConfig {
            max_batch: self.max_batch,
            max_delay_ns: self.max_delay_ns,
            queue_cap: self.queue_cap,
            ..BatchConfig::default()
        }
    }
}

/// The response a shard (or the lifecycle machinery) owes a request.
enum Reply {
    /// Inference output → 200.
    Output(Vec<f32>),
    /// Inference error or panic → 500.
    Failed(String),
    /// Deadline expired before execution → 504.
    Expired,
    /// No shard could run it (all dead, or stolen at shutdown) → 503.
    Unavailable,
}

/// One queued inference: decoded input plus the reply channel back to
/// the connection thread.
struct Job {
    input: Vec<f32>,
    resp: SyncSender<Reply>,
}

type Batch = Vec<Pending<Job>>;

/// What the dispatcher and supervisor put in a shard's mailbox.
enum ShardMsg {
    /// A batch to execute.
    Batch(Batch),
    /// Brownout toggle: relax/restore the model's health policy.
    SetDegraded(bool),
}

type Slot = ShardSlot<ShardMsg, Batch>;

#[derive(Default)]
struct ShardStats {
    requests: AtomicU64,
    batches: AtomicU64,
    demotions: AtomicU64,
    wisdom_errors: AtomicU64,
    algorithms: Mutex<Vec<String>>,
}

/// What the supervisor observed (virtual-clock timestamps — the
/// property tests assert detection latencies against these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorEventKind {
    /// Heartbeat stale with work pending: worker abandoned.
    WedgeDetected,
    /// Worker thread exited outside shutdown.
    DeathDetected,
    /// A replacement worker was spawned.
    Respawned,
    /// Restart budget exhausted: shard is `Dead` for good.
    GaveUp,
}

/// One supervisor observation, stamped with the supervising clock.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorEvent {
    /// Which shard.
    pub shard: usize,
    /// What happened.
    pub kind: SupervisorEventKind,
    /// `clock.now_ns()` at the observation (virtual under `VirtualClock`).
    pub at_ns: u64,
}

struct Shared {
    batcher: Mutex<BatcherCore<Job>>,
    dispatch_cv: Condvar,
    clock: Arc<dyn Clock>,
    shutdown: AtomicBool,
    limits: HttpLimits,
    default_deadline_ns: u64,
    wedge_timeout_ns: u64,
    max_restarts: u64,
    restart_backoff_ns: u64,
    shard_queue: usize,
    queue_cap: usize,
    /// `(input_len, output_len)` reported by the shard models.
    dims: OnceLock<(usize, usize)>,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    unavailable: AtomicU64,
    http_errors: AtomicU64,
    conn_panics: AtomicU64,
    shutdown_rejects: AtomicU64,
    deadline_rejects: AtomicU64,
    open_conns: AtomicUsize,
    shards: Vec<ShardStats>,
    slots: Vec<Slot>,
    /// Recent end-to-end latencies (brownout p99 input).
    latency: Mutex<VecDeque<u64>>,
    /// Current brownout rung, published for `/stats`.
    brownout_rung: AtomicU64,
    sup_stop: Mutex<bool>,
    sup_cv: Condvar,
    events: Mutex<Vec<SupervisorEvent>>,
}

impl Shared {
    fn record_latency(&self, ns: u64) {
        let mut w = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        if w.len() >= LATENCY_WINDOW {
            w.pop_front();
        }
        w.push_back(ns);
    }

    fn latency_p99(&self) -> Option<u64> {
        let w = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        if w.len() < 20 {
            return None;
        }
        let mut v: Vec<u64> = w.iter().copied().collect();
        v.sort_unstable();
        Some(v[((v.len() * 99) / 100).min(v.len() - 1)])
    }

    fn log_event(&self, shard: usize, kind: SupervisorEventKind, at_ns: u64) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SupervisorEvent { shard, kind, at_ns });
    }

    fn all_dead(&self) -> bool {
        self.slots.iter().all(|s| s.state() == ShardState::Dead)
    }
}

/// Point-in-time view of every counter (also what `/stats` serializes).
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// 503s from the queue bound.
    pub rejected: u64,
    /// 503s because shutdown had begun.
    pub shutdown_rejects: u64,
    /// 504s at admission (already expired on arrival — never accepted,
    /// so not part of the `accepted` accounting identity).
    pub deadline_rejects: u64,
    /// 200s delivered.
    pub completed: u64,
    /// 500s delivered (inference errors/panics).
    pub failed: u64,
    /// 504s delivered (deadline expired before execution).
    pub timed_out: u64,
    /// 503s delivered to *accepted* requests (no shard could run them).
    pub unavailable: u64,
    /// Batches released by the batcher.
    pub batches: u64,
    /// Requests released in those batches.
    pub dispatched: u64,
    /// Requests shed from the queue as expired.
    pub shed: u64,
    /// Requests re-enqueued (shard replay or dispatch deferral).
    pub replayed: u64,
    /// Mean batch occupancy.
    pub mean_occupancy: f64,
    /// Queue depth right now.
    pub queue_depth: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Malformed / mis-shaped requests answered 4xx.
    pub http_errors: u64,
    /// Connection handlers that panicked (should stay 0).
    pub conn_panics: u64,
    /// Total demotions across all shard ladders.
    pub demotions: u64,
    /// Current brownout rung (0 = healthy).
    pub brownout_rung: u64,
    /// Per-shard detail.
    pub per_shard: Vec<ShardSnapshot>,
}

/// Per-shard counters and supervision state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Requests this shard answered.
    pub requests: u64,
    /// Batches this shard executed.
    pub batches: u64,
    /// Demotions taken by this shard's ladders.
    pub demotions: u64,
    /// Failed shutdown wisdom saves.
    pub wisdom_errors: u64,
    /// Active algorithm per conv, in op order.
    pub algorithms: Vec<String>,
    /// Supervision state (`healthy`/`wedged`/`restarting`/`dead`).
    pub state: &'static str,
    /// Is the worker thread running right now?
    pub alive: bool,
    /// Is the worker still building its model (alive, not yet serving)?
    pub warming: bool,
    /// Completed respawns.
    pub restarts: u64,
    /// Requests stolen from this shard and replayed.
    pub replayed: u64,
    /// `now - last_heartbeat` on the server's clock.
    pub heartbeat_age_ns: u64,
    /// Mailbox backlog right now.
    pub queue_depth: usize,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl StatsSnapshot {
    /// Serialize for the `/stats` endpoint.
    pub fn to_json(&self) -> String {
        let per_shard: Vec<String> = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let algos: Vec<String> = s
                    .algorithms
                    .iter()
                    .map(|a| format!("\"{}\"", json_escape(a)))
                    .collect();
                format!(
                    "{{\"shard\":{},\"requests\":{},\"batches\":{},\"demotions\":{},\
                     \"wisdom_errors\":{},\"state\":\"{}\",\"alive\":{},\"warming\":{},\
                     \"restarts\":{},\
                     \"replayed\":{},\"heartbeat_age_ns\":{},\"queue_depth\":{},\
                     \"algorithms\":[{}]}}",
                    i,
                    s.requests,
                    s.batches,
                    s.demotions,
                    s.wisdom_errors,
                    s.state,
                    s.alive,
                    s.warming,
                    s.restarts,
                    s.replayed,
                    s.heartbeat_age_ns,
                    s.queue_depth,
                    algos.join(",")
                )
            })
            .collect();
        format!(
            "{{\"shards\":{},\"accepted\":{},\"rejected\":{},\"shutdown_rejects\":{},\
             \"deadline_rejects\":{},\
             \"completed\":{},\"failed\":{},\"timed_out\":{},\"unavailable\":{},\
             \"batches\":{},\"dispatched\":{},\"shed\":{},\"replayed\":{},\
             \"mean_occupancy\":{:.3},\"queue_depth\":{},\"max_queue_depth\":{},\
             \"http_errors\":{},\"conn_panics\":{},\"demotions\":{},\"brownout_rung\":{},\
             \"per_shard\":[{}]}}",
            self.per_shard.len(),
            self.accepted,
            self.rejected,
            self.shutdown_rejects,
            self.deadline_rejects,
            self.completed,
            self.failed,
            self.timed_out,
            self.unavailable,
            self.batches,
            self.dispatched,
            self.shed,
            self.replayed,
            self.mean_occupancy,
            self.queue_depth,
            self.max_queue_depth,
            self.http_errors,
            self.conn_panics,
            self.demotions,
            self.brownout_rung,
            per_shard.join(",")
        )
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let (bs, depth) = {
        let b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
        (b.stats(), b.depth())
    };
    let per_shard: Vec<ShardSnapshot> = shared
        .shards
        .iter()
        .zip(&shared.slots)
        .map(|(s, slot)| ShardSnapshot {
            requests: s.requests.load(Ordering::Acquire),
            batches: s.batches.load(Ordering::Acquire),
            demotions: s.demotions.load(Ordering::Acquire),
            wisdom_errors: s.wisdom_errors.load(Ordering::Acquire),
            algorithms: s
                .algorithms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            state: slot.state().as_str(),
            alive: slot.is_alive(),
            warming: slot.is_warming(),
            restarts: slot.restarts(),
            replayed: slot.replayed(),
            heartbeat_age_ns: shared.clock.age_ns(slot.last_beat_ns()),
            queue_depth: slot.depth(),
        })
        .collect();
    StatsSnapshot {
        accepted: bs.accepted,
        rejected: bs.rejected,
        shutdown_rejects: shared.shutdown_rejects.load(Ordering::Acquire),
        deadline_rejects: shared.deadline_rejects.load(Ordering::Acquire),
        completed: shared.completed.load(Ordering::Acquire),
        failed: shared.failed.load(Ordering::Acquire),
        timed_out: shared.timed_out.load(Ordering::Acquire),
        unavailable: shared.unavailable.load(Ordering::Acquire),
        batches: bs.batches,
        dispatched: bs.dispatched,
        shed: bs.shed,
        replayed: bs.replayed,
        mean_occupancy: bs.mean_occupancy(),
        queue_depth: depth,
        max_queue_depth: bs.max_depth,
        http_errors: shared.http_errors.load(Ordering::Acquire),
        conn_panics: shared.conn_panics.load(Ordering::Acquire),
        demotions: per_shard.iter().map(|s| s.demotions).sum(),
        brownout_rung: shared.brownout_rung.load(Ordering::Acquire),
        per_shard,
    }
}

/// The running server. Dropping it (or calling [`Server::shutdown`])
/// drains the queue, answers every accepted request, persists shard
/// state and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    accept_handle: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl Server {
    /// Start shards, dispatcher and supervisor under the real-time
    /// clock. `factory(shard_index)` is called **inside** each shard's
    /// thread to build its model — models never cross threads — and
    /// again on every supervised respawn.
    pub fn start<M, F>(cfg: ServeConfig, factory: F) -> Result<Self, String>
    where
        M: BatchModel + 'static,
        F: Fn(usize) -> M + Send + Sync + 'static,
    {
        Self::start_with_clock(cfg, factory, Arc::new(SystemClock::new()))
    }

    /// [`Server::start`] with an explicit [`Clock`] (virtual in tests).
    pub fn start_with_clock<M, F>(
        cfg: ServeConfig,
        factory: F,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, String>
    where
        M: BatchModel + 'static,
        F: Fn(usize) -> M + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        let now = clock.now_ns();
        let shared = Arc::new(Shared {
            batcher: Mutex::new(BatcherCore::new(cfg.batch_config())),
            dispatch_cv: Condvar::new(),
            clock,
            shutdown: AtomicBool::new(false),
            limits: cfg.limits,
            default_deadline_ns: cfg.default_deadline_ns,
            wedge_timeout_ns: cfg.wedge_timeout_ns.max(1),
            max_restarts: cfg.max_restarts,
            restart_backoff_ns: cfg.restart_backoff_ns.max(1),
            shard_queue: cfg.shard_queue.max(1),
            queue_cap: cfg.queue_cap,
            dims: OnceLock::new(),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            conn_panics: AtomicU64::new(0),
            shutdown_rejects: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            open_conns: AtomicUsize::new(0),
            shards: (0..cfg.shards).map(|_| ShardStats::default()).collect(),
            slots: (0..cfg.shards).map(|_| Slot::new()).collect(),
            latency: Mutex::new(VecDeque::new()),
            brownout_rung: AtomicU64::new(0),
            sup_stop: Mutex::new(false),
            sup_cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
        });
        // Heartbeat stamps start at "now" so a fresh shard is never
        // instantly stale under a virtual clock far from zero.
        for slot in &shared.slots {
            slot.beat(now);
        }

        let factory = Arc::new(factory);
        let (dims_tx, dims_rx) = mpsc::channel::<(usize, usize, usize)>();
        for idx in 0..cfg.shards {
            spawn_shard_worker(&shared, &factory, idx, Some(dims_tx.clone()))
                .map_err(|e| format!("spawning shard {idx}: {e}"))?;
        }
        drop(dims_tx);

        // Handshake: every shard reports its model's shape before the
        // server accepts traffic; inconsistent factories are a hard
        // start-up error, not a runtime surprise.
        let fail_startup = |shared: &Arc<Shared>, msg: String| -> String {
            shared.shutdown.store(true, Ordering::Release);
            for slot in &shared.slots {
                slot.close();
            }
            for slot in &shared.slots {
                if let Some(h) = slot.handle().take() {
                    let _ = h.join();
                }
            }
            msg
        };
        let mut dims: Option<(usize, usize, usize)> = None;
        for _ in 0..cfg.shards {
            let got = dims_rx.recv().map_err(|_| {
                fail_startup(&shared, "a shard died during model construction".into())
            })?;
            match dims {
                None => dims = Some(got),
                Some(d) if d != got => {
                    return Err(fail_startup(
                        &shared,
                        format!("shard models disagree on shape: {d:?} vs {got:?}"),
                    ));
                }
                Some(_) => {}
            }
        }
        let (il, ol, model_batch) = dims.expect("cfg.shards >= 1");
        if cfg.max_batch > model_batch {
            return Err(fail_startup(
                &shared,
                format!(
                    "max_batch {} exceeds the model's planned batch {}",
                    cfg.max_batch, model_batch
                ),
            ));
        }
        shared.dims.set((il, ol)).expect("dims set once");

        let shared2 = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("lowino-dispatch".into())
            .spawn(move || dispatcher_loop(shared2))
            .map_err(|e| format!("spawning dispatcher: {e}"))?;

        let shared2 = Arc::clone(&shared);
        let factory2 = Arc::clone(&factory);
        let brownout = BrownoutPolicy::new(cfg.brownout, cfg.max_batch, cfg.max_delay_ns);
        let supervisor = std::thread::Builder::new()
            .name("lowino-supervise".into())
            .spawn(move || supervisor_loop(shared2, factory2, brownout))
            .map_err(|e| format!("spawning supervisor: {e}"))?;

        Ok(Self {
            shared,
            dispatcher: Some(dispatcher),
            supervisor: Some(supervisor),
            accept_handle: None,
            local_addr: None,
        })
    }

    /// `(input_len, output_len)` in `f32`s, as reported by the shards.
    pub fn dims(&self) -> (usize, usize) {
        *self.shared.dims.get().expect("set during start")
    }

    /// Counter snapshot (the same data `/stats` serves).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Current supervision state per shard.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.shared.slots.iter().map(|s| s.state()).collect()
    }

    /// Everything the supervisor observed so far, clock-stamped (the
    /// property tests assert detection and backoff timing on this).
    pub fn supervisor_events(&self) -> Vec<SupervisorEvent> {
        self.shared
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Serve one already-connected byte stream on a detached thread —
    /// the hermetic entry point ([`Server::connect`] wraps it; the TCP
    /// accept loop uses it too).
    pub fn serve_stream<S>(&self, stream: S)
    where
        S: Read + Write + Send + 'static,
    {
        spawn_connection(Arc::clone(&self.shared), stream);
    }

    /// Open an in-memory connection to this server.
    pub fn connect(&self) -> DuplexStream {
        let (client, server_end) = duplex_pair();
        self.serve_stream(server_end);
        client
    }

    /// Bind a TCP listener (e.g. `127.0.0.1:0`) and accept connections
    /// until shutdown. Returns the bound address.
    pub fn bind(&mut self, addr: &str) -> Result<SocketAddr, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("lowino-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(s) => spawn_connection(Arc::clone(&shared), s),
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| format!("spawning acceptor: {e}"))?;
        self.accept_handle = Some(handle);
        self.local_addr = Some(local);
        Ok(local)
    }

    /// Stop accepting, flush the queue (every accepted request is still
    /// answered), run shard shutdown hooks and join all threads.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        snapshot(&self.shared)
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.dispatch_cv.notify_all();
        self.shared.sup_cv.notify_all();
        if let Some(h) = self.accept_handle.take() {
            // Wake the blocking accept with a throwaway connection.
            if let Some(addr) = self.local_addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Close mailboxes: live workers drain what is queued and exit;
        // the supervisor steals from the rest (answering 503) and
        // wall-abandons anything wedged so this wait terminates.
        for slot in &self.shared.slots {
            slot.close();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.slots.iter().any(|s| s.is_alive()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let mut stop = self
                .shared
                .sup_stop
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *stop = true;
            self.shared.sup_cv.notify_all();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        for slot in &self.shared.slots {
            let handle = slot.handle().take();
            if let Some(h) = handle {
                if slot.is_alive() {
                    // Genuinely stuck thread (never returned from the
                    // model): detach rather than hang shutdown. Its
                    // epoch is stale, so it can never answer anything.
                    drop(h);
                } else {
                    let _ = h.join();
                }
            }
        }
        // In-flight responses are already sent; give connection threads
        // a bounded window to finish writing and notice client EOFs.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.open_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || self.supervisor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Clears the slot's alive flag when the worker thread exits — by
/// return *or* unwind — unless the worker was already abandoned (stale
/// epoch), in which case the flag belongs to its replacement.
struct WorkerExitGuard {
    shared: Arc<Shared>,
    idx: usize,
    epoch: u64,
}

impl Drop for WorkerExitGuard {
    fn drop(&mut self) {
        self.shared.slots[self.idx].mark_exited(self.epoch);
    }
}

/// Spawn (or respawn) shard `idx`'s worker at the slot's current epoch.
/// `dims_tx` is only passed on the initial spawn (the startup
/// handshake); respawns assert against the recorded dims instead.
fn spawn_shard_worker<M, F>(
    shared: &Arc<Shared>,
    factory: &Arc<F>,
    idx: usize,
    dims_tx: Option<mpsc::Sender<(usize, usize, usize)>>,
) -> std::io::Result<()>
where
    M: BatchModel + 'static,
    F: Fn(usize) -> M + Send + Sync + 'static,
{
    let slot = &shared.slots[idx];
    let epoch = slot.current_epoch();
    slot.mark_alive();
    slot.set_warming(true);
    let shared2 = Arc::clone(shared);
    let factory2 = Arc::clone(factory);
    let res = std::thread::Builder::new()
        .name(format!("lowino-shard-{idx}"))
        .spawn(move || run_shard(shared2, factory2, idx, epoch, dims_tx));
    match res {
        Ok(h) => {
            *slot.handle() = Some(h);
            Ok(())
        }
        Err(e) => {
            slot.clear_alive();
            Err(e)
        }
    }
}

/// The shard worker body: build the model (inside this thread), then
/// drain the mailbox — heartbeating every wake — until closed or
/// abandoned.
fn run_shard<M, F>(
    shared: Arc<Shared>,
    factory: Arc<F>,
    idx: usize,
    my_epoch: u64,
    dims_tx: Option<mpsc::Sender<(usize, usize, usize)>>,
) where
    M: BatchModel + 'static,
    F: Fn(usize) -> M + Send + Sync + 'static,
{
    let _guard = WorkerExitGuard { shared: Arc::clone(&shared), idx, epoch: my_epoch };
    if SHARD_SPAWN.fire() {
        panic!("injected fault: shard/spawn (shard {idx})");
    }
    let mut model = factory(idx);
    let il = model.input_len();
    let ol = model.output_len();
    let cap = model.max_batch();
    match dims_tx {
        Some(tx) => {
            let _ = tx.send((il, ol, cap));
        }
        None => {
            // Respawn: same factory must mean same shape.
            let (eil, eol) = *shared.dims.get().expect("dims set before respawns");
            assert_eq!((il, ol), (eil, eol), "factory changed shape across respawn");
        }
    }
    let slot = &shared.slots[idx];
    // First beat: the model is built, the worker is genuinely serving —
    // this is what ends a respawn's warm-up grace. Clearing `warming`
    // lets the dispatcher route here again (it prefers warmed shards:
    // a batch sent into a ~100ms model build would just sit there).
    slot.beat(shared.clock.now_ns());
    slot.set_warming(false);
    let stats = &shared.shards[idx];
    let mut inputs = vec![0f32; cap * il];
    let mut outputs = vec![0f32; cap * ol];
    let mut last_demotions = usize::MAX; // force one initial algorithms publish
    loop {
        match slot.recv(my_epoch, HEARTBEAT_PERIOD) {
            Recv::Stop => break,
            Recv::Idle => slot.beat(shared.clock.now_ns()),
            Recv::Msg(ShardMsg::SetDegraded(d)) => {
                model.set_degraded(d);
                slot.beat(shared.clock.now_ns());
            }
            Recv::Msg(ShardMsg::Batch(batch)) => {
                let now = shared.clock.now_ns();
                slot.beat(now);
                // Last line of deadline defense: anything that expired
                // while riding the mailbox is shed, not executed.
                let mut live: Batch = Vec::with_capacity(batch.len());
                for p in batch {
                    if p.deadline_ns != NO_DEADLINE && now >= p.deadline_ns {
                        let _ = p.payload.resp.send(Reply::Expired);
                    } else {
                        live.push(p);
                    }
                }
                if live.is_empty() {
                    continue;
                }
                let n = live.len();
                debug_assert!(n <= cap, "dispatcher respects max_batch");
                for (i, p) in live.iter().enumerate() {
                    inputs[i * il..(i + 1) * il].copy_from_slice(&p.payload.input);
                }
                // Park the batch where the supervisor can steal it, then
                // probe the wedge fault: a triggered wedge stops
                // heartbeating and holds the batch until abandoned —
                // exactly what a model stuck in native code looks like.
                slot.set_active(live);
                if SHARD_WEDGE.fire() {
                    while slot.current_epoch() == my_epoch {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    return; // abandoned; the batch was stolen for replay
                }
                let _sp = lowino_trace::span_arg("serve/batch", n as u64);
                // A panic inside inference (an armed fault the ladder
                // could not absorb) must not strand the batch's callers.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    model.infer(&inputs[..n * il], n, &mut outputs[..n * ol])
                }))
                .unwrap_or_else(|_| Err("inference panicked".into()));
                // Reclaim the batch. `None` means the supervisor stole
                // it mid-flight (we were declared wedged): the thief
                // owns the replies now — exit without answering.
                let Some(live) = slot.take_active_if_current(my_epoch) else {
                    return;
                };
                match result {
                    Ok(()) => {
                        for (i, p) in live.into_iter().enumerate() {
                            let _ = p
                                .payload
                                .resp
                                .send(Reply::Output(outputs[i * ol..(i + 1) * ol].to_vec()));
                        }
                    }
                    Err(msg) => {
                        for p in live {
                            let _ = p.payload.resp.send(Reply::Failed(msg.clone()));
                        }
                    }
                }
                stats.requests.fetch_add(n as u64, Ordering::AcqRel);
                stats.batches.fetch_add(1, Ordering::AcqRel);
                let demos = model.demotions();
                stats.demotions.store(demos as u64, Ordering::Release);
                if demos != last_demotions {
                    last_demotions = demos;
                    *stats.algorithms.lock().unwrap_or_else(|e| e.into_inner()) =
                        model.algorithms();
                }
                slot.beat(shared.clock.now_ns());
            }
        }
    }
    // Clean drain exit only (an abandoned worker must not race the
    // replacement's wisdom writes).
    if slot.current_epoch() == my_epoch && model.on_shutdown().is_err() {
        stats.wisdom_errors.fetch_add(1, Ordering::AcqRel);
    }
}

fn spawn_connection<S>(shared: Arc<Shared>, stream: S)
where
    S: Read + Write + Send + 'static,
{
    shared.open_conns.fetch_add(1, Ordering::AcqRel);
    let shared2 = Arc::clone(&shared);
    let res = std::thread::Builder::new()
        .name("lowino-conn".into())
        .spawn(move || {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                handle_connection(&shared2, stream);
            }));
            if caught.is_err() {
                shared2.conn_panics.fetch_add(1, Ordering::AcqRel);
            }
            shared2.open_conns.fetch_sub(1, Ordering::AcqRel);
        });
    if res.is_err() {
        // Spawn failed (OS thread exhaustion): the thread never ran, so
        // undo its count and drop the stream (hard disconnect).
        shared.open_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection<S: Read + Write>(shared: &Arc<Shared>, stream: S) {
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader, &shared.limits) {
            Ok(r) => r,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(HttpError::Bad { status, reason }) => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                let _ = http::write_error(reader.get_mut(), status, reason, false);
                break;
            }
        };
        let _sp = lowino_trace::span("serve/request");
        let keep = req.keep_alive;
        let ok = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/infer") => handle_infer(shared, &mut reader, &req),
            ("GET", "/stats") => {
                let json = snapshot(shared).to_json();
                http::write_response(
                    reader.get_mut(),
                    200,
                    "application/json",
                    json.as_bytes(),
                    keep,
                )
                .is_ok()
            }
            ("GET", "/healthz") => {
                if shared.all_dead() {
                    http::write_error(reader.get_mut(), 503, "all shards dead", keep)
                        .is_ok()
                } else {
                    http::write_response(reader.get_mut(), 200, "text/plain", b"ok\n", keep)
                        .is_ok()
                }
            }
            ("GET" | "POST", _) => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                http::write_error(reader.get_mut(), 404, "no such endpoint", keep).is_ok()
            }
            _ => {
                shared.http_errors.fetch_add(1, Ordering::AcqRel);
                http::write_error(reader.get_mut(), 405, "method not allowed", keep)
                    .is_ok()
            }
        };
        if !ok || !keep {
            break;
        }
    }
}

/// Handle one `/infer`: decode, stamp a deadline, offer, await the
/// reply, respond. Returns false when the connection should close
/// (write failure).
fn handle_infer<S: Read + Write>(
    shared: &Arc<Shared>,
    reader: &mut BufReader<S>,
    req: &http::Request,
) -> bool {
    let (il, ol) = *shared.dims.get().expect("dims set before serving");
    let keep = req.keep_alive;
    if req.body.len() != il * 4 {
        shared.http_errors.fetch_add(1, Ordering::AcqRel);
        return http::write_error(
            reader.get_mut(),
            400,
            "body must be input_len f32s (little-endian)",
            keep,
        )
        .is_ok();
    }
    let input: Vec<f32> = req
        .body
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    let start = shared.clock.now_ns();
    let deadline_ns = match req.deadline_us {
        Some(us) => start.saturating_add(us.saturating_mul(1_000)),
        None if shared.default_deadline_ns == NO_DEADLINE => NO_DEADLINE,
        None => start.saturating_add(shared.default_deadline_ns),
    };
    if deadline_ns != NO_DEADLINE && start >= deadline_ns {
        // `X-Lowino-Deadline-Us: 0` — expired on arrival; shed at
        // admission, before it can cost queue space or shard work. Not
        // counted in `timed_out`: the request was never accepted, so it
        // is outside the accepted-accounting identity (like `rejected`).
        shared.deadline_rejects.fetch_add(1, Ordering::AcqRel);
        lowino_trace::instant("serve/deadline_shed", 1);
        return http::write_error(reader.get_mut(), 504, "deadline expired", keep).is_ok();
    }
    let (tx, rx) = mpsc::sync_channel::<Reply>(1);
    let job = Job { input, resp: tx };
    let verdict = {
        let mut b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
        if shared.shutdown.load(Ordering::Acquire) {
            shared.shutdown_rejects.fetch_add(1, Ordering::AcqRel);
            Err(())
        } else {
            let r = b.offer(job, start, deadline_ns).map(|_| ()).map_err(|_| ());
            lowino_trace::instant("serve/queue_depth", b.depth() as u64);
            r
        }
    };
    if verdict.is_err() {
        return http::write_error(reader.get_mut(), 503, "queue full", keep).is_ok();
    }
    lowino_trace::counter("serve/requests", 1);
    // The batch this request joined may now be full — wake the
    // dispatcher so the size bound triggers without waiting a deadline.
    shared.dispatch_cv.notify_all();
    let reply = rx.recv().unwrap_or(Reply::Unavailable);
    shared.record_latency(shared.clock.age_ns(start));
    match reply {
        Reply::Output(out) => {
            debug_assert_eq!(out.len(), ol);
            let mut bytes = Vec::with_capacity(out.len() * 4);
            for v in &out {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            shared.completed.fetch_add(1, Ordering::AcqRel);
            http::write_response(
                reader.get_mut(),
                200,
                "application/octet-stream",
                &bytes,
                keep,
            )
            .is_ok()
        }
        Reply::Failed(msg) => {
            shared.failed.fetch_add(1, Ordering::AcqRel);
            http::write_error(reader.get_mut(), 500, &msg, keep).is_ok()
        }
        Reply::Expired => {
            shared.timed_out.fetch_add(1, Ordering::AcqRel);
            lowino_trace::instant("serve/deadline_shed", 1);
            http::write_error(reader.get_mut(), 504, "deadline exceeded", keep).is_ok()
        }
        Reply::Unavailable => {
            shared.unavailable.fetch_add(1, Ordering::AcqRel);
            http::write_error(reader.get_mut(), 503, "shard unavailable", keep).is_ok()
        }
    }
}

/// Queue-depth-weighted dispatch order: every *alive and warmed* slot,
/// cheapest load first (mailbox backlog plus the batch the worker
/// currently executes), round-robin tie-broken so equal-load shards
/// share traffic. Warming shards (alive, but still rebuilding their
/// model after a respawn — ~100ms) get no traffic at all: their empty
/// mailbox makes them look ideal by depth, yet a batch routed there
/// rots for the whole build while warmed survivors free up in
/// single-digit milliseconds. An empty order therefore means "retry
/// shortly", which the caller's requeue path already handles.
fn pick_order(shared: &Shared, rr: usize, order: &mut Vec<usize>) {
    order.clear();
    let n = shared.slots.len();
    // (load, rr-rotated position) ascending.
    let mut keyed: Vec<((usize, usize), usize)> = Vec::with_capacity(n);
    for k in 0..n {
        let i = (rr + k) % n;
        let slot = &shared.slots[i];
        if !slot.is_alive() || slot.is_warming() {
            continue;
        }
        let load = slot.depth() + slot.has_active() as usize;
        keyed.push(((load, k), i));
    }
    keyed.sort_unstable_by_key(|&(key, _)| key);
    order.extend(keyed.into_iter().map(|(_, i)| i));
}

fn dispatcher_loop(shared: Arc<Shared>) {
    let mut rr = 0usize;
    'outer: loop {
        let mut flushing = false;
        let taken = {
            let mut b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Force-flush: accepted requests are answered even
                    // though their coalescing deadline hasn't expired
                    // (expired ones get their 504 at the shard).
                    flushing = true;
                    break crate::batcher::Taken {
                        batch: b.force_take(),
                        expired: Vec::new(),
                    };
                }
                let now = shared.clock.now_ns();
                let t = b.take_batch(now);
                if !t.batch.is_empty() || !t.expired.is_empty() {
                    break t;
                }
                // Sleep to the deadline, capped so virtual-clock tests
                // (where wall sleeps don't advance "now") still poll.
                let wait_ns = match b.next_deadline() {
                    Some(dl) => dl.saturating_sub(now).clamp(100_000, 5_000_000),
                    None => 50_000_000,
                };
                b = shared
                    .dispatch_cv
                    .wait_timeout(b, Duration::from_nanos(wait_ns))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        // Queue sheds: the 504s are owed *now*, before any dispatch.
        for p in taken.expired {
            let _ = p.payload.resp.send(Reply::Expired);
        }
        let mut batch = taken.batch;
        if batch.is_empty() {
            if flushing {
                break;
            }
            continue;
        }
        lowino_trace::instant("serve/batch_occupancy", batch.len() as u64);
        let mut order = Vec::new();
        'send: loop {
            pick_order(&shared, rr, &mut order);
            if order.is_empty() {
                // No live worker. Permanently dead (or shutting down
                // with nothing coming back): answer 503. Otherwise the
                // supervisor is mid-restart — put the batch back (ids
                // intact) and retry shortly.
                if shared.all_dead() || shared.shutdown.load(Ordering::Acquire) {
                    for p in batch {
                        let _ = p.payload.resp.send(Reply::Unavailable);
                    }
                } else {
                    shared
                        .batcher
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .requeue_front(batch);
                    std::thread::sleep(Duration::from_millis(1));
                }
                continue 'outer;
            }
            rr = rr.wrapping_add(1);
            // Non-blocking bounded sends, cheapest shard first. A full
            // or just-died shard hands the batch back and the next one
            // is tried — one unresponsive worker (wedged but not yet
            // detected) must never stall the dispatch loop for the
            // survivors' traffic. Only when *every* live mailbox is at
            // cap do we wait: that is genuine backpressure, and the
            // admission queue upstream is what turns it into 503s.
            for &idx in &order {
                match shared.slots[idx].try_send(ShardMsg::Batch(batch), shared.shard_queue) {
                    Ok(()) => break 'send,
                    Err(ShardMsg::Batch(b)) => batch = b,
                    Err(ShardMsg::SetDegraded(_)) => unreachable!("sent a batch"),
                }
            }
            // Stalled on backpressure — but the 504s owed elsewhere
            // don't stop being owed. Shed what has expired in the
            // admission queue and in the batch in hand, so a stall
            // delays dispatch, never deadline replies (a late 504 also
            // blocks that client's connection, compounding the stall
            // into its later requests).
            let now = shared.clock.now_ns();
            let queue_expired = shared
                .batcher
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .shed_expired(now);
            for p in queue_expired {
                let _ = p.payload.resp.send(Reply::Expired);
            }
            let (live, expired): (Vec<_>, Vec<_>) = batch.into_iter().partition(|p| {
                p.deadline_ns == crate::batcher::NO_DEADLINE || now < p.deadline_ns
            });
            for p in expired {
                let _ = p.payload.resp.send(Reply::Expired);
            }
            batch = live;
            if batch.is_empty() {
                continue 'outer;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Steal a gone worker's in-flight batch and queued mailbox, and give
/// the requests their future: replay through the batcher (ids and FIFO
/// order intact), or a direct 503 during shutdown when nothing will
/// come back up.
fn steal_and_replay(shared: &Shared, idx: usize, shutting_down: bool) {
    let slot = &shared.slots[idx];
    let (active, queued) = slot.steal_work();
    let mut pending: Batch = Vec::new();
    if let Some(b) = active {
        pending.extend(b);
    }
    for msg in queued {
        if let ShardMsg::Batch(b) = msg {
            pending.extend(b);
        }
    }
    if pending.is_empty() {
        return;
    }
    slot.count_replayed(pending.len() as u64);
    if shutting_down {
        for p in pending {
            let _ = p.payload.resp.send(Reply::Unavailable);
        }
    } else {
        shared
            .batcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .requeue_front(pending);
        shared.dispatch_cv.notify_all();
    }
}

/// After a death or abandonment: schedule the respawn (exponential
/// backoff) or declare the shard `Dead` when the budget is spent.
fn schedule_or_give_up(shared: &Shared, idx: usize, now: u64) {
    let slot = &shared.slots[idx];
    if slot.restarts() >= shared.max_restarts {
        slot.set_state(ShardState::Dead);
        shared.log_event(idx, SupervisorEventKind::GaveUp, now);
        // Wake the dispatcher: if this was the last shard, waiting
        // batches must be answered 503, not parked forever.
        shared.dispatch_cv.notify_all();
    } else {
        let backoff = backoff_ns(shared.restart_backoff_ns, slot.restarts(), BACKOFF_CAP_NS);
        slot.set_next_restart_at_ns(now.saturating_add(backoff));
        slot.set_state(ShardState::Restarting);
    }
}

/// The supervisor: wall-paced detection loop reading clock-stamped
/// heartbeats, plus the brownout controller.
fn supervisor_loop<M, F>(shared: Arc<Shared>, factory: Arc<F>, mut brownout: BrownoutPolicy)
where
    M: BatchModel + 'static,
    F: Fn(usize) -> M + Send + Sync + 'static,
{
    // One rung-0 instant up front so a traced healthy run still shows
    // the controller existed.
    lowino_trace::instant("serve/brownout", 0);
    let n = shared.slots.len();
    let mut last_progress: Vec<u64> = shared.slots.iter().map(|s| s.progress()).collect();
    let mut stagnant: Vec<u32> = vec![0; n];
    // Warm-up grace: a respawned worker rebuilds its model before it can
    // heartbeat, which may take longer than `wedge_timeout` — and the
    // dispatcher may already have queued work on it. Until the worker's
    // first own beat moves the progress counter past the spawn stamp,
    // the wedge detector stands down (death detection and the shutdown
    // wall-fallback still apply). Initial spawns don't need this: the
    // dims handshake blocks serving until every model is built.
    let mut spawn_progress: Vec<Option<u64>> = vec![None; n];
    loop {
        {
            let stop = shared.sup_stop.lock().unwrap_or_else(|e| e.into_inner());
            if *stop {
                break;
            }
            let _ = shared.sup_cv.wait_timeout(stop, SUPERVISOR_TICK);
        }
        let now = shared.clock.now_ns();
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        for idx in 0..n {
            let slot = &shared.slots[idx];
            let state = slot.state();
            if shutting_down && !slot.is_alive() {
                // Nothing respawns during shutdown; anything stranded
                // in this mailbox gets its 503 now.
                steal_and_replay(&shared, idx, true);
                continue;
            }
            if slot.is_alive() {
                if state != ShardState::Healthy {
                    continue;
                }
                // Wedge detection: work pending but no heartbeat for
                // wedge_timeout (clock domain — virtual in tests). At
                // shutdown a frozen virtual clock can't advance, so a
                // wall-tick stagnation fallback keeps shutdown live.
                let pending = slot.has_active() || slot.depth() > 0;
                let progress = slot.progress();
                let stalled = progress == last_progress[idx];
                if !stalled {
                    last_progress[idx] = progress;
                    stagnant[idx] = 0;
                } else if pending {
                    stagnant[idx] = stagnant[idx].saturating_add(1);
                }
                let warming = match spawn_progress[idx] {
                    Some(sp) if progress == sp => true,
                    Some(_) => {
                        spawn_progress[idx] = None; // first beat: warmed up
                        false
                    }
                    None => false,
                };
                let stale_clock = !warming
                    && pending
                    && now.saturating_sub(slot.last_beat_ns()) > shared.wedge_timeout_ns;
                let stale_wall = shutting_down && pending && stagnant[idx] > SHUTDOWN_STAGNANT_TICKS;
                if stale_clock || stale_wall {
                    slot.set_state(ShardState::Wedged);
                    shared.log_event(idx, SupervisorEventKind::WedgeDetected, now);
                    // Abandon: stale-epoch the worker, take the flag
                    // back, detach the thread (it may never return),
                    // steal its work for replay.
                    slot.bump_epoch();
                    slot.clear_alive();
                    let _ = slot.handle().take();
                    steal_and_replay(&shared, idx, shutting_down);
                    if shutting_down {
                        slot.set_state(ShardState::Restarting);
                    } else {
                        schedule_or_give_up(&shared, idx, now);
                    }
                }
            } else {
                match state {
                    ShardState::Healthy => {
                        // Unexpected worker death (spawn fault, panic).
                        shared.log_event(idx, SupervisorEventKind::DeathDetected, now);
                        slot.bump_epoch();
                        if let Some(h) = slot.handle().take() {
                            let _ = h.join();
                        }
                        steal_and_replay(&shared, idx, false);
                        schedule_or_give_up(&shared, idx, now);
                    }
                    ShardState::Restarting => {
                        if now >= slot.next_restart_at_ns() {
                            slot.count_restart();
                            match spawn_shard_worker(&shared, &factory, idx, None) {
                                Ok(()) => {
                                    slot.set_state(ShardState::Healthy);
                                    slot.beat(now);
                                    // Stamp *after* the beat above so the
                                    // grace lifts only on the worker's
                                    // own first heartbeat.
                                    spawn_progress[idx] = Some(slot.progress());
                                    shared.log_event(
                                        idx,
                                        SupervisorEventKind::Respawned,
                                        now,
                                    );
                                    lowino_trace::instant("serve/shard_restart", 1);
                                    if brownout.degraded() {
                                        let _ = slot.send(
                                            ShardMsg::SetDegraded(true),
                                            shared.shard_queue + 2,
                                        );
                                    }
                                    shared.dispatch_cv.notify_all();
                                }
                                Err(_) => {
                                    // OS-level spawn failure: burn a
                                    // restart and back off again.
                                    schedule_or_give_up(&shared, idx, now);
                                }
                            }
                        }
                    }
                    ShardState::Wedged | ShardState::Dead => {}
                }
            }
        }
        // Brownout tick: queue pressure and p99-vs-deadline headroom.
        let depth = {
            let b = shared.batcher.lock().unwrap_or_else(|e| e.into_inner());
            b.depth()
        };
        let was_degraded = brownout.degraded();
        let step = brownout.tick(BrownoutInput {
            depth,
            queue_cap: shared.queue_cap,
            p99_ns: shared.latency_p99(),
            deadline_ns: if shared.default_deadline_ns == NO_DEADLINE {
                None
            } else {
                Some(shared.default_deadline_ns)
            },
        });
        if step != BrownoutStep::Hold {
            let (max_batch, max_delay_ns) = brownout.limits();
            shared
                .batcher
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .set_limits(max_batch, max_delay_ns);
            shared
                .brownout_rung
                .store(brownout.rung() as u64, Ordering::Release);
            lowino_trace::instant("serve/brownout", brownout.rung() as u64);
            if brownout.degraded() != was_degraded {
                // Crossing the last rung: flip shard health policies.
                // cap+2 leaves headroom over the dispatcher's bound, so
                // this never blocks the supervisor.
                for slot in &shared.slots {
                    if slot.is_alive() {
                        let _ = slot.send(
                            ShardMsg::SetDegraded(brownout.degraded()),
                            shared.shard_queue + 2,
                        );
                    }
                }
            }
            shared.dispatch_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity-ish model: output = [sum of inputs]; optional failure.
    struct EchoModel {
        il: usize,
        fail: bool,
    }

    impl BatchModel for EchoModel {
        fn input_len(&self) -> usize {
            self.il
        }
        fn output_len(&self) -> usize {
            1
        }
        fn max_batch(&self) -> usize {
            4
        }
        fn infer(
            &mut self,
            inputs: &[f32],
            count: usize,
            outputs: &mut [f32],
        ) -> Result<(), String> {
            if self.fail {
                return Err("deliberate".into());
            }
            for i in 0..count {
                outputs[i] = inputs[i * self.il..(i + 1) * self.il].iter().sum();
            }
            Ok(())
        }
    }

    fn post_infer(conn: &mut BufReader<DuplexStream>, vals: &[f32]) -> http::Response {
        post_infer_with(conn, vals, None)
    }

    fn post_infer_with(
        conn: &mut BufReader<DuplexStream>,
        vals: &[f32],
        deadline_us: Option<u64>,
    ) -> http::Response {
        let mut body = Vec::new();
        for v in vals {
            body.extend_from_slice(&v.to_le_bytes());
        }
        let deadline = match deadline_us {
            Some(us) => format!("X-Lowino-Deadline-Us: {us}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "POST /infer HTTP/1.1\r\n{deadline}Content-Length: {}\r\n\r\n",
            body.len()
        );
        conn.get_mut().write_all(head.as_bytes()).unwrap();
        conn.get_mut().write_all(&body).unwrap();
        http::read_response(conn).unwrap()
    }

    #[test]
    fn serves_infer_stats_and_errors_over_duplex() {
        let cfg = ServeConfig {
            shards: 2,
            max_batch: 2,
            max_delay_ns: 500_000,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, |_| EchoModel { il: 3, fail: false }).unwrap();
        assert_eq!(server.dims(), (3, 1));
        let mut conn = BufReader::new(server.connect());
        let r = post_infer(&mut conn, &[1.0, 2.0, 3.5]);
        assert_eq!(r.status, 200);
        assert_eq!(r.body.len(), 4);
        let sum = f32::from_le_bytes([r.body[0], r.body[1], r.body[2], r.body[3]]);
        assert_eq!(sum, 6.5);

        // Wrong body size → 400, connection stays usable.
        conn.get_mut()
            .write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc")
            .unwrap();
        assert_eq!(http::read_response(&mut conn).unwrap().status, 400);

        // /stats parses and reflects the completed request plus the new
        // supervision fields.
        conn.get_mut()
            .write_all(b"GET /stats HTTP/1.1\r\n\r\n")
            .unwrap();
        let stats = http::read_response(&mut conn).unwrap();
        assert_eq!(stats.status, 200);
        let json = String::from_utf8(stats.body).unwrap();
        lowino_testkit::validate_json(&json).unwrap();
        assert!(json.contains("\"completed\":1"), "{json}");
        assert!(json.contains("\"state\":\"healthy\""), "{json}");
        assert!(json.contains("\"brownout_rung\":0"), "{json}");
        assert!(json.contains("\"timed_out\":0"), "{json}");

        // Unknown path → 404; /healthz → 200 while shards live.
        conn.get_mut()
            .write_all(b"GET /nope HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        assert_eq!(http::read_response(&mut conn).unwrap().status, 404);
        assert_eq!(http::read_response(&mut conn).unwrap().status, 200);

        drop(conn);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.conn_panics, 0);
        assert_eq!(snap.http_errors, 2, "400 + 404");
        assert_eq!(
            snap.accepted,
            snap.completed + snap.failed + snap.timed_out + snap.unavailable
        );
    }

    #[test]
    fn inference_failure_maps_to_500_not_a_hang() {
        let server = Server::start(
            ServeConfig { max_delay_ns: 100_000, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: true },
        )
        .unwrap();
        let mut conn = BufReader::new(server.connect());
        let r = post_infer(&mut conn, &[1.0, 2.0]);
        assert_eq!(r.status, 500);
        drop(conn);
        let snap = server.shutdown();
        assert_eq!((snap.completed, snap.failed), (0, 1));
    }

    #[test]
    fn zero_deadline_is_shed_at_admission_with_504() {
        let server = Server::start(
            ServeConfig { max_delay_ns: 100_000, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: false },
        )
        .unwrap();
        let mut conn = BufReader::new(server.connect());
        let r = post_infer_with(&mut conn, &[1.0, 2.0], Some(0));
        assert_eq!(r.status, 504, "expired on arrival");
        // A generous deadline still completes.
        let r = post_infer_with(&mut conn, &[1.0, 2.0], Some(5_000_000));
        assert_eq!(r.status, 200);
        drop(conn);
        let snap = server.shutdown();
        assert_eq!((snap.completed, snap.deadline_rejects), (1, 1));
        assert_eq!(snap.timed_out, 0, "admission sheds are not timed_out");
        assert_eq!(snap.accepted, 1, "the shed request never entered the queue");
        assert_eq!(snap.dispatched, 1, "no shard work for the shed request");
        assert_eq!(
            snap.accepted,
            snap.completed + snap.failed + snap.timed_out + snap.unavailable,
            "the accepted identity holds even with admission sheds"
        );
    }

    #[test]
    fn mismatched_shard_factories_fail_startup() {
        let res = Server::start(
            ServeConfig { shards: 2, ..ServeConfig::default() },
            |i| EchoModel { il: 2 + i, fail: false },
        );
        match res {
            Err(err) => assert!(err.contains("disagree"), "{err}"),
            Ok(_) => panic!("shards disagreeing on input_len must fail startup"),
        }
    }

    #[test]
    fn oversized_max_batch_fails_startup() {
        let res = Server::start(
            ServeConfig { max_batch: 9, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: false },
        );
        match res {
            Err(err) => assert!(err.contains("exceeds"), "{err}"),
            Ok(_) => panic!("max_batch beyond the model's capacity must fail startup"),
        }
    }

    #[test]
    fn serves_over_real_tcp_loopback() {
        let mut server = Server::start(
            ServeConfig { max_delay_ns: 100_000, ..ServeConfig::default() },
            |_| EchoModel { il: 2, fail: false },
        )
        .unwrap();
        let addr = server.bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = BufReader::new(stream);
        let mut body = Vec::new();
        for v in [2.0f32, 3.0] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        conn.get_mut()
            .write_all(
                format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            )
            .unwrap();
        conn.get_mut().write_all(&body).unwrap();
        let r = http::read_response(&mut conn).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            f32::from_le_bytes([r.body[0], r.body[1], r.body[2], r.body[3]]),
            5.0
        );
        drop(conn);
        server.shutdown();
    }
}
