//! `lowino-serve` — a batched, self-healing inference server over the
//! whole-model graph engine, std-only like the rest of the workspace.
//!
//! The server answers `POST /infer` requests (raw little-endian `f32`
//! tensors) by **coalescing** concurrent requests into batches — up to a
//! size bound or a deadline, whichever comes first — and dispatching each
//! batch to one of N engine *shards*, each a [`lowino_nn::CompiledGraph`]
//! owning its own thread pool. Batching is where the paper's Winograd
//! wins compound: tile counts per fork-join grow with batch size,
//! amortizing the barrier costs that dominate small shapes.
//!
//! Architecture (one type per concern, composed in [`server`]):
//!
//! * [`batcher`] — the coalescing/deadline/backpressure state machine.
//!   **Pure**: it never reads a clock or touches a socket; every
//!   transition takes an explicit `now_ns`, so the property tests drive
//!   it under a virtual clock with seeded Poisson arrivals. Requests
//!   carry absolute deadlines: expired ones are **shed** (never
//!   dispatched), coalescing stops early when a member nears expiry, and
//!   stolen batches can be re-enqueued at the front with ids intact.
//! * [`http`] — a minimal, hardened HTTP/1.1 subset: request parsing
//!   with hard limits (line length, header count, body size), keep-alive
//!   and pipelining, the `X-Lowino-Deadline-Us` request header, and
//!   short-write-proof response writing (malformed input maps to clean
//!   4xx responses, broken pipes to errors rather than panics).
//! * [`transport`] — an in-memory duplex byte stream implementing
//!   `Read + Write`, so the full server (threads and all) is testable
//!   hermetically without TCP; the real listener speaks the same code
//!   path over `TcpStream`.
//! * [`model`] — the [`model::BatchModel`] trait the shards execute, and
//!   [`model::GraphModel`] adapting a compiled graph to it (including
//!   the brownout `set_degraded` hook over `HealthPolicy`).
//! * [`supervisor`] — the shard-slot machinery: bounded mailboxes,
//!   heartbeats, the epoch-guarded *active batch* slot that makes
//!   steal-vs-reply exactly-once, and restart backoff.
//! * [`brownout`] — the pure hysteretic overload controller stepping
//!   `max_batch`/`max_delay_ns` down under queue or latency pressure
//!   (and relaxing shard health policies at the last rung).
//! * [`server`] — the threaded composition: connection handlers feed the
//!   shared batcher, a dispatcher flushes ready batches to the
//!   shortest-backlog live shard, a supervisor detects dead/wedged
//!   workers, steals their in-flight work for exactly-once replay and
//!   respawns them with exponential backoff; admission control returns
//!   503 when the bounded queue overflows, expired requests get 504
//!   before costing shard work, `/healthz` turns 503 when every shard is
//!   dead, and `/stats` reports the full picture as JSON.
//! * [`clock`] — the `Clock` abstraction ([`clock::SystemClock`] in
//!   production, the testkit `VirtualClock` in tests).
//!
//! Tracing: `serve/request` spans per handled request, `serve/batch`
//! spans (arg = occupancy) per shard execution, `serve/queue_depth` and
//! `serve/batch_occupancy` instants, `serve/shard_restart`,
//! `serve/deadline_shed` and `serve/brownout` (arg = rung) instants, a
//! `serve/requests` counter.

pub mod batcher;
pub mod brownout;
pub mod clock;
pub mod http;
pub mod model;
pub mod server;
pub mod supervisor;
pub mod transport;

pub use batcher::{BatchConfig, BatcherCore, BatcherStats, Pending, Taken, NO_DEADLINE};
pub use brownout::{BrownoutConfig, BrownoutInput, BrownoutPolicy, BrownoutStep};
pub use clock::{Clock, SystemClock};
pub use http::{HttpLimits, Request, Response};
pub use model::{BatchModel, GraphModel};
pub use server::{
    ServeConfig, Server, ShardSnapshot, StatsSnapshot, SupervisorEvent, SupervisorEventKind,
};
pub use supervisor::{backoff_ns, ShardState};
pub use transport::{duplex_pair, DuplexStream};
