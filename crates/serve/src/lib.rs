//! `lowino-serve` — a batched inference server over the whole-model graph
//! engine, std-only like the rest of the workspace.
//!
//! The server answers `POST /infer` requests (raw little-endian `f32`
//! tensors) by **coalescing** concurrent requests into batches — up to a
//! size bound or a deadline, whichever comes first — and dispatching each
//! batch to one of N engine *shards*, each a [`lowino_nn::CompiledGraph`]
//! owning its own thread pool. Batching is where the paper's Winograd
//! wins compound: tile counts per fork-join grow with batch size,
//! amortizing the barrier costs that dominate small shapes.
//!
//! Architecture (one type per concern, composed in [`server`]):
//!
//! * [`batcher`] — the coalescing/deadline/backpressure state machine.
//!   **Pure**: it never reads a clock or touches a socket; every
//!   transition takes an explicit `now_ns`, so the property tests drive
//!   it under a virtual clock with seeded Poisson arrivals.
//! * [`http`] — a minimal, hardened HTTP/1.1 subset: request parsing
//!   with hard limits (line length, header count, body size), keep-alive
//!   and pipelining, and malformed input mapped to clean 4xx responses.
//! * [`transport`] — an in-memory duplex byte stream implementing
//!   `Read + Write`, so the full server (threads and all) is testable
//!   hermetically without TCP; the real listener speaks the same code
//!   path over `TcpStream`.
//! * [`model`] — the [`model::BatchModel`] trait the shards execute, and
//!   [`model::GraphModel`] adapting a compiled graph to it.
//! * [`server`] — the threaded composition: connection handlers feed the
//!   shared batcher, a dispatcher thread flushes ready batches
//!   round-robin to shard workers, admission control returns 503 when
//!   the bounded queue overflows, and `/stats` reports queue depth,
//!   batch occupancy and per-shard demotion state as JSON.
//! * [`clock`] — the `Clock` abstraction ([`clock::SystemClock`] in
//!   production, the testkit `VirtualClock` in tests).
//!
//! Tracing: `serve/request` spans per handled request, `serve/batch`
//! spans (arg = occupancy) per shard execution, `serve/queue_depth` and
//! `serve/batch_occupancy` instants, a `serve/requests` counter.

pub mod batcher;
pub mod clock;
pub mod http;
pub mod model;
pub mod server;
pub mod transport;

pub use batcher::{BatchConfig, BatcherCore, BatcherStats, Pending};
pub use clock::{Clock, SystemClock};
pub use http::{HttpLimits, Request, Response};
pub use model::{BatchModel, GraphModel};
pub use server::{ServeConfig, Server};
pub use transport::{duplex_pair, DuplexStream};
