//! The coalescing/deadline/backpressure state machine — the heart of the
//! server, kept **pure** so it is exhaustively testable.
//!
//! [`BatcherCore`] never reads a clock, never touches a socket, never
//! blocks: every transition takes an explicit `now_ns`. The threaded
//! server wraps it in a mutex and feeds it real time; the property tests
//! (`tests/batcher_prop.rs`) feed it a virtual clock and seeded Poisson
//! arrivals and check the invariants the server's guarantees rest on:
//!
//! * **admission** — [`BatcherCore::offer`] accepts iff the queue is
//!   below its bound; a rejected payload is handed back (the server
//!   turns it into a 503, never silently dropping it);
//! * **dispatch** — [`BatcherCore::take_batch`] releases a batch only
//!   when it is *ready*: either `max_batch` requests are waiting (size
//!   bound), the oldest has waited `max_delay_ns` (coalescing deadline),
//!   or the most urgent queued request is within `expiry_margin_ns` of
//!   its *request* deadline (stop coalescing rather than blow it);
//! * **deadlines** — every request carries an absolute `deadline_ns`;
//!   [`BatcherCore::take_batch`] sheds expired requests instead of ever
//!   including one in a batch (the server answers 504 — a request is
//!   **never dispatched after its deadline**, so a doomed request costs
//!   no shard work);
//! * **exactly-once** — every accepted id leaves in exactly one batch
//!   (or exactly one shed list). [`BatcherCore::requeue_front`] puts a
//!   supervisor-stolen in-flight batch back at the head of the queue
//!   with ids and stamps intact, so a replay after a shard death keeps
//!   FIFO order and the exactly-once accounting.

use std::collections::VecDeque;

/// Sentinel deadline for "no deadline" (never expires, never sheds).
pub const NO_DEADLINE: u64 = u64::MAX;

/// Coalescing bounds.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Dispatch as soon as this many requests are queued (must be ≥ 1 and
    /// ≤ the model's planned batch capacity).
    pub max_batch: usize,
    /// Dispatch when the oldest queued request is this old, even if the
    /// batch is not full — the latency the server is willing to spend
    /// waiting for co-riders.
    pub max_delay_ns: u64,
    /// Admission bound: offers beyond this queue depth are rejected.
    pub queue_cap: usize,
    /// Stop coalescing when any queued request is within this margin of
    /// its request deadline — dispatching a partial batch beats shedding
    /// a request that was dispatchable when it arrived.
    pub expiry_margin_ns: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 4,
            max_delay_ns: 2_000_000,
            queue_cap: 64,
            expiry_margin_ns: 500_000,
        }
    }
}

/// One queued request: its admission id, arrival stamp, absolute
/// deadline and payload.
#[derive(Debug)]
pub struct Pending<T> {
    /// Dense id assigned at admission (0, 1, 2, …).
    pub id: u64,
    /// The `now_ns` passed to the accepting [`BatcherCore::offer`].
    pub enqueued_ns: u64,
    /// Absolute request deadline ([`NO_DEADLINE`] = none). At or past
    /// this instant the request is shed (504), never dispatched.
    pub deadline_ns: u64,
    /// The caller's request data.
    pub payload: T,
}

/// Counters the batcher maintains as it runs (snapshot via
/// [`BatcherCore::stats`]; `/stats` reports them).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Offers admitted.
    pub accepted: u64,
    /// Offers rejected by the queue bound.
    pub rejected: u64,
    /// Requests released in batches.
    pub dispatched: u64,
    /// Batches released.
    pub batches: u64,
    /// Sum of batch occupancies (`occupancy_sum / batches` = mean).
    pub occupancy_sum: u64,
    /// High-water queue depth.
    pub max_depth: usize,
    /// Requests shed because their deadline expired before dispatch.
    pub shed: u64,
    /// Requests re-enqueued by the supervisor after a shard death/wedge.
    pub replayed: u64,
}

impl BatcherStats {
    /// Mean requests per released batch (0 before the first batch).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.batches as f64
        }
    }
}

/// What one [`BatcherCore::take_batch`] call released: a (possibly
/// empty) batch to dispatch plus the requests it shed as expired. The
/// caller owes every shed request a 504.
#[derive(Debug)]
pub struct Taken<T> {
    /// The dispatchable batch (empty when nothing was ready).
    pub batch: Vec<Pending<T>>,
    /// Requests whose deadline expired while queued — shed, never
    /// dispatched.
    pub expired: Vec<Pending<T>>,
}

impl<T> Default for Taken<T> {
    fn default() -> Self {
        Self { batch: Vec::new(), expired: Vec::new() }
    }
}

/// The pure batching state machine. `T` is the request payload.
#[derive(Debug)]
pub struct BatcherCore<T> {
    cfg: BatchConfig,
    queue: VecDeque<Pending<T>>,
    next_id: u64,
    stats: BatcherStats,
}

impl<T> BatcherCore<T> {
    /// A fresh batcher. Panics on degenerate bounds (zero batch size or
    /// queue capacity) — those are configuration bugs, not load states.
    pub fn new(cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        assert!(cfg.queue_cap >= 1, "queue_cap must be >= 1");
        Self {
            cfg,
            queue: VecDeque::new(),
            next_id: 0,
            stats: BatcherStats::default(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> BatchConfig {
        self.cfg
    }

    /// Override the coalescing bounds live — the brownout controller
    /// steps `max_batch` / `max_delay_ns` down under pressure and back up
    /// when it clears. The admission bound (`queue_cap`) is not touched:
    /// shrinking it mid-flight would strand already-admitted requests.
    pub fn set_limits(&mut self, max_batch: usize, max_delay_ns: u64) {
        self.cfg.max_batch = max_batch.max(1);
        self.cfg.max_delay_ns = max_delay_ns;
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatcherStats {
        self.stats
    }

    /// Offer a request at time `now_ns` with an absolute request
    /// deadline ([`NO_DEADLINE`] = none). Admitted requests get a dense
    /// id; a rejected payload is returned to the caller (queue at
    /// capacity — the server answers 503).
    pub fn offer(&mut self, payload: T, now_ns: u64, deadline_ns: u64) -> Result<u64, T> {
        if self.queue.len() >= self.cfg.queue_cap {
            self.stats.rejected += 1;
            return Err(payload);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending { id, enqueued_ns: now_ns, deadline_ns, payload });
        self.stats.accepted += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.queue.len());
        Ok(id)
    }

    /// Put supervisor-stolen in-flight requests back at the **head** of
    /// the queue, ids and stamps intact (they are the oldest work in the
    /// system, so FIFO order is preserved). Replay may transiently push
    /// the depth past `queue_cap` — an accepted request is never dropped
    /// to make room for admission control.
    pub fn requeue_front(&mut self, batch: Vec<Pending<T>>) {
        self.stats.replayed += batch.len() as u64;
        for p in batch.into_iter().rev() {
            self.queue.push_front(p);
        }
        self.stats.max_depth = self.stats.max_depth.max(self.queue.len());
    }

    /// When the dispatcher next has cause to act (`None` when idle): the
    /// earlier of the oldest request's coalescing deadline and the most
    /// urgent request's expiry margin — what the dispatcher sleeps until.
    pub fn next_deadline(&self) -> Option<u64> {
        let coalesce = self
            .queue
            .front()
            .map(|p| p.enqueued_ns.saturating_add(self.cfg.max_delay_ns));
        let expiry = self
            .queue
            .iter()
            .map(|p| p.deadline_ns.saturating_sub(self.cfg.expiry_margin_ns))
            .min();
        match (coalesce, expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Is a batch releasable at `now_ns`? True when `max_batch` requests
    /// are queued, the oldest has aged past `max_delay_ns`, or any
    /// queued request is within `expiry_margin_ns` of its deadline.
    pub fn ready(&self, now_ns: u64) -> bool {
        self.queue.len() >= self.cfg.max_batch
            || self.next_deadline().is_some_and(|d| now_ns >= d)
    }

    /// Shed every queued request whose deadline has passed (the caller
    /// answers 504). Shedding can un-ready the batcher — expired
    /// requests no longer count toward the size bound.
    pub fn shed_expired(&mut self, now_ns: u64) -> Vec<Pending<T>> {
        if self
            .queue
            .iter()
            .all(|p| p.deadline_ns == NO_DEADLINE || now_ns < p.deadline_ns)
        {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut keep = VecDeque::with_capacity(self.queue.len());
        for p in self.queue.drain(..) {
            if p.deadline_ns != NO_DEADLINE && now_ns >= p.deadline_ns {
                expired.push(p);
            } else {
                keep.push_back(p);
            }
        }
        self.queue = keep;
        self.stats.shed += expired.len() as u64;
        expired
    }

    /// Shed expired requests, then release the oldest up-to-`max_batch`
    /// live requests if a batch is (still) ready at `now_ns`. The batch
    /// never contains a request past its deadline.
    pub fn take_batch(&mut self, now_ns: u64) -> Taken<T> {
        let expired = self.shed_expired(now_ns);
        let batch = if self.ready(now_ns) { self.force_take() } else { Vec::new() };
        Taken { batch, expired }
    }

    /// Release the oldest up-to-`max_batch` requests unconditionally —
    /// the shutdown flush, so every accepted request is still answered
    /// (an expired request is answered 504 downstream, not dropped).
    pub fn force_take(&mut self) -> Vec<Pending<T>> {
        let n = self.queue.len().min(self.cfg.max_batch);
        if n == 0 {
            return Vec::new();
        }
        let batch: Vec<Pending<T>> = self.queue.drain(..n).collect();
        self.stats.batches += 1;
        self.stats.dispatched += batch.len() as u64;
        self.stats.occupancy_sum += batch.len() as u64;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, max_delay_ns: u64, queue_cap: usize) -> BatchConfig {
        BatchConfig { max_batch, max_delay_ns, queue_cap, expiry_margin_ns: 0 }
    }

    #[test]
    fn size_bound_triggers_dispatch() {
        let mut b = BatcherCore::new(cfg(3, 1_000_000, 10));
        assert!(b.offer("a", 0, NO_DEADLINE).is_ok());
        assert!(b.offer("b", 1, NO_DEADLINE).is_ok());
        assert!(!b.ready(2), "two of three queued");
        assert!(b.take_batch(2).batch.is_empty());
        assert!(b.offer("c", 2, NO_DEADLINE).is_ok());
        assert!(b.ready(2), "size bound reached");
        let t = b.take_batch(2);
        assert_eq!(t.batch.len(), 3);
        assert!(t.expired.is_empty());
        assert_eq!(t.batch.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(b.depth(), 0);
    }

    #[test]
    fn deadline_triggers_partial_dispatch() {
        let mut b = BatcherCore::new(cfg(8, 100, 10));
        b.offer(1u32, 50, NO_DEADLINE).unwrap();
        b.offer(2u32, 60, NO_DEADLINE).unwrap();
        assert_eq!(b.next_deadline(), Some(150));
        assert!(!b.ready(149));
        assert!(b.ready(150), "oldest aged past max_delay");
        let t = b.take_batch(150);
        assert_eq!(t.batch.len(), 2, "partial batch at deadline");
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn queue_bound_rejects_and_returns_payload() {
        let mut b = BatcherCore::new(cfg(4, 100, 2));
        b.offer("x", 0, NO_DEADLINE).unwrap();
        b.offer("y", 0, NO_DEADLINE).unwrap();
        let back = b.offer("z", 0, NO_DEADLINE).expect_err("queue full");
        assert_eq!(back, "z");
        let s = b.stats();
        assert_eq!((s.accepted, s.rejected), (2, 1));
        // Draining frees capacity again.
        assert_eq!(b.force_take().len(), 2);
        assert!(b.offer("z", 1, NO_DEADLINE).is_ok());
    }

    #[test]
    fn oversize_backlog_releases_in_max_batch_chunks() {
        let mut b = BatcherCore::new(cfg(2, 1_000, 10));
        for i in 0..5 {
            b.offer(i, 0, NO_DEADLINE).unwrap();
        }
        assert_eq!(b.take_batch(0).batch.len(), 2, "size-ready despite young age");
        assert_eq!(b.take_batch(0).batch.len(), 2);
        assert!(b.take_batch(0).batch.is_empty(), "one left, not aged");
        assert_eq!(b.take_batch(1_000).batch.len(), 1, "deadline flushes the tail");
        let s = b.stats();
        assert_eq!((s.dispatched, s.batches), (5, 3));
        assert_eq!(s.max_depth, 5);
    }

    #[test]
    fn expired_requests_are_shed_not_dispatched() {
        let mut b = BatcherCore::new(cfg(4, 1_000_000, 10));
        b.offer("lives", 0, 500).unwrap();
        b.offer("dies", 10, 100).unwrap();
        // At t=100 the second request is exactly at its deadline: shed.
        let t = b.take_batch(100);
        assert_eq!(t.expired.len(), 1);
        assert_eq!(t.expired[0].payload, "dies");
        // The survivor is within its expiry margin at t=500 → dispatched,
        // never after its deadline.
        assert!(t.batch.is_empty(), "one live young request is not ready");
        let t = b.take_batch(499);
        assert!(t.expired.is_empty());
        assert!(t.batch.is_empty(), "t=499 < deadline-with-zero-margin");
        // (t=500 is the deadline itself: shed, not dispatched.)
        let t = b.take_batch(500);
        assert_eq!(t.expired.len(), 1);
        assert!(t.batch.is_empty());
        let s = b.stats();
        assert_eq!(s.shed, 2);
        assert_eq!(s.dispatched, 0);
    }

    #[test]
    fn expiry_margin_stops_coalescing_early() {
        let mut b = BatcherCore::new(BatchConfig {
            max_batch: 8,
            max_delay_ns: 1_000_000,
            queue_cap: 10,
            expiry_margin_ns: 50,
        });
        b.offer("urgent", 0, 200).unwrap();
        // Far from the coalescing deadline (1ms) but within margin of the
        // request deadline at t=150.
        assert!(!b.ready(149));
        assert!(b.ready(150), "deadline - margin reached");
        let t = b.take_batch(150);
        assert_eq!(t.batch.len(), 1, "dispatched before expiry, not shed");
        assert!(t.expired.is_empty());
    }

    #[test]
    fn shedding_can_unready_the_size_bound() {
        let mut b = BatcherCore::new(cfg(2, 1_000_000, 10));
        b.offer("a", 0, 10).unwrap();
        b.offer("b", 0, NO_DEADLINE).unwrap();
        assert!(b.ready(50), "two queued hits the size bound");
        let t = b.take_batch(50);
        assert_eq!(t.expired.len(), 1, "a expired");
        assert!(t.batch.is_empty(), "b alone is below the size bound and young");
        assert_eq!(b.depth(), 1);
    }

    #[test]
    fn requeue_front_preserves_ids_and_order() {
        let mut b = BatcherCore::new(cfg(3, 1_000, 10));
        for name in ["a", "b", "c", "d"] {
            b.offer(name, 0, NO_DEADLINE).unwrap();
        }
        let t = b.take_batch(0);
        assert_eq!(t.batch.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        // The shard died holding [a,b,c]; replay puts them back ahead of d.
        b.requeue_front(t.batch);
        assert_eq!(b.depth(), 4);
        let t = b.take_batch(0);
        assert_eq!(t.batch.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(t.batch.iter().map(|p| p.payload).collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(b.stats().replayed, 3);
        // New offers keep the dense id stream (no id reuse after replay).
        assert_eq!(b.offer("e", 1, NO_DEADLINE).unwrap(), 4);
    }

    #[test]
    fn set_limits_applies_live() {
        let mut b = BatcherCore::new(cfg(4, 1_000_000, 10));
        b.offer("a", 0, NO_DEADLINE).unwrap();
        b.offer("b", 0, NO_DEADLINE).unwrap();
        assert!(!b.ready(10), "below size bound, young");
        b.set_limits(2, 1_000_000);
        assert!(b.ready(10), "brownout-shrunk size bound reached");
        b.set_limits(4, 5);
        assert_eq!(b.take_batch(10).batch.len(), 2, "shrunk coalescing delay");
    }
}
