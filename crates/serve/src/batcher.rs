//! The coalescing/deadline/backpressure state machine — the heart of the
//! server, kept **pure** so it is exhaustively testable.
//!
//! [`BatcherCore`] never reads a clock, never touches a socket, never
//! blocks: every transition takes an explicit `now_ns`. The threaded
//! server wraps it in a mutex and feeds it real time; the property tests
//! (`tests/batcher_prop.rs`) feed it a virtual clock and seeded Poisson
//! arrivals and check the invariants the server's guarantees rest on:
//!
//! * **admission** — [`BatcherCore::offer`] accepts iff the queue is
//!   below its bound; a rejected payload is handed back (the server
//!   turns it into a 503, never silently dropping it);
//! * **dispatch** — [`BatcherCore::take_batch`] releases a batch only
//!   when it is *ready*: either `max_batch` requests are waiting (size
//!   bound) or the oldest has waited `max_delay_ns` (deadline bound);
//! * **exactly-once** — every accepted id leaves in exactly one batch.

use std::collections::VecDeque;

/// Coalescing bounds.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Dispatch as soon as this many requests are queued (must be ≥ 1 and
    /// ≤ the model's planned batch capacity).
    pub max_batch: usize,
    /// Dispatch when the oldest queued request is this old, even if the
    /// batch is not full — the latency the server is willing to spend
    /// waiting for co-riders.
    pub max_delay_ns: u64,
    /// Admission bound: offers beyond this queue depth are rejected.
    pub queue_cap: usize,
}

/// One queued request: its admission id, arrival stamp and payload.
#[derive(Debug)]
pub struct Pending<T> {
    /// Dense id assigned at admission (0, 1, 2, …).
    pub id: u64,
    /// The `now_ns` passed to the accepting [`BatcherCore::offer`].
    pub enqueued_ns: u64,
    /// The caller's request data.
    pub payload: T,
}

/// Counters the batcher maintains as it runs (snapshot via
/// [`BatcherCore::stats`]; `/stats` reports them).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Offers admitted.
    pub accepted: u64,
    /// Offers rejected by the queue bound.
    pub rejected: u64,
    /// Requests released in batches.
    pub dispatched: u64,
    /// Batches released.
    pub batches: u64,
    /// Sum of batch occupancies (`occupancy_sum / batches` = mean).
    pub occupancy_sum: u64,
    /// High-water queue depth.
    pub max_depth: usize,
}

impl BatcherStats {
    /// Mean requests per released batch (0 before the first batch).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.batches as f64
        }
    }
}

/// The pure batching state machine. `T` is the request payload.
#[derive(Debug)]
pub struct BatcherCore<T> {
    cfg: BatchConfig,
    queue: VecDeque<Pending<T>>,
    next_id: u64,
    stats: BatcherStats,
}

impl<T> BatcherCore<T> {
    /// A fresh batcher. Panics on degenerate bounds (zero batch size or
    /// queue capacity) — those are configuration bugs, not load states.
    pub fn new(cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        assert!(cfg.queue_cap >= 1, "queue_cap must be >= 1");
        Self {
            cfg,
            queue: VecDeque::new(),
            next_id: 0,
            stats: BatcherStats::default(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> BatchConfig {
        self.cfg
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatcherStats {
        self.stats
    }

    /// Offer a request at time `now_ns`. Admitted requests get a dense
    /// id; a rejected payload is returned to the caller (queue at
    /// capacity — the server answers 503).
    pub fn offer(&mut self, payload: T, now_ns: u64) -> Result<u64, T> {
        if self.queue.len() >= self.cfg.queue_cap {
            self.stats.rejected += 1;
            return Err(payload);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending { id, enqueued_ns: now_ns, payload });
        self.stats.accepted += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.queue.len());
        Ok(id)
    }

    /// When the oldest queued request's coalescing deadline expires
    /// (`None` when idle) — what the dispatcher sleeps until.
    pub fn next_deadline(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|p| p.enqueued_ns.saturating_add(self.cfg.max_delay_ns))
    }

    /// Is a batch releasable at `now_ns`? True when `max_batch` requests
    /// are queued, or the oldest has aged past `max_delay_ns`.
    pub fn ready(&self, now_ns: u64) -> bool {
        self.queue.len() >= self.cfg.max_batch
            || self.next_deadline().is_some_and(|d| now_ns >= d)
    }

    /// Release the oldest up-to-`max_batch` requests if a batch is ready
    /// at `now_ns`; empty vec otherwise.
    pub fn take_batch(&mut self, now_ns: u64) -> Vec<Pending<T>> {
        if !self.ready(now_ns) {
            return Vec::new();
        }
        self.force_take()
    }

    /// Release the oldest up-to-`max_batch` requests unconditionally —
    /// the shutdown flush, so every accepted request is still answered.
    pub fn force_take(&mut self) -> Vec<Pending<T>> {
        let n = self.queue.len().min(self.cfg.max_batch);
        if n == 0 {
            return Vec::new();
        }
        let batch: Vec<Pending<T>> = self.queue.drain(..n).collect();
        self.stats.batches += 1;
        self.stats.dispatched += batch.len() as u64;
        self.stats.occupancy_sum += batch.len() as u64;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, max_delay_ns: u64, queue_cap: usize) -> BatchConfig {
        BatchConfig { max_batch, max_delay_ns, queue_cap }
    }

    #[test]
    fn size_bound_triggers_dispatch() {
        let mut b = BatcherCore::new(cfg(3, 1_000_000, 10));
        assert!(b.offer("a", 0).is_ok());
        assert!(b.offer("b", 1).is_ok());
        assert!(!b.ready(2), "two of three queued");
        assert!(b.take_batch(2).is_empty());
        assert!(b.offer("c", 2).is_ok());
        assert!(b.ready(2), "size bound reached");
        let batch = b.take_batch(2);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(b.depth(), 0);
    }

    #[test]
    fn deadline_triggers_partial_dispatch() {
        let mut b = BatcherCore::new(cfg(8, 100, 10));
        b.offer(1u32, 50).unwrap();
        b.offer(2u32, 60).unwrap();
        assert_eq!(b.next_deadline(), Some(150));
        assert!(!b.ready(149));
        assert!(b.ready(150), "oldest aged past max_delay");
        let batch = b.take_batch(150);
        assert_eq!(batch.len(), 2, "partial batch at deadline");
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn queue_bound_rejects_and_returns_payload() {
        let mut b = BatcherCore::new(cfg(4, 100, 2));
        b.offer("x", 0).unwrap();
        b.offer("y", 0).unwrap();
        let back = b.offer("z", 0).expect_err("queue full");
        assert_eq!(back, "z");
        let s = b.stats();
        assert_eq!((s.accepted, s.rejected), (2, 1));
        // Draining frees capacity again.
        assert_eq!(b.force_take().len(), 2);
        assert!(b.offer("z", 1).is_ok());
    }

    #[test]
    fn oversize_backlog_releases_in_max_batch_chunks() {
        let mut b = BatcherCore::new(cfg(2, 1_000, 10));
        for i in 0..5 {
            b.offer(i, 0).unwrap();
        }
        assert_eq!(b.take_batch(0).len(), 2, "size-ready despite young age");
        assert_eq!(b.take_batch(0).len(), 2);
        assert!(b.take_batch(0).is_empty(), "one left, not aged");
        assert_eq!(b.take_batch(1_000).len(), 1, "deadline flushes the tail");
        let s = b.stats();
        assert_eq!((s.dispatched, s.batches), (5, 3));
        assert_eq!(s.max_depth, 5);
    }
}
