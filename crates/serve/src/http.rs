//! A minimal, hardened HTTP/1.1 subset — just enough protocol for an
//! inference endpoint, with hard limits everywhere untrusted bytes flow.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (1.1 default, `Connection:` override), pipelining (the
//! server reads requests back-to-back from one `BufReader`). Everything
//! else — chunked transfer, upgrades, HTTP/2 — is deliberately refused
//! with the correct status rather than half-implemented.
//!
//! The error contract the fuzz tests pin down: malformed input yields
//! [`HttpError::Bad`] (a 4xx/5xx status to write before closing), a
//! truncated stream yields [`HttpError::Io`] (close silently), a clean
//! EOF between requests yields [`HttpError::Closed`]. Never a panic.

use std::io::{self, BufRead, Write};

/// Hard limits on untrusted input.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request/header line in bytes (431 beyond).
    pub max_line: usize,
    /// Most headers per request (431 beyond).
    pub max_headers: usize,
    /// Largest accepted body in bytes (413 beyond).
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self { max_line: 4096, max_headers: 64, max_body: 1 << 22 }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target, always starting with `/`.
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection persists after the response (HTTP/1.1
    /// default, overridden by `Connection: close` / `keep-alive`).
    pub keep_alive: bool,
    /// Relative request deadline in microseconds from the
    /// `X-Lowino-Deadline-Us` header (`None` when absent — the server
    /// then applies its configured default). `0` means "already expired":
    /// admission sheds it immediately with a 504.
    pub deadline_us: Option<u64>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any request byte — the keep-alive loop's normal
    /// exit.
    Closed,
    /// The stream failed (or ended mid-request): close without a
    /// response.
    Io(io::Error),
    /// Protocol violation: send `status`, then close.
    Bad { status: u16, reason: &'static str },
}

impl HttpError {
    fn bad(status: u16, reason: &'static str) -> Self {
        HttpError::Bad { status, reason }
    }
}

/// Read one line (up to `\n`, stripping `\r\n`) with a hard byte cap.
/// `Ok(None)` means EOF before any byte of this line.
fn read_line_limited(
    r: &mut impl BufRead,
    max: usize,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(HttpError::Io)?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-line",
                )))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if line.len() + i > max {
                    return Err(HttpError::bad(431, "line too long"));
                }
                line.extend_from_slice(&buf[..i]);
                r.consume(i + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    return Err(HttpError::bad(431, "line too long"));
                }
                line.extend_from_slice(buf);
                r.consume(n);
            }
        }
    }
}

/// Parse one request off the stream. Blocking; returns when a full
/// request (line + headers + body) has been consumed, so the next call
/// starts at the next pipelined request.
pub fn read_request(
    r: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Request, HttpError> {
    let line = match read_line_limited(r, limits.max_line)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let line = std::str::from_utf8(&line)
        .map_err(|_| HttpError::bad(400, "request line is not utf-8"))?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
        _ => return Err(HttpError::bad(400, "malformed request line")),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::bad(400, "malformed method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::bad(400, "target must be absolute path"));
    }
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::bad(505, "http version not supported")),
    };

    let mut content_length: Option<usize> = None;
    let mut deadline_us: Option<u64> = None;
    let mut n_headers = 0usize;
    loop {
        let hline = read_line_limited(r, limits.max_line)?.ok_or_else(|| {
            HttpError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))
        })?;
        if hline.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > limits.max_headers {
            return Err(HttpError::bad(431, "too many headers"));
        }
        let hline = std::str::from_utf8(&hline)
            .map_err(|_| HttpError::bad(400, "header is not utf-8"))?;
        let Some((name, value)) = hline.split_once(':') else {
            return Err(HttpError::bad(400, "malformed header"));
        };
        if name.is_empty() || name.ends_with(' ') || name.ends_with('\t') {
            // RFC 7230: no whitespace between field name and colon.
            return Err(HttpError::bad(400, "malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let len: usize = value
                .parse()
                .map_err(|_| HttpError::bad(400, "bad content-length"))?;
            if content_length.is_some_and(|prev| prev != len) {
                return Err(HttpError::bad(400, "conflicting content-length"));
            }
            content_length = Some(len);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::bad(501, "transfer-encoding not supported"));
        } else if name.eq_ignore_ascii_case("x-lowino-deadline-us") {
            let us: u64 = value
                .parse()
                .map_err(|_| HttpError::bad(400, "bad x-lowino-deadline-us"))?;
            deadline_us = Some(us);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let body = match content_length {
        None if method == "POST" || method == "PUT" => {
            return Err(HttpError::bad(411, "length required"));
        }
        None | Some(0) => Vec::new(),
        Some(len) => {
            if len > limits.max_body {
                return Err(HttpError::bad(413, "payload too large"));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).map_err(HttpError::Io)?;
            body
        }
    };
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
        deadline_us,
    })
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

/// Drive `buf` to the writer in full, surviving short writes and
/// `Interrupted`. A writer that accepts zero bytes without erroring is
/// reported as `WriteZero`; a broken pipe surfaces as its own `Err` —
/// either way the caller closes the connection, it never panics.
fn write_full(w: &mut impl Write, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "client stopped accepting bytes mid-response",
                ));
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write one response (status + `Content-Length` framing + body).
///
/// The whole response is assembled into one buffer and pushed with
/// [`write_full`], so a slow or dying client yields an `Err` (the
/// connection closes cleanly) rather than a partially-framed response
/// or a panic in the connection thread.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body);
    write_full(w, &wire)?;
    w.flush()
}

/// Write a plain-text error response.
pub fn write_error(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let body = format!("{reason}\n");
    write_response(w, status, "text/plain", body.as_bytes(), keep_alive)
}

/// A client-side parsed response (what the tests and benches read back).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// Client-side: read one response off the stream.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let invalid = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let limits = HttpLimits::default();
    let line = read_line_limited(r, limits.max_line)
        .map_err(|_| invalid("bad status line"))?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof before status"))?;
    let line = String::from_utf8(line).map_err(|_| invalid("status line not utf-8"))?;
    let mut parts = line.split(' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("not an http response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let hline = read_line_limited(r, limits.max_line)
            .map_err(|_| invalid("bad header"))?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))?;
        if hline.is_empty() {
            break;
        }
        let hline = String::from_utf8(hline).map_err(|_| invalid("header not utf-8"))?;
        if let Some((name, value)) = hline.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Response { status, body, keep_alive })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/infer");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_pipelined_requests() {
        let bytes: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /infer HTTP/1.0\r\nContent-Length: 2\r\n\r\nhi";
        let mut r = BufReader::new(bytes);
        let limits = HttpLimits::default();
        let a = read_request(&mut r, &limits).unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("GET", "/healthz"));
        let b = read_request(&mut r, &limits).unwrap();
        assert_eq!(b.body, b"hi");
        assert!(!b.keep_alive, "1.0 defaults to close");
        assert!(matches!(read_request(&mut r, &limits), Err(HttpError::Closed)));
    }

    #[test]
    fn deadline_header_is_parsed() {
        let req = parse(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.deadline_us, None);
        let req =
            parse(b"POST /infer HTTP/1.1\r\nX-Lowino-Deadline-Us: 2500\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(req.deadline_us, Some(2500));
        let req = parse(b"GET / HTTP/1.1\r\nx-lowino-deadline-us: 0\r\n\r\n").unwrap();
        assert_eq!(req.deadline_us, Some(0), "case-insensitive, zero allowed");
        match parse(b"GET / HTTP/1.1\r\nX-Lowino-Deadline-Us: soon\r\n\r\n") {
            Err(HttpError::Bad { status: 400, .. }) => {}
            other => panic!("non-numeric deadline: {other:?}"),
        }
    }

    #[test]
    fn connection_header_overrides_default() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_statuses() {
        let cases: [(&[u8], u16); 8] = [
            (b"GARBAGE\r\n\r\n", 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"POST /infer HTTP/1.1\r\n\r\n", 411),
            (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
        ];
        for (bytes, want) in cases {
            match parse(bytes) {
                Err(HttpError::Bad { status, .. }) => {
                    assert_eq!(status, want, "{:?}", String::from_utf8_lossy(bytes))
                }
                other => panic!(
                    "{:?}: expected {want}, got {other:?}",
                    String::from_utf8_lossy(bytes)
                ),
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let limits = HttpLimits { max_line: 64, max_headers: 2, max_body: 8 };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        match read_request(&mut BufReader::new(long.as_bytes()), &limits) {
            Err(HttpError::Bad { status: 431, .. }) => {}
            other => panic!("long line: {other:?}"),
        }
        let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        match read_request(&mut BufReader::new(&many[..]), &limits) {
            Err(HttpError::Bad { status: 431, .. }) => {}
            other => panic!("many headers: {other:?}"),
        }
        let big = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        match read_request(&mut BufReader::new(&big[..]), &limits) {
            Err(HttpError::Bad { status: 413, .. }) => {}
            other => panic!("big body: {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        match parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort") {
            Err(HttpError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    /// Accepts at most one byte per call and injects a spurious
    /// `Interrupted` before every other byte — the worst legal `Write`.
    struct TrickleWriter {
        wire: Vec<u8>,
        interrupt_next: bool,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            match buf.first() {
                Some(&b) => {
                    self.wire.push(b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Accepts `cap` bytes, then reports a broken pipe.
    struct DyingWriter {
        cap: usize,
        written: usize,
    }

    impl Write for DyingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written >= self.cap {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"));
            }
            let n = buf.len().min(self.cap - self.written);
            self.written += n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_and_interrupts_still_deliver_the_full_response() {
        let mut w = TrickleWriter { wire: Vec::new(), interrupt_next: false };
        write_response(&mut w, 200, "application/octet-stream", b"\x09\x08\x07", true).unwrap();
        let resp = read_response(&mut BufReader::new(&w.wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, [9, 8, 7]);
    }

    #[test]
    fn broken_pipe_mid_body_is_an_error_not_a_panic() {
        let mut w = DyingWriter { cap: 20, written: 0 };
        let err = write_response(&mut w, 200, "text/plain", b"hello", true)
            .expect_err("pipe broke mid-headers");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);

        // A writer that silently accepts nothing maps to WriteZero.
        struct ZeroWriter;
        impl Write for ZeroWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_response(&mut ZeroWriter, 200, "text/plain", b"hello", true)
            .expect_err("zero-accepting writer");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/octet-stream", b"\x01\x02", true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, [1, 2]);
        assert!(resp.keep_alive);

        let mut wire = Vec::new();
        write_error(&mut wire, 503, "queue full", false).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert!(!resp.keep_alive);
        assert_eq!(resp.body, b"queue full\n");
    }
}
