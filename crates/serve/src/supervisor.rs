//! Shard supervision primitives: the mailbox, health, and lifecycle
//! state one shard worker shares with the supervisor thread.
//!
//! The design goal is **structural exactly-once**: a batch a shard is
//! executing lives in the slot's [`active`] cell, and either the worker
//! takes it back to send replies or the supervisor steals it for
//! replay — both under the same mutex, checked against the slot's
//! [`epoch`], so a stolen batch can never also be answered by the
//! worker it was stolen from. No id-dedup set is needed (and none would
//! be correct: a request may legitimately be replayed twice if its
//! second shard also dies).
//!
//! Lifecycle (per shard):
//!
//! ```text
//! Healthy ──(no heartbeat for wedge_timeout while work pending)──▶ Wedged
//!    ▲                                                               │
//!    │                                       (epoch bump; steal+replay)
//!    │                                                               ▼
//!    └────────(respawn succeeds)──────── Restarting ◀──(thread exit)─┘
//!                                            │
//!                (restarts ≥ max_restarts)   ▼
//!                                          Dead   (traffic routes to survivors)
//! ```
//!
//! Heartbeats are a relaxed-atomic progress counter plus a clock stamp:
//! the worker bumps them every mailbox wake and every batch, the
//! supervisor reads them with the virtual-clock `now` so the whole
//! detector is testable without wall time.
//!
//! [`active`]: ShardSlot::active
//! [`epoch`]: ShardSlot::epoch

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a shard is in its supervision lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Worker thread running and heartbeating.
    Healthy = 0,
    /// Heartbeat stale while work was pending; the supervisor has
    /// abandoned the thread (epoch bump) and will respawn.
    Wedged = 1,
    /// Worker gone (exit or abandonment); waiting out restart backoff.
    Restarting = 2,
    /// Restart budget exhausted — no further respawns; the dispatcher
    /// routes around this shard permanently.
    Dead = 3,
}

impl ShardState {
    /// Stable lowercase name (`/stats` reports it).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Wedged => "wedged",
            ShardState::Restarting => "restarting",
            ShardState::Dead => "dead",
        }
    }

    fn from_u8(v: u8) -> ShardState {
        match v {
            0 => ShardState::Healthy,
            1 => ShardState::Wedged,
            2 => ShardState::Restarting,
            _ => ShardState::Dead,
        }
    }
}

/// What a worker's mailbox `recv` produced.
#[derive(Debug)]
pub enum Recv<M> {
    /// A message to process.
    Msg(M),
    /// Timed out empty — heartbeat and wait again.
    Idle,
    /// Mailbox closed and drained (clean shutdown), or this worker's
    /// epoch is stale (it was abandoned): exit without touching more
    /// work.
    Stop,
}

struct Mailbox<M> {
    queue: VecDeque<M>,
    closed: bool,
}

/// Everything one shard shares between its worker thread, the
/// dispatcher, and the supervisor.
pub struct ShardSlot<M, B> {
    mailbox: Mutex<Mailbox<M>>,
    /// Signals the worker: work arrived / mailbox closed / epoch bumped.
    work_cv: Condvar,
    /// Signals the dispatcher: mailbox has space again.
    space_cv: Condvar,
    /// The batch the worker is currently executing. The worker parks it
    /// here *before* running inference and takes it back (epoch-checked)
    /// to reply; the supervisor steals it from a dead or wedged worker
    /// for replay. The mutex makes reply-vs-replay mutually exclusive.
    active: Mutex<Option<B>>,
    /// Bumped by the supervisor when it abandons a worker. Workers
    /// capture their epoch at spawn and refuse to take work or reply
    /// once it is stale.
    epoch: AtomicU64,
    /// Relaxed heartbeat counter — monotone while the worker is live.
    progress: AtomicU64,
    /// Clock stamp of the last heartbeat (the supervisor's clock, so
    /// virtual under `VirtualClock`).
    last_beat_ns: AtomicU64,
    /// True from just before spawn until the worker thread unwinds
    /// (cleared by a drop guard, so panics clear it too).
    alive: AtomicBool,
    /// True from just before spawn until the worker has built its model
    /// and is actually draining the mailbox. A warming shard is alive
    /// but cannot serve yet — the dispatcher prefers warmed survivors
    /// (model builds can take ~100ms; routing into them stalls traffic)
    /// and the supervisor's wedge detector stands down for it.
    warming: AtomicBool,
    state: AtomicU8,
    restarts: AtomicU64,
    /// Requests stolen from this shard and re-enqueued.
    replayed: AtomicU64,
    /// Earliest instant (supervisor clock) the next respawn may happen.
    next_restart_at_ns: AtomicU64,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl<M, B> Default for ShardSlot<M, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, B> ShardSlot<M, B> {
    /// A fresh slot in `Healthy` state with an open, empty mailbox.
    pub fn new() -> Self {
        Self {
            mailbox: Mutex::new(Mailbox { queue: VecDeque::new(), closed: false }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            active: Mutex::new(None),
            epoch: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            last_beat_ns: AtomicU64::new(0),
            alive: AtomicBool::new(false),
            warming: AtomicBool::new(false),
            state: AtomicU8::new(ShardState::Healthy as u8),
            restarts: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            next_restart_at_ns: AtomicU64::new(0),
            handle: Mutex::new(None),
        }
    }

    // ---- dispatcher side -------------------------------------------------

    /// Queued message count (the weighted dispatcher picks the minimum).
    pub fn depth(&self) -> usize {
        self.mailbox.lock().unwrap().queue.len()
    }

    /// Bounded send: blocks while the mailbox is at `cap` and the worker
    /// is alive; hands the message back if the mailbox is closed or the
    /// worker is gone (the dispatcher then re-picks a shard).
    pub fn send(&self, msg: M, cap: usize) -> Result<(), M> {
        let mut mb = self.mailbox.lock().unwrap();
        loop {
            if mb.closed || !self.alive.load(Ordering::Acquire) {
                return Err(msg);
            }
            if mb.queue.len() < cap {
                mb.queue.push_back(msg);
                self.work_cv.notify_one();
                return Ok(());
            }
            let (next, _) = self
                .space_cv
                .wait_timeout(mb, Duration::from_millis(2))
                .unwrap();
            mb = next;
        }
    }

    /// Non-blocking bounded send: hands the message straight back when
    /// the mailbox is full, closed, or the worker is gone. The
    /// dispatcher uses this so one unresponsive shard (mailbox at cap,
    /// worker secretly wedged but not yet detected) can never hold the
    /// whole dispatch loop hostage — it just tries the next shard.
    pub fn try_send(&self, msg: M, cap: usize) -> Result<(), M> {
        let mut mb = self.mailbox.lock().unwrap();
        if mb.closed || !self.alive.load(Ordering::Acquire) || mb.queue.len() >= cap {
            return Err(msg);
        }
        mb.queue.push_back(msg);
        self.work_cv.notify_one();
        Ok(())
    }

    // ---- worker side -----------------------------------------------------

    /// Worker mailbox wait: pops a message, or times out (heartbeat and
    /// call again), or reports `Stop` when the mailbox is closed-and-
    /// drained or `my_epoch` went stale (this worker was abandoned).
    pub fn recv(&self, my_epoch: u64, timeout: Duration) -> Recv<M> {
        let mut mb = self.mailbox.lock().unwrap();
        if self.epoch.load(Ordering::Acquire) != my_epoch {
            return Recv::Stop;
        }
        if let Some(msg) = mb.queue.pop_front() {
            self.space_cv.notify_one();
            return Recv::Msg(msg);
        }
        if mb.closed {
            return Recv::Stop;
        }
        let (mut mb, _) = self.work_cv.wait_timeout(mb, timeout).unwrap();
        if self.epoch.load(Ordering::Acquire) != my_epoch {
            return Recv::Stop;
        }
        match mb.queue.pop_front() {
            Some(msg) => {
                self.space_cv.notify_one();
                Recv::Msg(msg)
            }
            None if mb.closed => Recv::Stop,
            None => Recv::Idle,
        }
    }

    /// Record a heartbeat at `now_ns` (the supervisor's clock domain).
    pub fn beat(&self, now_ns: u64) {
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.last_beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Park the batch the worker is about to execute where the
    /// supervisor can steal it.
    pub fn set_active(&self, batch: B) {
        *self.active.lock().unwrap() = Some(batch);
    }

    /// Worker reclaims its active batch to reply — succeeds only if the
    /// batch is still there *and* the worker's epoch is current. A
    /// `None` means the supervisor stole it (or abandoned this worker):
    /// do not reply.
    pub fn take_active_if_current(&self, my_epoch: u64) -> Option<B> {
        let mut active = self.active.lock().unwrap();
        if self.epoch.load(Ordering::Acquire) != my_epoch {
            return None;
        }
        active.take()
    }

    /// Peek whether an active batch is outstanding (wedge detection
    /// counts it as pending work).
    pub fn has_active(&self) -> bool {
        self.active.lock().unwrap().is_some()
    }

    // ---- supervisor side -------------------------------------------------

    /// Abandon the current worker: bump the epoch (it will refuse to
    /// take or answer further work) and wake it so a parked worker can
    /// observe the bump and exit.
    pub fn bump_epoch(&self) -> u64 {
        let e = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.work_cv.notify_all();
        self.space_cv.notify_all();
        e
    }

    /// Current epoch (workers capture this at spawn).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Steal the in-flight batch (if the worker has not already taken
    /// it back) and every queued mailbox message, for replay.
    pub fn steal_work(&self) -> (Option<B>, Vec<M>) {
        let active = self.active.lock().unwrap().take();
        let mut mb = self.mailbox.lock().unwrap();
        let queued: Vec<M> = mb.queue.drain(..).collect();
        drop(mb);
        self.space_cv.notify_all();
        (active, queued)
    }

    /// Close the mailbox: no further sends; the worker drains what is
    /// queued and exits.
    pub fn close(&self) {
        self.mailbox.lock().unwrap().closed = true;
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        self.mailbox.lock().unwrap().closed
    }

    // ---- health bookkeeping ---------------------------------------------

    /// Mark the worker live (called just before spawning its thread).
    pub fn mark_alive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Drop-guard hook: the worker thread is gone (return or panic).
    /// Epoch-qualified: an *abandoned* (stale-epoch) thread finally
    /// exiting must not clear the flag out from under the replacement
    /// worker that now owns it.
    pub fn mark_exited(&self, my_epoch: u64) {
        if self.epoch.load(Ordering::Acquire) == my_epoch {
            self.alive.store(false, Ordering::Release);
            self.warming.store(false, Ordering::Release);
        }
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Supervisor-side: force the flag down when abandoning a wedged
    /// worker (its own exit, being stale-epoch by then, will not).
    pub fn clear_alive(&self) {
        self.alive.store(false, Ordering::Release);
        self.warming.store(false, Ordering::Release);
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Is the worker thread still running?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Mark the worker as (not) warming up. Set by the spawner just
    /// before the thread starts; cleared by the worker itself once its
    /// model is built and it begins draining the mailbox.
    pub fn set_warming(&self, w: bool) {
        self.warming.store(w, Ordering::Release);
    }

    /// Is the worker still building its model (alive but not serving)?
    pub fn is_warming(&self) -> bool {
        self.warming.load(Ordering::Acquire)
    }

    /// Heartbeat progress counter.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Stamp of the most recent heartbeat.
    pub fn last_beat_ns(&self) -> u64 {
        self.last_beat_ns.load(Ordering::Relaxed)
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Set the lifecycle state.
    pub fn set_state(&self, s: ShardState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// Completed restarts.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Count one restart.
    pub fn count_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests stolen from this shard for replay.
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Count `n` replayed requests.
    pub fn count_replayed(&self, n: u64) {
        self.replayed.fetch_add(n, Ordering::Relaxed);
    }

    /// Earliest instant the next respawn may run.
    pub fn next_restart_at_ns(&self) -> u64 {
        self.next_restart_at_ns.load(Ordering::Relaxed)
    }

    /// Schedule the next respawn.
    pub fn set_next_restart_at_ns(&self, at: u64) {
        self.next_restart_at_ns.store(at, Ordering::Relaxed);
    }

    /// The worker thread handle (the spawner stores it, shutdown joins
    /// it, abandonment detaches it).
    pub fn handle(&self) -> MutexGuard<'_, Option<JoinHandle<()>>> {
        self.handle.lock().unwrap()
    }
}

/// Exponential restart backoff: `base << restarts`, saturating, capped.
pub fn backoff_ns(base_ns: u64, restarts: u64, cap_ns: u64) -> u64 {
    let shift = restarts.min(20) as u32;
    base_ns.saturating_mul(1u64 << shift).min(cap_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Slot = ShardSlot<u32, Vec<u32>>;

    #[test]
    fn mailbox_send_recv_fifo_and_depth() {
        let s: Slot = Slot::new();
        s.mark_alive();
        s.send(1, 4).unwrap();
        s.send(2, 4).unwrap();
        assert_eq!(s.depth(), 2);
        let e = s.current_epoch();
        match s.recv(e, Duration::from_millis(1)) {
            Recv::Msg(1) => {}
            other => panic!("{other:?}"),
        }
        match s.recv(e, Duration::from_millis(1)) {
            Recv::Msg(2) => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(s.recv(e, Duration::from_millis(1)), Recv::Idle));
    }

    #[test]
    fn bounded_send_rejects_when_closed_or_dead() {
        let s: Slot = Slot::new();
        // Worker never spawned → not alive → send hands the message back.
        assert_eq!(s.send(7, 4), Err(7));
        s.mark_alive();
        s.send(8, 4).unwrap();
        s.close();
        assert_eq!(s.send(9, 4), Err(9));
        // The queued message still drains before Stop.
        let e = s.current_epoch();
        assert!(matches!(s.recv(e, Duration::from_millis(1)), Recv::Msg(8)));
        assert!(matches!(s.recv(e, Duration::from_millis(1)), Recv::Stop));
    }

    #[test]
    fn stale_epoch_stops_the_worker_without_touching_work() {
        let s: Slot = Slot::new();
        s.mark_alive();
        s.send(5, 4).unwrap();
        let old = s.current_epoch();
        s.bump_epoch();
        assert!(matches!(s.recv(old, Duration::from_millis(1)), Recv::Stop));
        assert_eq!(s.depth(), 1, "abandoned worker left the mailbox alone");
        // The replacement (current epoch) gets the message.
        assert!(matches!(s.recv(s.current_epoch(), Duration::from_millis(1)), Recv::Msg(5)));
    }

    #[test]
    fn active_slot_is_exactly_once() {
        let s: Slot = Slot::new();
        let e = s.current_epoch();
        s.set_active(vec![1, 2, 3]);
        assert!(s.has_active());
        // Worker reclaims it: supervisor finds nothing to steal.
        let got = s.take_active_if_current(e).unwrap();
        assert_eq!(got, [1, 2, 3]);
        let (stolen, queued) = s.steal_work();
        assert!(stolen.is_none() && queued.is_empty());

        // Supervisor steals first: the (stale) worker must not reply.
        s.set_active(vec![4]);
        s.bump_epoch();
        let (stolen, _) = s.steal_work();
        assert_eq!(stolen.unwrap(), [4]);
        assert!(s.take_active_if_current(e).is_none());
    }

    #[test]
    fn steal_takes_active_and_queued_in_order() {
        let s: Slot = Slot::new();
        s.mark_alive();
        s.set_active(vec![0]);
        s.send(1, 8).unwrap();
        s.send(2, 8).unwrap();
        let (active, queued) = s.steal_work();
        assert_eq!(active.unwrap(), [0]);
        assert_eq!(queued, [1, 2]);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let base = 10_000_000; // 10ms
        let cap = 1_000_000_000; // 1s
        assert_eq!(backoff_ns(base, 0, cap), 10_000_000);
        assert_eq!(backoff_ns(base, 1, cap), 20_000_000);
        assert_eq!(backoff_ns(base, 2, cap), 40_000_000);
        assert_eq!(backoff_ns(base, 6, cap), 640_000_000);
        assert_eq!(backoff_ns(base, 7, cap), cap, "capped");
        assert_eq!(backoff_ns(base, 63, cap), cap, "shift saturates, no overflow");
    }

    #[test]
    fn state_round_trips_and_names() {
        let s: Slot = Slot::new();
        assert_eq!(s.state(), ShardState::Healthy);
        for (st, name) in [
            (ShardState::Wedged, "wedged"),
            (ShardState::Restarting, "restarting"),
            (ShardState::Dead, "dead"),
            (ShardState::Healthy, "healthy"),
        ] {
            s.set_state(st);
            assert_eq!(s.state(), st);
            assert_eq!(st.as_str(), name);
        }
    }
}
