//! Time as a capability.
//!
//! The batcher core takes explicit timestamps, but the threaded server
//! still needs *some* source of "now". [`Clock`] abstracts it:
//! [`SystemClock`] (monotonic `Instant` against a per-clock epoch) in
//! production, the testkit [`VirtualClock`] in deterministic tests —
//! both yield nanoseconds since an arbitrary epoch, which is all the
//! deadline arithmetic needs.

use std::time::Instant;

use lowino_testkit::VirtualClock;

/// A nanosecond-resolution monotonic clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) epoch.
    fn now_ns(&self) -> u64;

    /// Age of a past stamp: `now - since`, saturating at zero (a stamp
    /// "from the future" — e.g. taken between virtual-clock advances —
    /// reads as age 0 rather than wrapping). Heartbeat-staleness checks
    /// and `/stats` use this.
    fn age_ns(&self, since_ns: u64) -> u64 {
        self.now_ns().saturating_sub(since_ns)
    }
}

/// Real time: a monotonic `Instant` epoch captured at construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of uptime; acceptable.
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        VirtualClock::now_ns(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_satisfies_the_trait() {
        let v = VirtualClock::starting_at(5);
        let c: &dyn Clock = &v;
        assert_eq!(c.now_ns(), 5);
        v.advance(10);
        assert_eq!(c.now_ns(), 15);
    }
}
