//! Overload brownout: a pure hysteretic controller that trades batching
//! efficiency (and, at the last rung, numeric strictness) for latency
//! headroom when the server is drowning.
//!
//! The supervisor ticks [`BrownoutPolicy`] with what it can observe —
//! queue depth relative to the admission bound and the recent p99
//! latency relative to the effective request deadline — and the policy
//! answers with a **rung**:
//!
//! * rung 0 — healthy: the configured `max_batch` / `max_delay_ns`;
//! * rung *r* — both limits right-shifted by *r* (halved per rung):
//!   smaller batches and shorter coalescing waits drain the queue at the
//!   cost of per-request efficiency;
//! * the **last** rung additionally flips every shard's `ResilientConv`
//!   health policy to [`HealthPolicy::relaxed`] — post-execute health
//!   scans (saturation ratio, finite-output checks) are skipped so each
//!   batch costs less, while hard failures still demote.
//!
//! Stepping **down** (toward degradation) is immediate — one pressured
//! tick per rung. Stepping **up** needs `clear_ticks` *consecutive*
//! clear ticks, and the clear threshold (`exit_depth`) sits well below
//! the entry threshold (`enter_depth`), so the controller cannot
//! oscillate on a load hovering at the boundary.
//!
//! [`HealthPolicy::relaxed`]: lowino_core::resilient::HealthPolicy::relaxed

/// Thresholds and shape of the brownout ladder.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutConfig {
    /// Number of degradation rungs below healthy (rung 0). The last
    /// rung is the one that also relaxes shard health policies.
    pub rungs: u32,
    /// Step down when `depth / queue_cap` reaches this ratio.
    pub enter_depth: f64,
    /// A tick only counts as *clear* when the depth ratio is at or
    /// below this (must be < `enter_depth` for hysteresis).
    pub exit_depth: f64,
    /// Step down when observed p99 exceeds this fraction of the
    /// effective deadline (latency is eating the deadline headroom).
    pub headroom: f64,
    /// Consecutive clear ticks required per step back up.
    pub clear_ticks: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            rungs: 3,
            enter_depth: 0.75,
            exit_depth: 0.25,
            headroom: 0.75,
            clear_ticks: 5,
        }
    }
}

/// One tick's observations.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutInput {
    /// Current batcher queue depth.
    pub depth: usize,
    /// The admission bound the depth is measured against.
    pub queue_cap: usize,
    /// Recent p99 end-to-end latency, when enough samples exist.
    pub p99_ns: Option<u64>,
    /// The effective request deadline p99 is compared against
    /// (`None` when requests carry no deadline — then only queue
    /// depth drives the controller).
    pub deadline_ns: Option<u64>,
}

/// What a tick decided (the caller emits a trace event on Down/Up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutStep {
    /// Rung unchanged.
    Hold,
    /// Stepped one rung down (more degraded).
    Down,
    /// Stepped one rung up (less degraded).
    Up,
}

/// The controller state: current rung plus the clear-streak counter.
#[derive(Debug)]
pub struct BrownoutPolicy {
    cfg: BrownoutConfig,
    base_max_batch: usize,
    base_max_delay_ns: u64,
    rung: u32,
    clear_streak: u32,
}

impl BrownoutPolicy {
    /// A controller at rung 0 around the configured batching limits.
    pub fn new(cfg: BrownoutConfig, base_max_batch: usize, base_max_delay_ns: u64) -> Self {
        Self { cfg, base_max_batch, base_max_delay_ns, rung: 0, clear_streak: 0 }
    }

    /// Current rung (0 = healthy).
    pub fn rung(&self) -> u32 {
        self.rung
    }

    /// Is the controller at the last rung — the one that also relaxes
    /// shard health policies?
    pub fn degraded(&self) -> bool {
        self.cfg.rungs > 0 && self.rung >= self.cfg.rungs
    }

    /// The batching limits for the current rung: base values
    /// right-shifted once per rung (`max_batch` floored at 1).
    pub fn limits(&self) -> (usize, u64) {
        let shift = self.rung.min(63);
        (
            (self.base_max_batch >> shift).max(1),
            self.base_max_delay_ns >> shift,
        )
    }

    fn pressured(&self, input: &BrownoutInput) -> bool {
        let ratio = input.depth as f64 / input.queue_cap.max(1) as f64;
        if ratio >= self.cfg.enter_depth {
            return true;
        }
        if let (Some(p99), Some(deadline)) = (input.p99_ns, input.deadline_ns) {
            if p99 as f64 > self.cfg.headroom * deadline as f64 {
                return true;
            }
        }
        false
    }

    fn clear(&self, input: &BrownoutInput) -> bool {
        let ratio = input.depth as f64 / input.queue_cap.max(1) as f64;
        if ratio > self.cfg.exit_depth {
            return false;
        }
        match (input.p99_ns, input.deadline_ns) {
            (Some(p99), Some(deadline)) => (p99 as f64) <= self.cfg.headroom * deadline as f64,
            _ => true,
        }
    }

    /// Advance the controller one observation. Down transitions are
    /// immediate; Up transitions require `clear_ticks` consecutive
    /// clear observations (the streak resets on any non-clear tick).
    pub fn tick(&mut self, input: BrownoutInput) -> BrownoutStep {
        if self.pressured(&input) {
            self.clear_streak = 0;
            if self.rung < self.cfg.rungs {
                self.rung += 1;
                return BrownoutStep::Down;
            }
            return BrownoutStep::Hold;
        }
        if self.clear(&input) {
            self.clear_streak += 1;
            if self.clear_streak >= self.cfg.clear_ticks && self.rung > 0 {
                self.clear_streak = 0;
                self.rung -= 1;
                return BrownoutStep::Up;
            }
        } else {
            // The dead band between exit and enter: hold the rung and
            // restart the clear streak — hovering load must fully clear
            // before the controller steps back up.
            self.clear_streak = 0;
        }
        BrownoutStep::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            rungs: 3,
            enter_depth: 0.75,
            exit_depth: 0.25,
            headroom: 0.75,
            clear_ticks: 3,
        }
    }

    fn depth(depth: usize) -> BrownoutInput {
        BrownoutInput { depth, queue_cap: 100, p99_ns: None, deadline_ns: None }
    }

    #[test]
    fn depth_pressure_steps_down_one_rung_per_tick() {
        let mut p = BrownoutPolicy::new(cfg(), 8, 2_000_000);
        assert_eq!(p.limits(), (8, 2_000_000));
        assert_eq!(p.tick(depth(80)), BrownoutStep::Down);
        assert_eq!(p.limits(), (4, 1_000_000));
        assert_eq!(p.tick(depth(80)), BrownoutStep::Down);
        assert_eq!(p.tick(depth(80)), BrownoutStep::Down);
        assert!(p.degraded(), "last rung relaxes health policies");
        assert_eq!(p.tick(depth(80)), BrownoutStep::Hold, "no rung below the last");
        assert_eq!(p.limits(), (1, 250_000));
    }

    #[test]
    fn latency_pressure_alone_steps_down() {
        let mut p = BrownoutPolicy::new(cfg(), 8, 2_000_000);
        let slow = BrownoutInput {
            depth: 0,
            queue_cap: 100,
            p99_ns: Some(9_000_000),
            deadline_ns: Some(10_000_000),
        };
        assert_eq!(p.tick(slow), BrownoutStep::Down, "p99 at 90% of deadline");
        let fine = BrownoutInput { p99_ns: Some(1_000_000), ..slow };
        assert_eq!(p.tick(fine), BrownoutStep::Hold, "clear tick 1 of 3");
    }

    #[test]
    fn recovery_is_hysteretic() {
        let mut p = BrownoutPolicy::new(cfg(), 8, 2_000_000);
        p.tick(depth(80));
        assert_eq!(p.rung(), 1);
        // The dead band (25 < 50 < 75) holds the rung and resets streaks.
        assert_eq!(p.tick(depth(10)), BrownoutStep::Hold);
        assert_eq!(p.tick(depth(10)), BrownoutStep::Hold);
        assert_eq!(p.tick(depth(50)), BrownoutStep::Hold, "dead band resets the streak");
        assert_eq!(p.tick(depth(10)), BrownoutStep::Hold);
        assert_eq!(p.tick(depth(10)), BrownoutStep::Hold);
        assert_eq!(p.tick(depth(10)), BrownoutStep::Up, "3 consecutive clears");
        assert_eq!(p.rung(), 0);
        assert_eq!(p.limits(), (8, 2_000_000), "base limits restored");
    }

    #[test]
    fn max_batch_never_reaches_zero() {
        let mut p = BrownoutPolicy::new(
            BrownoutConfig { rungs: 6, ..cfg() },
            2,
            1_000,
        );
        for _ in 0..6 {
            p.tick(depth(100));
        }
        assert_eq!(p.limits().0, 1);
    }
}
