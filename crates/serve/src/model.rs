//! What a shard executes: the [`BatchModel`] contract and the
//! [`GraphModel`] adapter over a compiled graph.
//!
//! The server core is model-agnostic — the batcher, HTTP layer and shard
//! plumbing only see flat `f32` slices — so the deterministic tests can
//! substitute trivial models (identity, deliberately slow, failing) while
//! production shards run [`lowino_nn::CompiledGraph`].
//!
//! A model is **not** required to be `Send`: each shard worker constructs
//! its own instance *inside* its thread from a factory closure and never
//! moves it. That keeps engine internals (thread pools, scratch arenas)
//! pinned to their shard.

use std::path::PathBuf;

use lowino::{HealthPolicy, Tensor4};
use lowino_nn::CompiledGraph;

/// A model that answers fixed-shape requests in batches.
pub trait BatchModel {
    /// `f32`s per request input.
    fn input_len(&self) -> usize;
    /// `f32`s per request output.
    fn output_len(&self) -> usize;
    /// Largest batch one [`BatchModel::infer`] call accepts.
    fn max_batch(&self) -> usize;
    /// Run `count ≤ max_batch` requests: `inputs` holds
    /// `count · input_len` floats back to back, `outputs` must receive
    /// `count · output_len`.
    fn infer(&mut self, inputs: &[f32], count: usize, outputs: &mut [f32])
        -> Result<(), String>;
    /// Cumulative demotions taken by this model's resilience ladders.
    fn demotions(&self) -> usize {
        0
    }
    /// Human-readable active algorithm per conv (for `/stats`).
    fn algorithms(&self) -> Vec<String> {
        Vec::new()
    }
    /// Called once when the owning shard drains and exits (persist
    /// wisdom, flush state). Errors are reported in `/stats`, not fatal.
    fn on_shutdown(&mut self) -> Result<(), String> {
        Ok(())
    }
    /// Brownout hook: `true` relaxes post-execute health scans so each
    /// batch costs less under overload, `false` restores them. Default:
    /// no-op (trivial test models have no health policy to relax).
    fn set_degraded(&mut self, _degraded: bool) {}
}

/// A [`CompiledGraph`] serving NCHW image requests.
pub struct GraphModel {
    graph: CompiledGraph,
    input: Tensor4,
    logits: Tensor4,
    wisdom_path: Option<PathBuf>,
}

impl GraphModel {
    /// Wrap a compiled graph. Requests are single images — `C·H·W`
    /// little-endian `f32`s for the graph's input dims — and responses
    /// are the `classes` logits.
    pub fn new(graph: CompiledGraph) -> Self {
        let (c, h, w) = graph.input_dims();
        let input = Tensor4::zeros(graph.batch(), c, h, w);
        let logits = Tensor4::zeros(graph.batch(), graph.classes(), 1, 1);
        Self { graph, input, logits, wisdom_path: None }
    }

    /// Persist this shard's accumulated wisdom here at shutdown (the
    /// crash-safe merge-save; concurrent shards may share one file).
    pub fn with_wisdom_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.wisdom_path = Some(path.into());
        self
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &CompiledGraph {
        &self.graph
    }
}

impl BatchModel for GraphModel {
    fn input_len(&self) -> usize {
        let (c, h, w) = self.graph.input_dims();
        c * h * w
    }

    fn output_len(&self) -> usize {
        self.graph.classes()
    }

    fn max_batch(&self) -> usize {
        self.graph.batch()
    }

    fn infer(
        &mut self,
        inputs: &[f32],
        count: usize,
        outputs: &mut [f32],
    ) -> Result<(), String> {
        let il = self.input_len();
        let ol = self.output_len();
        assert!(count <= self.graph.batch(), "batch overflow: {count}");
        assert_eq!(inputs.len(), count * il, "input slice shape");
        assert_eq!(outputs.len(), count * ol, "output slice shape");
        // One request = one NCHW image = `il` contiguous floats, so the
        // wire layout maps straight onto the tensor's batch-major data.
        let data = self.input.data_mut();
        data[..count * il].copy_from_slice(inputs);
        data[count * il..].fill(0.0); // zero-pad the tail of the batch
        self.graph
            .execute(&self.input, &mut self.logits)
            .map_err(|e| format!("graph execute: {e}"))?;
        outputs.copy_from_slice(&self.logits.data()[..count * ol]);
        Ok(())
    }

    fn demotions(&self) -> usize {
        self.graph.demotion_count()
    }

    fn algorithms(&self) -> Vec<String> {
        self.graph
            .conv_algorithms()
            .iter()
            .map(|a| a.to_string())
            .collect()
    }

    fn on_shutdown(&mut self) -> Result<(), String> {
        match &self.wisdom_path {
            Some(path) => self.graph.engine().save_wisdom(path),
            None => Ok(()),
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        let policy = if degraded {
            HealthPolicy::relaxed()
        } else {
            HealthPolicy::default()
        };
        self.graph.set_health_policy(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_nn::{mini_vgg, GraphSpec};

    fn small_graph() -> CompiledGraph {
        let mut model = mini_vgg(3, 8, 3, 77);
        let calib = Tensor4::from_fn(2, 3, 8, 8, |b, c, y, x| {
            ((b * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin()
        });
        let spec = GraphSpec { m: 2, batch: 2, threads: 1 };
        CompiledGraph::compile(&mut model, &calib, &spec).unwrap()
    }

    #[test]
    fn graph_model_answers_batches_of_every_occupancy() {
        let mut m = GraphModel::new(small_graph());
        assert_eq!(m.input_len(), 3 * 8 * 8);
        assert_eq!(m.output_len(), 3);
        assert_eq!(m.max_batch(), 2);
        let il = m.input_len();
        let inputs: Vec<f32> = (0..2 * il).map(|i| ((i as f32) * 0.05).cos()).collect();
        let mut full = vec![0.0f32; 2 * 3];
        m.infer(&inputs, 2, &mut full).unwrap();
        assert!(full.iter().all(|v| v.is_finite()));
        // A partial batch answers the same as the full batch's first
        // element (the pad images can't contaminate real outputs).
        let mut part = vec![0.0f32; 3];
        m.infer(&inputs[..il], 1, &mut part).unwrap();
        assert_eq!(part, full[..3]);
        assert_eq!(m.demotions(), 0);
        assert!(!m.algorithms().is_empty());
    }
}
