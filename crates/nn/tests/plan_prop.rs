//! Property tests for the arena liveness planner ([`lowino_nn::plan`]):
//! on random graph-shaped live-range sets,
//!
//! * offsets of two slots never overlap while both are live;
//! * the planned arena never exceeds the sum of all (aligned) slot sizes
//!   (planning is never worse than disjoint allocation);
//! * re-planning the same request set is deterministic.

use lowino_nn::plan::{plan_slots, SlotReq, PLAN_ALIGN};
use lowino_testkit::{prop_assert, property, Rng};

/// A random "DAG-like" request set: a topological walk where each new
/// tensor is defined at an increasing op index and read some ops later,
/// plus occasional long-lived skip tensors (residual-style).
fn random_reqs(rng: &mut Rng, n_slots: usize) -> Vec<SlotReq> {
    let mut reqs = Vec::with_capacity(n_slots);
    let mut op = 0usize;
    for i in 0..n_slots {
        // Each slot is defined at (or shortly after) the previous one.
        op += rng.range_i32(0, 3) as usize;
        let first = op;
        // Most tensors die quickly; ~1 in 4 is a long-lived skip.
        let span = if rng.range_i32(0, 4) == 0 {
            rng.range_i32(4, 16) as usize
        } else {
            rng.range_i32(0, 3) as usize
        };
        let last = first + span;
        let len = rng.range_i32(1, 4000) as usize;
        reqs.push(SlotReq { len, first, last });
        // Keep indices deterministic but varied.
        if i % 7 == 3 {
            op += 1;
        }
    }
    reqs
}

fn live_overlap(a: &SlotReq, b: &SlotReq) -> bool {
    a.first <= b.last && b.first <= a.last
}

property! {
    /// Soundness: simultaneously-live slots get disjoint arena windows.
    #[cases(64)]
    fn live_slots_never_share_memory(
        n_slots in 2usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed ^ 0x91A2);
        let reqs = random_reqs(&mut rng, n_slots);
        let plan = plan_slots(&reqs, PLAN_ALIGN);
        prop_assert!(!plan.degraded, "no fault armed");
        for i in 0..reqs.len() {
            for j in i + 1..reqs.len() {
                if !live_overlap(&reqs[i], &reqs[j]) {
                    continue;
                }
                let (oi, oj) = (plan.offsets[i], plan.offsets[j]);
                let disjoint =
                    oi + reqs[i].len <= oj || oj + reqs[j].len <= oi;
                prop_assert!(
                    disjoint,
                    "slots {i} ({:?}@{oi}) and {j} ({:?}@{oj}) overlap while live",
                    reqs[i],
                    reqs[j]
                );
            }
        }
    }

    /// Boundedness: the plan never exceeds the disjoint layout, and every
    /// offset is aligned.
    #[cases(64)]
    fn plan_is_bounded_and_aligned(
        n_slots in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed ^ 0xB0);
        let reqs = random_reqs(&mut rng, n_slots);
        let plan = plan_slots(&reqs, PLAN_ALIGN);
        let disjoint: usize = reqs
            .iter()
            .map(|r| r.len.div_ceil(PLAN_ALIGN) * PLAN_ALIGN)
            .sum();
        prop_assert!(
            plan.total_len <= disjoint,
            "planned {} > disjoint bound {disjoint}",
            plan.total_len
        );
        for (i, &off) in plan.offsets.iter().enumerate() {
            prop_assert!(off % PLAN_ALIGN == 0, "slot {i} offset {off} unaligned");
            prop_assert!(off + reqs[i].len <= plan.total_len, "slot {i} out of arena");
        }
    }

    /// Determinism: planning is a pure function of the request set.
    #[cases(32)]
    fn replanning_is_deterministic(
        n_slots in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed ^ 0xDE7);
        let reqs = random_reqs(&mut rng, n_slots);
        let a = plan_slots(&reqs, PLAN_ALIGN);
        let b = plan_slots(&reqs, PLAN_ALIGN);
        prop_assert!(a == b, "replan differs: {a:?} vs {b:?}");
    }
}
