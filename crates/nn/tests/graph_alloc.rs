//! Steady-state audit for the graph engine: once one warm-up execute has
//! grown the executors' per-worker scratch arenas, running a whole model
//! through [`CompiledGraph::execute`] performs **zero heap allocations**
//! — every activation lives in the compile-time liveness-planned arena,
//! and the per-op `BlockedImage` windows are raw views into it.
//!
//! Same counting-`#[global_allocator]` technique as the conv crate's
//! `steady_state_alloc` test: the counter is armed only around the audited
//! region so harness allocations don't pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lowino::Tensor4;
use lowino_nn::{mini_resnet, mini_vgg, CompiledGraph, GraphSpec};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count heap allocations (on any thread) during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn input(batch: usize) -> Tensor4 {
    Tensor4::from_fn(batch, 3, 8, 8, |b, c, y, x| {
        ((b * 29 + c * 13 + y * 5 + x * 3) as f32 * 0.31).sin()
    })
}

#[test]
fn miniresnet_graph_execute_is_allocation_free_in_steady_state() {
    let mut model = mini_resnet(3, 8, 3, 17);
    let x = input(2);
    let spec = GraphSpec { m: 2, batch: 2, threads: 2 };
    let mut g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    let mut logits = Tensor4::zeros(2, 3, 1, 1);
    // Warm-up: the first execute grows the per-worker scratch arenas.
    g.execute(&x, &mut logits).unwrap();
    let warm = logits.clone();

    let allocs = count_allocs(|| {
        for _ in 0..3 {
            g.execute(&x, &mut logits).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state graph execute must not allocate");
    assert_eq!(g.demotion_count(), 0);
    // And the steady-state runs reproduce the warm-up output bitwise.
    let same = warm
        .data()
        .iter()
        .zip(logits.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "steady-state output drifted from warm-up");
}

#[test]
fn minivgg_graph_execute_is_allocation_free_in_steady_state() {
    let mut model = mini_vgg(3, 8, 3, 23);
    let x = input(2);
    let spec = GraphSpec { m: 2, batch: 2, threads: 1 };
    let mut g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    let mut logits = Tensor4::zeros(2, 3, 1, 1);
    g.execute(&x, &mut logits).unwrap();

    let allocs = count_allocs(|| {
        g.execute(&x, &mut logits).unwrap();
    });
    assert_eq!(allocs, 0, "steady-state graph execute must not allocate");
}
