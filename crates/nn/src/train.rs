//! SGD training with softmax cross-entropy.

use lowino::Tensor4;
use lowino_testkit::Rng;

use crate::data::Dataset;
use crate::model::Model;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffle seed.
    pub seed: u64,
}

/// Softmax cross-entropy: returns (mean loss, dL/dlogits).
pub fn softmax_cross_entropy(logits: &Tensor4, labels: &[usize]) -> (f32, Tensor4) {
    let (b_n, k_n, _, _) = logits.dims();
    assert_eq!(b_n, labels.len());
    let mut grad = Tensor4::zeros(b_n, k_n, 1, 1);
    let mut loss = 0f32;
    for b in 0..b_n {
        let mx = (0..k_n).fold(f32::NEG_INFINITY, |m, k| m.max(logits.at(b, k, 0, 0)));
        let mut denom = 0f32;
        for k in 0..k_n {
            denom += (logits.at(b, k, 0, 0) - mx).exp();
        }
        let label = labels[b];
        debug_assert!(label < k_n);
        loss -= (logits.at(b, label, 0, 0) - mx - denom.ln()) / b_n as f32;
        for k in 0..k_n {
            let p = (logits.at(b, k, 0, 0) - mx).exp() / denom;
            let y = if k == label { 1.0 } else { 0.0 };
            *grad.at_mut(b, k, 0, 0) = (p - y) / b_n as f32;
        }
    }
    (loss, grad)
}

/// Train the model; returns the per-epoch mean losses.
pub fn train(model: &mut Model, data: &Dataset, cfg: &TrainConfig) -> Vec<f32> {
    let n = data.train_y().len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut total = 0f32;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            let (x, y) = data.gather_batch(chunk);
            let logits = model.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            model.step(cfg.lr, cfg.momentum);
            total += loss;
            batches += 1;
        }
        epoch_losses.push(total / batches as f32);
    }
    epoch_losses
}

/// Top-1 accuracy of a model on a labelled set.
pub fn evaluate_top1(model: &mut Model, x: &Tensor4, y: &[usize]) -> f64 {
    let preds = model.predict(x);
    let correct = preds.iter().zip(y).filter(|(p, t)| p == t).count();
    correct as f64 / y.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use crate::model::mini_vgg;

    #[test]
    fn cross_entropy_basics() {
        // Confident-correct prediction -> small loss, small gradient.
        let mut logits = Tensor4::zeros(1, 3, 1, 1);
        *logits.at_mut(0, 0, 0, 0) = 10.0;
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 0.01, "loss={loss}");
        assert!(grad.at(0, 0, 0, 0).abs() < 0.01);
        // Confident-wrong -> large loss, gradient pushes label up.
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]);
        assert!(loss > 5.0, "loss={loss}");
        assert!(grad.at(0, 2, 0, 0) < -0.9);
        assert!(grad.at(0, 0, 0, 0) > 0.9);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor4::from_fn(3, 4, 1, 1, |b, k, _, _| ((b * 4 + k) as f32 * 0.7).sin());
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 0, 3]);
        for b in 0..3 {
            let s: f32 = (0..4).map(|k| grad.at(b, k, 0, 0)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::generate(&SyntheticSpec {
            classes: 2,
            channels: 2,
            size: 8,
            train_per_class: 20,
            test_per_class: 5,
            noise: 0.05,
            seed: 21,
        });
        let mut model = mini_vgg(2, 8, 2, 4);
        let losses = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 4,
                batch_size: 8,
                lr: 0.05,
                momentum: 0.9,
                seed: 1,
            },
        );
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }
}
