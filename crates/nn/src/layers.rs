//! Trainable layers with full backpropagation.
//!
//! Everything operates on NCHW [`Tensor4`]; fully-connected activations use
//! shape `(B, C, 1, 1)`. The convolution forward/backward loops keep the
//! output-channel dimension innermost over re-packed weights so the
//! compiler can vectorise them — fast enough to train the Mini models in
//! seconds, while inference-grade performance lives in `lowino` proper.

use lowino::Tensor4;
use lowino_testkit::Rng;

/// One trainable or structural layer.
pub enum Layer {
    /// 3×3 (or r×r) same-padding convolution with bias.
    Conv(Conv2dLayer),
    /// Element-wise max(0, x).
    ReLU(ReluLayer),
    /// 2×2 stride-2 max pooling.
    MaxPool(MaxPoolLayer),
    /// Global average pooling to `(B, C, 1, 1)`.
    Gap(GapLayer),
    /// Fully connected `(B, C, 1, 1) → (B, K, 1, 1)`.
    Linear(LinearLayer),
    /// Residual block `relu(x + body(x))` (MiniResNet).
    Residual(ResidualBlock),
}

impl Layer {
    /// Forward pass, caching whatever backward needs.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        match self {
            Layer::Conv(l) => l.forward(x),
            Layer::ReLU(l) => l.forward(x),
            Layer::MaxPool(l) => l.forward(x),
            Layer::Gap(l) => l.forward(x),
            Layer::Linear(l) => l.forward(x),
            Layer::Residual(l) => l.forward(x),
        }
    }

    /// Backward pass: gradient w.r.t. this layer's input.
    pub fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        match self {
            Layer::Conv(l) => l.backward(g),
            Layer::ReLU(l) => l.backward(g),
            Layer::MaxPool(l) => l.backward(g),
            Layer::Gap(l) => l.backward(g),
            Layer::Linear(l) => l.backward(g),
            Layer::Residual(l) => l.backward(g),
        }
    }

    /// SGD-with-momentum parameter update.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        match self {
            Layer::Conv(l) => l.step(lr, momentum),
            Layer::Linear(l) => l.step(lr, momentum),
            Layer::Residual(l) => l.step(lr, momentum),
            _ => {}
        }
    }
}

// ------------------------------------------------------------------ Conv

/// Same-padding stride-1 convolution layer.
pub struct Conv2dLayer {
    /// `K×C×r×r` weights.
    pub weights: Tensor4,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    r: usize,
    in_c: usize,
    out_c: usize,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    vel_w: Vec<f32>,
    vel_b: Vec<f32>,
    cached_input: Option<Tensor4>,
}

impl Conv2dLayer {
    /// He-initialised convolution.
    pub fn new(in_c: usize, out_c: usize, r: usize, rng: &mut Rng) -> Self {
        let scale = (2.0 / (in_c * r * r) as f32).sqrt();
        let weights = Tensor4::from_fn(out_c, in_c, r, r, |_, _, _, _| {
            rng.f32_range(-1.0, 1.0) * scale
        });
        let n = out_c * in_c * r * r;
        Self {
            weights,
            bias: vec![0.0; out_c],
            r,
            in_c,
            out_c,
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_c],
            vel_w: vec![0.0; n],
            vel_b: vec![0.0; out_c],
            cached_input: None,
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Filter size.
    pub fn filter(&self) -> usize {
        self.r
    }

    /// Weights re-packed `[(c·r+dy)·r+dx][k]` for k-inner vectorisation.
    fn pack_weights(&self) -> Vec<f32> {
        let (k_n, c_n, r, _) = self.weights.dims();
        let mut w = vec![0f32; c_n * r * r * k_n];
        for k in 0..k_n {
            for c in 0..c_n {
                for dy in 0..r {
                    for dx in 0..r {
                        w[((c * r + dy) * r + dx) * k_n + k] = self.weights.at(k, c, dy, dx);
                    }
                }
            }
        }
        w
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = x.dims();
        assert_eq!(c_n, self.in_c, "Conv2d input channels");
        let pad = (self.r - 1) / 2;
        let wp = self.pack_weights();
        let k_n = self.out_c;
        let mut out = Tensor4::zeros(b_n, k_n, h, w);
        let mut acc = vec![0f32; k_n];
        for b in 0..b_n {
            for y in 0..h {
                for xx in 0..w {
                    acc.copy_from_slice(&self.bias);
                    for c in 0..c_n {
                        for dy in 0..self.r {
                            let iy = y as isize + dy as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for dx in 0..self.r {
                                let ix = xx as isize + dx as isize - pad as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xv = x.at(b, c, iy as usize, ix as usize);
                                if xv != 0.0 {
                                    let row = &wp[((c * self.r + dy) * self.r + dx) * k_n..][..k_n];
                                    for (a, &wv) in acc.iter_mut().zip(row) {
                                        *a += xv * wv;
                                    }
                                }
                            }
                        }
                    }
                    for k in 0..k_n {
                        *out.at_mut(b, k, y, xx) = acc[k];
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let x = self.cached_input.take().expect("forward before backward");
        let (b_n, c_n, h, w) = x.dims();
        let k_n = self.out_c;
        let pad = (self.r - 1) / 2;
        let wp = self.pack_weights();
        let mut dwp = vec![0f32; c_n * self.r * self.r * k_n];
        let mut dx = Tensor4::zeros(b_n, c_n, h, w);
        let mut gk = vec![0f32; k_n];
        for b in 0..b_n {
            for y in 0..h {
                for xx in 0..w {
                    for k in 0..k_n {
                        gk[k] = g.at(b, k, y, xx);
                        self.grad_b[k] += gk[k];
                    }
                    for c in 0..c_n {
                        for dy in 0..self.r {
                            let iy = y as isize + dy as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for dx_i in 0..self.r {
                                let ix = xx as isize + dx_i as isize - pad as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let base = ((c * self.r + dy) * self.r + dx_i) * k_n;
                                let xv = x.at(b, c, iy as usize, ix as usize);
                                let wrow = &wp[base..base + k_n];
                                let dwrow = &mut dwp[base..base + k_n];
                                let mut dxv = 0f32;
                                for k in 0..k_n {
                                    dxv += gk[k] * wrow[k];
                                    dwrow[k] += gk[k] * xv;
                                }
                                *dx.at_mut(b, c, iy as usize, ix as usize) += dxv;
                            }
                        }
                    }
                }
            }
        }
        // Unpack weight gradients into K×C×r×r order.
        for k in 0..k_n {
            for c in 0..c_n {
                for dy in 0..self.r {
                    for dx_i in 0..self.r {
                        let src = ((c * self.r + dy) * self.r + dx_i) * k_n + k;
                        let dst = ((k * c_n + c) * self.r + dy) * self.r + dx_i;
                        self.grad_w[dst] += dwp[src];
                    }
                }
            }
        }
        dx
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        let wdata = self.weights.data_mut();
        for i in 0..wdata.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i];
            wdata[i] += self.vel_w[i];
            self.grad_w[i] = 0.0;
        }
        for k in 0..self.out_c {
            self.vel_b[k] = momentum * self.vel_b[k] - lr * self.grad_b[k];
            self.bias[k] += self.vel_b[k];
            self.grad_b[k] = 0.0;
        }
    }
}

// ------------------------------------------------------------------ ReLU

/// Rectified linear unit.
#[derive(Default)]
pub struct ReluLayer {
    mask: Vec<bool>,
    dims: (usize, usize, usize, usize),
}

impl ReluLayer {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.dims = x.dims();
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        let (b, c, h, w) = x.dims();
        let mut out = Tensor4::zeros(b, c, h, w);
        for (o, (&v, &m)) in out.data_mut().iter_mut().zip(x.data().iter().zip(&self.mask)) {
            *o = if m { v } else { 0.0 };
        }
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let (b, c, h, w) = self.dims;
        let mut out = Tensor4::zeros(b, c, h, w);
        for (o, (&gv, &m)) in out.data_mut().iter_mut().zip(g.data().iter().zip(&self.mask)) {
            *o = if m { gv } else { 0.0 };
        }
        out
    }
}

// --------------------------------------------------------------- MaxPool

/// 2×2 stride-2 max pooling (input H/W must be even).
#[derive(Default)]
pub struct MaxPoolLayer {
    argmax: Vec<usize>,
    in_dims: (usize, usize, usize, usize),
}

impl MaxPoolLayer {
    /// New pool layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = x.dims();
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool needs even H/W");
        self.in_dims = x.dims();
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor4::zeros(b_n, c_n, oh, ow);
        self.argmax = vec![0; b_n * c_n * oh * ow];
        let mut idx = 0;
        for b in 0..b_n {
            for c in 0..c_n {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_at = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let v = x.at(b, c, 2 * y + dy, 2 * xx + dx);
                                if v > best {
                                    best = v;
                                    best_at = (2 * y + dy) * w + 2 * xx + dx;
                                }
                            }
                        }
                        *out.at_mut(b, c, y, xx) = best;
                        self.argmax[idx] = best_at;
                        idx += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = self.in_dims;
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor4::zeros(b_n, c_n, h, w);
        let mut idx = 0;
        for b in 0..b_n {
            for c in 0..c_n {
                for y in 0..oh {
                    for xx in 0..ow {
                        let at = self.argmax[idx];
                        idx += 1;
                        *out.at_mut(b, c, at / w, at % w) += g.at(b, c, y, xx);
                    }
                }
            }
        }
        out
    }
}

// ------------------------------------------------------------------- GAP

/// Global average pooling.
#[derive(Default)]
pub struct GapLayer {
    in_dims: (usize, usize, usize, usize),
}

impl GapLayer {
    /// New GAP layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = x.dims();
        self.in_dims = x.dims();
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor4::zeros(b_n, c_n, 1, 1);
        for b in 0..b_n {
            for c in 0..c_n {
                let mut s = 0f32;
                for y in 0..h {
                    for xx in 0..w {
                        s += x.at(b, c, y, xx);
                    }
                }
                *out.at_mut(b, c, 0, 0) = s * inv;
            }
        }
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = self.in_dims;
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor4::zeros(b_n, c_n, h, w);
        for b in 0..b_n {
            for c in 0..c_n {
                let gv = g.at(b, c, 0, 0) * inv;
                for y in 0..h {
                    for xx in 0..w {
                        *out.at_mut(b, c, y, xx) = gv;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------- Linear

/// Fully connected layer over `(B, C, 1, 1)` activations.
pub struct LinearLayer {
    /// `K×C` weights (row-major).
    pub weights: Vec<f32>,
    /// Per-output bias.
    pub bias: Vec<f32>,
    in_c: usize,
    out_c: usize,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    vel_w: Vec<f32>,
    vel_b: Vec<f32>,
    cached_input: Option<Tensor4>,
}

impl LinearLayer {
    /// Xavier-ish initialised linear layer.
    pub fn new(in_c: usize, out_c: usize, rng: &mut Rng) -> Self {
        let scale = (2.0 / in_c as f32).sqrt();
        Self {
            weights: (0..in_c * out_c)
                .map(|_| rng.f32_range(-1.0, 1.0) * scale)
                .collect(),
            bias: vec![0.0; out_c],
            in_c,
            out_c,
            grad_w: vec![0.0; in_c * out_c],
            grad_b: vec![0.0; out_c],
            vel_w: vec![0.0; in_c * out_c],
            vel_b: vec![0.0; out_c],
            cached_input: None,
        }
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (b_n, c_n, h, w) = x.dims();
        assert_eq!((c_n, h, w), (self.in_c, 1, 1), "Linear input shape");
        let mut out = Tensor4::zeros(b_n, self.out_c, 1, 1);
        for b in 0..b_n {
            for k in 0..self.out_c {
                let mut s = self.bias[k];
                for c in 0..c_n {
                    s += self.weights[k * c_n + c] * x.at(b, c, 0, 0);
                }
                *out.at_mut(b, k, 0, 0) = s;
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let x = self.cached_input.take().expect("forward before backward");
        let (b_n, c_n, _, _) = x.dims();
        let mut dx = Tensor4::zeros(b_n, c_n, 1, 1);
        for b in 0..b_n {
            for k in 0..self.out_c {
                let gv = g.at(b, k, 0, 0);
                self.grad_b[k] += gv;
                for c in 0..c_n {
                    self.grad_w[k * c_n + c] += gv * x.at(b, c, 0, 0);
                    *dx.at_mut(b, c, 0, 0) += gv * self.weights[k * c_n + c];
                }
            }
        }
        dx
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        for i in 0..self.weights.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i];
            self.weights[i] += self.vel_w[i];
            self.grad_w[i] = 0.0;
        }
        for k in 0..self.out_c {
            self.vel_b[k] = momentum * self.vel_b[k] - lr * self.grad_b[k];
            self.bias[k] += self.vel_b[k];
            self.grad_b[k] = 0.0;
        }
    }
}

// -------------------------------------------------------------- Residual

/// `relu(x + body(x))` with an identity skip (body must preserve shape).
pub struct ResidualBlock {
    /// The residual body (e.g. conv-relu-conv).
    pub body: Vec<Layer>,
    relu_mask: Vec<bool>,
    dims: (usize, usize, usize, usize),
}

impl ResidualBlock {
    /// Wrap a body.
    pub fn new(body: Vec<Layer>) -> Self {
        Self {
            body,
            relu_mask: Vec::new(),
            dims: (0, 0, 0, 0),
        }
    }

    fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut h = x.clone();
        for l in self.body.iter_mut() {
            h = l.forward(&h);
        }
        assert_eq!(h.dims(), x.dims(), "residual body must preserve shape");
        self.dims = x.dims();
        let (b, c, hh, ww) = x.dims();
        let mut out = Tensor4::zeros(b, c, hh, ww);
        self.relu_mask.clear();
        for ((o, &xv), &hv) in out.data_mut().iter_mut().zip(x.data()).zip(h.data()) {
            let s = xv + hv;
            let keep = s > 0.0;
            self.relu_mask.push(keep);
            *o = if keep { s } else { 0.0 };
        }
        out
    }

    fn backward(&mut self, g: &Tensor4) -> Tensor4 {
        let (b, c, hh, ww) = self.dims;
        let mut gs = Tensor4::zeros(b, c, hh, ww);
        for (o, (&gv, &m)) in gs.data_mut().iter_mut().zip(g.data().iter().zip(&self.relu_mask)) {
            *o = if m { gv } else { 0.0 };
        }
        // Through the body...
        let mut gb = gs.clone();
        for l in self.body.iter_mut().rev() {
            gb = l.backward(&gb);
        }
        // ...plus the identity skip.
        for (o, &s) in gb.data_mut().iter_mut().zip(gs.data()) {
            *o += s;
        }
        gb
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        for l in self.body.iter_mut() {
            l.step(lr, momentum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(9)
    }

    /// Finite-difference gradient check for a scalar loss `sum(out²)/2`.
    fn grad_check(layer: &mut Layer, x: &Tensor4, tol: f32) {
        let out = layer.forward(x);
        let g = out.clone(); // dL/dout = out for L = sum(out²)/2
        let dx = layer.backward(&g);
        let eps = 1e-3;
        let loss = |l: &mut Layer, xt: &Tensor4| -> f64 {
            let o = l.forward(xt);
            o.data().iter().map(|&v| f64::from(v) * f64::from(v) / 2.0).sum()
        };
        let (b, c, h, w) = x.dims();
        // Check a handful of coordinates.
        for (bi, ci, yi, xi) in [(0, 0, 0, 0), (0, c - 1, h - 1, w - 1), (b - 1, 0, h / 2, w / 2)] {
            let mut xp = x.clone();
            *xp.at_mut(bi, ci, yi, xi) += eps;
            let mut xm = x.clone();
            *xm.at_mut(bi, ci, yi, xi) -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * f64::from(eps));
            let ana = f64::from(dx.at(bi, ci, yi, xi));
            assert!(
                (num - ana).abs() < f64::from(tol) * (1.0 + num.abs()),
                "({bi},{ci},{yi},{xi}): numeric {num} vs analytic {ana}"
            );
        }
    }

    fn input(b: usize, c: usize, s: usize) -> Tensor4 {
        Tensor4::from_fn(b, c, s, s, |bi, ci, y, x| {
            ((bi * 31 + ci * 7 + y * 3 + x) as f32 * 0.61).sin()
        })
    }

    #[test]
    fn conv_gradient_check() {
        let mut l = Layer::Conv(Conv2dLayer::new(3, 5, 3, &mut rng()));
        grad_check(&mut l, &input(2, 3, 6), 2e-2);
    }

    #[test]
    fn relu_gradient_check() {
        let mut l = Layer::ReLU(ReluLayer::new());
        grad_check(&mut l, &input(2, 4, 4), 1e-2);
    }

    #[test]
    fn maxpool_gradient_check() {
        let mut l = Layer::MaxPool(MaxPoolLayer::new());
        grad_check(&mut l, &input(2, 3, 6), 1e-2);
    }

    #[test]
    fn gap_gradient_check() {
        let mut l = Layer::Gap(GapLayer::new());
        grad_check(&mut l, &input(2, 3, 4), 1e-2);
    }

    #[test]
    fn linear_gradient_check() {
        let mut l = Layer::Linear(LinearLayer::new(6, 4, &mut rng()));
        let x = Tensor4::from_fn(3, 6, 1, 1, |b, c, _, _| ((b + c * 2) as f32 * 0.37).cos());
        grad_check(&mut l, &x, 1e-2);
    }

    #[test]
    fn residual_gradient_check() {
        let mut r = rng();
        let body = vec![
            Layer::Conv(Conv2dLayer::new(4, 4, 3, &mut r)),
            Layer::ReLU(ReluLayer::new()),
            Layer::Conv(Conv2dLayer::new(4, 4, 3, &mut r)),
        ];
        let mut l = Layer::Residual(ResidualBlock::new(body));
        grad_check(&mut l, &input(1, 4, 4), 5e-2);
    }

    #[test]
    fn conv_weight_gradient_finite_difference() {
        let mut conv = Conv2dLayer::new(2, 3, 3, &mut rng());
        let x = input(1, 2, 4);
        let out = conv.forward(&x);
        let g = out.clone();
        let _ = conv.backward(&g);
        let eps = 1e-3;
        // Check dL/dw for one weight (k=1, c=0, dy=1, dx=2).
        let idx_dst = (2 * 3 + 1) * 3 + 2;
        let analytic = conv.grad_w[idx_dst];
        let loss = |c: &mut Conv2dLayer, xt: &Tensor4| -> f64 {
            let o = c.forward(xt);
            o.data().iter().map(|&v| f64::from(v) * f64::from(v) / 2.0).sum()
        };
        *conv.weights.at_mut(1, 0, 1, 2) += eps;
        let lp = loss(&mut conv, &x);
        *conv.weights.at_mut(1, 0, 1, 2) -= 2.0 * eps;
        let lm = loss(&mut conv, &x);
        let numeric = ((lp - lm) / (2.0 * f64::from(eps))) as f32;
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn sgd_step_moves_weights_and_clears_grads() {
        let mut conv = Conv2dLayer::new(2, 2, 3, &mut rng());
        let x = input(1, 2, 4);
        let out = conv.forward(&x);
        let before = conv.weights.clone();
        let _ = conv.backward(&out);
        conv.step(0.1, 0.9);
        assert!(conv.weights.max_abs_diff(&before) > 0.0);
        assert!(conv.grad_w.iter().all(|&g| g == 0.0));
        assert!(conv.grad_b.iter().all(|&g| g == 0.0));
    }
}
