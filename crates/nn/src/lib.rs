//! # lowino-nn
//!
//! A small, self-contained neural-network framework used to reproduce the
//! end-to-end accuracy experiment of paper Table 3.
//!
//! The paper evaluates post-training quantization of VGG16/ResNet-50 on
//! ImageNet. Neither the dataset nor pre-trained weights are available
//! offline, so this crate substitutes the closest synthetic equivalent that
//! exercises the same code path (see DESIGN.md):
//!
//! * [`data`] — a procedurally generated image-classification dataset with
//!   class-specific spectral prototypes plus noise;
//! * [`layers`]/[`model`] — Conv/ReLU/MaxPool/GAP/Linear layers with full
//!   backpropagation, composed into **MiniVGG** (plain 3×3 stacks) and
//!   **MiniResNet** (residual blocks), the small-scale analogues of the
//!   paper's two networks;
//! * [`train()`] — SGD with momentum + cross-entropy;
//! * [`quantized`] — the PTQ pipeline: capture per-layer calibration
//!   activations with the FP32 model, plan a `lowino` executor per conv
//!   layer (any [`lowino::Algorithm`]), and evaluate INT8 top-1 accuracy;
//! * [`plan`]/[`graph`] — the whole-model graph engine: compile a model
//!   into a topologically scheduled [`CompiledGraph`] whose activations
//!   live in one liveness-planned arena, with persistent pre-transformed
//!   filter panels and bias/ReLU/residual-add folded into the conv tape
//!   epilogues — bitwise identical to the per-layer path and
//!   allocation-free in steady state.
//!
//! The Table 3 phenomenon — LoWino ≈ FP32 at `F(2,3)` *and* `F(4,3)`,
//! down-scaling fine at `F(2,3)` but collapsing to chance at `F(4,3)` — is
//! a property of the quantization error path, not of ImageNet, and
//! reproduces on this substrate (`table3_accuracy` harness).

pub mod data;
pub mod graph;
pub mod layers;
pub mod model;
pub mod plan;
pub mod quantized;
pub mod train;

pub use data::{Dataset, SyntheticSpec};
pub use graph::{CompiledGraph, GraphSpec};
pub use layers::{Conv2dLayer, Layer};
pub use model::{mini_resnet, mini_vgg, Model};
pub use plan::{plan_slots, ArenaPlan, SlotReq, PLAN_ALIGN};
pub use quantized::{QuantizedModel, QuantizedSpec};
pub use train::{evaluate_top1, train, TrainConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_tiny_training_learns() {
        // A 2-class toy problem must be learnable in a few epochs.
        let spec = SyntheticSpec {
            classes: 2,
            channels: 3,
            size: 8,
            train_per_class: 40,
            test_per_class: 10,
            noise: 0.1,
            seed: 7,
        };
        let data = Dataset::generate(&spec);
        let mut model = mini_vgg(3, 8, 2, 11);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            seed: 3,
        };
        train(&mut model, &data, &cfg);
        let acc = evaluate_top1(&mut model, data.test_x(), data.test_y());
        assert!(acc > 0.8, "top-1 {acc}");
    }
}
