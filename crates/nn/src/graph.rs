//! Whole-model graph engine: compile a [`Model`] into a [`CompiledGraph`]
//! that runs end-to-end out of one liveness-planned activation arena.
//!
//! [`CompiledGraph::compile`] walks the FP32 model exactly like the
//! per-layer PTQ pipeline ([`crate::quantized`]) — replaying the FP32
//! forward pass over the calibration batch so each convolution is
//! calibrated on uncontaminated reference activations — but lowers the
//! network into a flat, topologically scheduled op list instead of a
//! stage-per-layer interpreter:
//!
//! * every convolution becomes a [`lowino::ResilientConv`] (the
//!   LoWino-topped demotion ladder) with its **pre-transformed filter
//!   panels built once here, at compile time**;
//! * a ReLU following a conv, the conv's bias, and a residual block's
//!   skip-add are all folded into the conv's tape epilogue as
//!   [`lowino::ConvPostOps`] — at inference they cost one fused pass over
//!   each output tile while it is still in registers;
//! * every activation tensor gets an inclusive live range and an offset in
//!   **one** arena from the first-fit interval planner ([`crate::plan`]);
//!   windows are handed to the executors as arena-backed
//!   [`BlockedImage`]s, so steady-state execution performs **zero heap
//!   allocations** (asserted by the counting-allocator test
//!   `tests/graph_alloc.rs`).
//!
//! The glue ops that stay in f32 (max-pool, global average pooling, the
//! linear head, the unfused residual fallback) mirror the per-layer
//! interpreter's arithmetic **order** exactly, element for element — which
//! is what makes the whole graph bitwise identical to the per-layer path
//! (`tests/graph_identity.rs`), not merely close.
//!
//! Tracing: compilation emits the `graph/plan_bytes` counter; execution
//! wraps each op in a `graph/layer` span (arg = op index) inside a
//! `graph/execute` span.

use lowino::prelude::*;
use lowino::{AlignedBuf, ConvPostOps, LANES};

use crate::layers::{Conv2dLayer, Layer};
use crate::model::Model;
use crate::plan::{plan_slots, ArenaPlan, SlotReq, PLAN_ALIGN};
use crate::quantized::rebatch_for_calibration;

/// How to compile the graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Winograd tile size `m` for the LoWino rung of every conv ladder.
    pub m: usize,
    /// Inference batch size (the arena and executors are planned for it).
    pub batch: usize,
    /// Thread count for the engine.
    pub threads: usize,
}

/// Shape of one activation slot (a blocked image in the arena).
#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    batch: usize,
    channels: usize,
    h: usize,
    w: usize,
}

impl SlotInfo {
    fn len(&self) -> usize {
        BlockedImage::storage_len(self.batch, self.channels, self.h, self.w)
    }
}

/// One scheduled op over arena slots.
enum GraphOp {
    /// Convolution with fused post-ops (bias always; ReLU and residual
    /// skip-add when folded in by the compiler).
    Conv {
        /// Boxed: `ResilientConv` dwarfs every other variant, and one
        /// pointer chase per conv per forward is free next to the conv.
        conv: Box<ResilientConv>,
        /// Per-output-channel bias, zero-padded to `k_blocks · LANES`.
        bias: Vec<f32>,
        relu: bool,
        /// Skip-tensor slot added into the output (fused residual).
        residual: Option<usize>,
        src: usize,
        dst: usize,
    },
    /// Standalone `max(v, 0)` in place (only when not fused into a conv).
    Relu { slot: usize },
    /// 2×2 stride-2 max pooling.
    MaxPool { src: usize, dst: usize },
    /// Global average pooling to `1×1`.
    Gap { src: usize, dst: usize },
    /// Fully connected head over `(B, C, 1, 1)` activations.
    Linear {
        weights: Vec<f32>,
        bias: Vec<f32>,
        in_c: usize,
        out_c: usize,
        src: usize,
        dst: usize,
    },
    /// Unfused residual fallback: `dst = max(skip + body, 0)`.
    ResidualAdd { skip: usize, body: usize, dst: usize },
}

impl GraphOp {
    /// Slots this op reads / writes (for liveness).
    fn reads(&self) -> [Option<usize>; 2] {
        match self {
            GraphOp::Conv { src, residual, .. } => [Some(*src), *residual],
            GraphOp::Relu { slot } => [Some(*slot), None],
            GraphOp::MaxPool { src, .. }
            | GraphOp::Gap { src, .. }
            | GraphOp::Linear { src, .. } => [Some(*src), None],
            GraphOp::ResidualAdd { skip, body, .. } => [Some(*skip), Some(*body)],
        }
    }

    fn writes(&self) -> usize {
        match self {
            GraphOp::Conv { dst, .. }
            | GraphOp::MaxPool { dst, .. }
            | GraphOp::Gap { dst, .. }
            | GraphOp::Linear { dst, .. }
            | GraphOp::ResidualAdd { dst, .. } => *dst,
            GraphOp::Relu { slot } => *slot,
        }
    }
}

/// A model compiled for arena execution.
pub struct CompiledGraph {
    engine: Engine,
    ops: Vec<GraphOp>,
    slots: Vec<SlotInfo>,
    plan: ArenaPlan,
    arena: AlignedBuf<f32>,
    classes: usize,
    batch: usize,
    in_dims: (usize, usize, usize),
    input_slot: usize,
    output_slot: usize,
}

/// Intermediate compile state: ops + slot table under construction.
struct GraphBuilder {
    spec: GraphSpec,
    health: HealthPolicy,
    ops: Vec<GraphOp>,
    slots: Vec<SlotInfo>,
}

impl GraphBuilder {
    fn add_slot(&mut self, channels: usize, h: usize, w: usize) -> usize {
        self.slots.push(SlotInfo {
            batch: self.spec.batch,
            channels,
            h,
            w,
        });
        self.slots.len() - 1
    }

    /// Lower a layer list. `act` carries the FP32 reference activations of
    /// the *calibration* batch forward (exactly like the per-layer
    /// converter: quantization error must not contaminate downstream
    /// calibration); `cur` is the arena slot holding the corresponding
    /// inference activation. Returns the output slot.
    fn lower(
        &mut self,
        layers: &mut [Layer],
        act: &mut Tensor4,
        input: usize,
    ) -> Result<usize, ConvError> {
        let mut cur = input;
        let mut i = 0;
        while i < layers.len() {
            match &layers[i] {
                Layer::Conv(_) => {
                    // A directly following ReLU folds into the epilogue.
                    let fuse_relu = matches!(layers.get(i + 1), Some(Layer::ReLU(_)));
                    let dst = {
                        let Layer::Conv(conv) = &layers[i] else { unreachable!() };
                        self.lower_conv(conv, act, cur, fuse_relu)?
                    };
                    cur = dst;
                    *act = layers[i].forward(act);
                    if fuse_relu {
                        i += 1;
                        *act = layers[i].forward(act);
                    }
                }
                Layer::ReLU(_) => {
                    self.ops.push(GraphOp::Relu { slot: cur });
                    *act = layers[i].forward(act);
                }
                Layer::MaxPool(_) => {
                    let s = self.slots[cur];
                    let dst = self.add_slot(s.channels, s.h / 2, s.w / 2);
                    self.ops.push(GraphOp::MaxPool { src: cur, dst });
                    cur = dst;
                    *act = layers[i].forward(act);
                }
                Layer::Gap(_) => {
                    let s = self.slots[cur];
                    let dst = self.add_slot(s.channels, 1, 1);
                    self.ops.push(GraphOp::Gap { src: cur, dst });
                    cur = dst;
                    *act = layers[i].forward(act);
                }
                Layer::Linear(lin) => {
                    let out_c = lin.bias.len();
                    let in_c = lin.weights.len() / out_c;
                    let dst = self.add_slot(out_c, 1, 1);
                    self.ops.push(GraphOp::Linear {
                        weights: lin.weights.clone(),
                        bias: lin.bias.clone(),
                        in_c,
                        out_c,
                        src: cur,
                        dst,
                    });
                    cur = dst;
                    *act = layers[i].forward(act);
                }
                Layer::Residual(_) => {
                    let skip = cur;
                    let mut inner_act = act.clone();
                    let body_out = {
                        let Layer::Residual(block) = &mut layers[i] else { unreachable!() };
                        // Lower the body against the cloned reference
                        // activations; the skip slot doubles as its input.
                        self.lower(&mut block.body, &mut inner_act, skip)?
                    };
                    // The block's skip-add + ReLU folds into the body's
                    // last conv when that conv is still epilogue-free.
                    let fused = matches!(
                        self.ops.last(),
                        Some(GraphOp::Conv { relu: false, residual: None, dst, .. })
                            if *dst == body_out && body_out != skip
                    );
                    if fused {
                        let Some(GraphOp::Conv { relu, residual, .. }) = self.ops.last_mut()
                        else {
                            unreachable!()
                        };
                        *relu = true;
                        *residual = Some(skip);
                        cur = body_out;
                    } else {
                        let s = self.slots[skip];
                        let dst = self.add_slot(s.channels, s.h, s.w);
                        self.ops.push(GraphOp::ResidualAdd {
                            skip,
                            body: body_out,
                            dst,
                        });
                        cur = dst;
                    }
                    *act = layers[i].forward(act);
                }
            }
            i += 1;
        }
        Ok(cur)
    }

    /// Plan one convolution: calibrate on the FP32 reference activations
    /// (identically to the per-layer path) and build the resilient ladder
    /// — which packs the pre-transformed filter panels right here, once.
    fn lower_conv(
        &mut self,
        conv: &Conv2dLayer,
        act: &Tensor4,
        src: usize,
        relu: bool,
    ) -> Result<usize, ConvError> {
        let (_, c, h, w) = act.dims();
        debug_assert_eq!(c, conv.in_channels());
        let shape = ConvShape {
            batch: self.spec.batch,
            in_c: conv.in_channels(),
            out_c: conv.out_channels(),
            h,
            w,
            r: conv.filter(),
            stride: 1,
            pad: (conv.filter() - 1) / 2,
        };
        let samples = rebatch_for_calibration(act, self.spec.batch);
        let resilient =
            ResilientConv::with_policy(shape, self.spec.m, &conv.weights, samples, self.health)?;
        let k_blocks = conv.out_channels().div_ceil(LANES);
        let mut bias = vec![0.0f32; k_blocks * LANES];
        bias[..conv.out_channels()].copy_from_slice(&conv.bias);
        let dst = self.add_slot(conv.out_channels(), h, w);
        self.ops.push(GraphOp::Conv {
            conv: Box::new(resilient),
            bias,
            relu,
            residual: None,
            src,
            dst,
        });
        Ok(dst)
    }

    /// Inclusive live ranges for every slot: defined at its writer,
    /// dead after its last reader.
    fn liveness(&self, input: usize, output: usize) -> Vec<SlotReq> {
        let n_ops = self.ops.len().max(1);
        let mut first = vec![usize::MAX; self.slots.len()];
        let mut last = vec![0usize; self.slots.len()];
        // The input is written before op 0 and the output read after the
        // final op; both pins are inside the [0, n_ops) range.
        first[input] = 0;
        last[output] = n_ops - 1;
        for (i, op) in self.ops.iter().enumerate() {
            for r in op.reads().into_iter().flatten() {
                debug_assert_ne!(first[r], usize::MAX, "read of undefined slot {r}");
                last[r] = last[r].max(i);
            }
            let w = op.writes();
            first[w] = first[w].min(i);
            last[w] = last[w].max(i);
        }
        self.slots
            .iter()
            .zip(first.iter().zip(&last))
            .map(|(s, (&f, &l))| SlotReq {
                len: s.len(),
                first: f,
                last: l.max(f),
            })
            .collect()
    }
}

impl CompiledGraph {
    /// Compile `model` for arena execution, calibrating every conv on
    /// `calib_x` (a batch of NCHW images) exactly like
    /// [`crate::QuantizedModel::from_model`] does.
    pub fn compile(
        model: &mut Model,
        calib_x: &Tensor4,
        spec: &GraphSpec,
    ) -> Result<Self, ConvError> {
        Self::compile_with_health(model, calib_x, spec, HealthPolicy::default())
    }

    /// [`Self::compile`] with an explicit per-conv [`HealthPolicy`] —
    /// ablation benches disable the post-execute health scans with it to
    /// isolate their cost (see `EXPERIMENTS.md`, PR 8).
    pub fn compile_with_health(
        model: &mut Model,
        calib_x: &Tensor4,
        spec: &GraphSpec,
        health: HealthPolicy,
    ) -> Result<Self, ConvError> {
        Self::compile_with_engine(Engine::new(spec.threads), model, calib_x, spec, health)
    }

    /// [`Self::compile_with_health`] onto a caller-built [`Engine`] — a
    /// serving shard configures its engine first (pinned tier, wisdom
    /// file, tune policy via [`Engine::builder`]) and hands it over; the
    /// graph takes ownership. `spec.threads` is ignored in this variant
    /// (the engine already owns its pool).
    pub fn compile_with_engine(
        engine: Engine,
        model: &mut Model,
        calib_x: &Tensor4,
        spec: &GraphSpec,
        health: HealthPolicy,
    ) -> Result<Self, ConvError> {
        let _sp = lowino_trace::span("graph/compile");
        let (_, c, h, w) = calib_x.dims();
        let mut builder = GraphBuilder {
            spec: *spec,
            health,
            ops: Vec::new(),
            slots: Vec::new(),
        };
        let input_slot = builder.add_slot(c, h, w);
        let mut act = calib_x.clone();
        let output_slot = builder.lower(&mut model.layers, &mut act, input_slot)?;
        // Seed every conv's GEMM blocking from the engine's tuner (exact
        // wisdom → shape class → cost model) — the graph's first forward
        // never stalls on a measurement sweep, and demoted rungs re-seed.
        for op in &mut builder.ops {
            if let GraphOp::Conv { conv, .. } = op {
                conv.seed_blocking(engine.context());
            }
        }
        let reqs = builder.liveness(input_slot, output_slot);
        let plan = plan_slots(&reqs, PLAN_ALIGN);
        lowino_trace::counter("graph/plan_bytes", plan.bytes() as u64);
        let arena = AlignedBuf::zeroed(plan.total_len.max(PLAN_ALIGN));
        Ok(Self {
            engine,
            ops: builder.ops,
            slots: builder.slots,
            plan,
            arena,
            classes: model.classes(),
            batch: spec.batch,
            in_dims: (c, h, w),
            input_slot,
            output_slot,
        })
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The planned inference batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Input image dims `(C, H, W)` the graph was compiled for.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.in_dims
    }

    /// Borrow the engine (tier/wisdom inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutably borrow the engine (wisdom persistence, context access).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The **currently active** algorithm of every conv ladder, in op
    /// order — after demotions this reflects the rung actually executing,
    /// which is what a serving `/stats` endpoint reports per shard.
    pub fn conv_algorithms(&self) -> Vec<Algorithm> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                GraphOp::Conv { conv, .. } => Some(conv.algorithm()),
                _ => None,
            })
            .collect()
    }

    /// Arena size in bytes (what `graph/plan_bytes` reported at compile).
    pub fn plan_bytes(&self) -> usize {
        self.plan.bytes()
    }

    /// Did the `graph/plan` fault degrade the layout to no-reuse?
    pub fn plan_degraded(&self) -> bool {
        self.plan.degraded
    }

    /// Swap every conv ladder's [`HealthPolicy`] live. The serving
    /// brownout controller uses this to relax the post-execute health
    /// scans under overload (`HealthPolicy::relaxed()`) and restore the
    /// compile-time policy when pressure clears; demotions already taken
    /// are sticky and unaffected.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        for op in &mut self.ops {
            if let GraphOp::Conv { conv, .. } = op {
                conv.set_policy(policy);
            }
        }
    }

    /// Total demotions taken across every conv ladder in the graph.
    pub fn demotion_count(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                GraphOp::Conv { conv, .. } => Some(conv.demotions().len()),
                _ => None,
            })
            .sum()
    }

    /// Run one planned batch: `input` is `(batch, C, H, W)` NCHW, `logits`
    /// a caller-allocated `(batch, classes, 1, 1)` tensor. Steady state
    /// (after one warm-up call has grown the executors' scratch arenas)
    /// this performs zero heap allocations.
    pub fn execute(&mut self, input: &Tensor4, logits: &mut Tensor4) -> Result<(), ConvError> {
        let _sp = lowino_trace::span("graph/execute");
        let (b, c, h, w) = input.dims();
        assert_eq!(b, self.batch, "input batch");
        assert_eq!((c, h, w), self.in_dims, "input dims");
        assert_eq!(
            logits.dims(),
            (self.batch, self.classes, 1, 1),
            "logits dims"
        );
        let (input_slot, output_slot) = (self.input_slot, self.output_slot);
        let (batch, classes) = (self.batch, self.classes);
        let Self {
            engine,
            ops,
            slots,
            plan,
            arena,
            ..
        } = self;
        let base = arena.as_mut_ptr();
        // SAFETY (for every `slot_image` below): the planner guarantees
        // that simultaneously-live slots occupy disjoint arena windows and
        // the ops only materialise images for slots live at that op, so no
        // two coexisting images alias; offsets are PLAN_ALIGN-aligned.
        unsafe {
            let mut in_img = slot_image(base, plan, slots, input_slot);
            load_nchw(&mut in_img, input);
        }
        for (idx, op) in ops.iter_mut().enumerate() {
            let _lsp = lowino_trace::span_arg("graph/layer", idx as u64);
            match op {
                GraphOp::Conv {
                    conv,
                    bias,
                    relu,
                    residual,
                    src,
                    dst,
                } => {
                    let (src_img, mut dst_img, res_img) = unsafe {
                        (
                            slot_image(base, plan, slots, *src),
                            slot_image(base, plan, slots, *dst),
                            residual.map(|r| slot_image(base, plan, slots, r)),
                        )
                    };
                    let post = ConvPostOps {
                        bias: Some(&bias[..]),
                        residual: res_img.as_ref(),
                        relu: *relu,
                    };
                    conv.execute_post(&src_img, &mut dst_img, &post, engine.context_mut())?;
                }
                GraphOp::Relu { slot } => {
                    let mut img = unsafe { slot_image(base, plan, slots, *slot) };
                    for v in img.data_mut() {
                        *v = v.max(0.0);
                    }
                }
                GraphOp::MaxPool { src, dst } => unsafe {
                    let s = slot_image(base, plan, slots, *src);
                    let mut d = slot_image(base, plan, slots, *dst);
                    maxpool2_blocked(&s, &mut d);
                },
                GraphOp::Gap { src, dst } => unsafe {
                    let s = slot_image(base, plan, slots, *src);
                    let mut d = slot_image(base, plan, slots, *dst);
                    gap_blocked(&s, &mut d);
                },
                GraphOp::Linear {
                    weights,
                    bias,
                    in_c,
                    out_c,
                    src,
                    dst,
                } => unsafe {
                    let s = slot_image(base, plan, slots, *src);
                    let mut d = slot_image(base, plan, slots, *dst);
                    linear_blocked(&s, &mut d, weights, bias, *in_c, *out_c);
                },
                GraphOp::ResidualAdd { skip, body, dst } => unsafe {
                    let sk = slot_image(base, plan, slots, *skip);
                    let bd = slot_image(base, plan, slots, *body);
                    let mut d = slot_image(base, plan, slots, *dst);
                    residual_add_blocked(&sk, &bd, &mut d);
                },
            }
        }
        let out_img = unsafe { slot_image(base, plan, slots, output_slot) };
        for bi in 0..batch {
            for k in 0..classes {
                *logits.at_mut(bi, k, 0, 0) = out_img.lanes(bi, k / LANES, 0, 0)[k % LANES];
            }
        }
        Ok(())
    }

    /// Convenience: allocate and return the logits for one planned batch.
    pub fn logits(&mut self, x: &Tensor4) -> Tensor4 {
        let mut out = Tensor4::zeros(self.batch, self.classes, 1, 1);
        self.execute(x, &mut out).expect("graph execute");
        out
    }

    /// Predict classes for any number of images (processed in
    /// planning-sized chunks, tail zero-padded — same contract as
    /// [`crate::QuantizedModel::predict`]).
    pub fn predict(&mut self, x: &Tensor4) -> Vec<usize> {
        let (n, c, h, w) = x.dims();
        assert_eq!((c, h, w), self.in_dims, "input dims");
        let mut preds = Vec::with_capacity(n);
        let mut chunk = Tensor4::zeros(self.batch, c, h, w);
        let mut logits = Tensor4::zeros(self.batch, self.classes, 1, 1);
        let mut i = 0;
        while i < n {
            let take = (n - i).min(self.batch);
            chunk.data_mut().fill(0.0);
            for b in 0..take {
                for cc in 0..c {
                    for y in 0..h {
                        for xx in 0..w {
                            *chunk.at_mut(b, cc, y, xx) = x.at(i + b, cc, y, xx);
                        }
                    }
                }
            }
            self.execute(&chunk, &mut logits).expect("graph execute");
            for b in 0..take {
                let best = (0..self.classes)
                    .max_by(|&a, &b2| {
                        logits.at(b, a, 0, 0).total_cmp(&logits.at(b, b2, 0, 0))
                    })
                    .unwrap_or(0);
                preds.push(best);
            }
            i += take;
        }
        preds
    }

    /// Top-1 accuracy on a labelled set.
    pub fn evaluate_top1(&mut self, x: &Tensor4, y: &[usize]) -> f64 {
        let preds = self.predict(x);
        preds.iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
    }
}

/// Materialise the arena window of one slot as a [`BlockedImage`]
/// (allocation-free).
///
/// # Safety
///
/// Caller must ensure no other live image aliases this slot's window —
/// upheld op-by-op by the planner's disjointness guarantee.
unsafe fn slot_image(
    base: *mut f32,
    plan: &ArenaPlan,
    slots: &[SlotInfo],
    idx: usize,
) -> BlockedImage {
    let s = &slots[idx];
    unsafe {
        BlockedImage::from_arena_ptr(base.add(plan.offsets[idx]), s.batch, s.channels, s.h, s.w)
    }
}

/// Copy an NCHW tensor into a blocked slot, fully overwriting the window
/// (padding lanes zeroed — the slot may hold a dead tensor's bits).
fn load_nchw(img: &mut BlockedImage, t: &Tensor4) {
    let (b_n, c_n, h, w) = img.dims();
    debug_assert_eq!(t.dims(), (b_n, c_n, h, w));
    let c_blocks = img.c_blocks();
    for b in 0..b_n {
        for cb in 0..c_blocks {
            for y in 0..h {
                for x in 0..w {
                    let lanes = img.lanes_mut(b, cb, y, x);
                    for (l, v) in lanes.iter_mut().enumerate() {
                        let c = cb * LANES + l;
                        *v = if c < c_n { t.at(b, c, y, x) } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// 2×2 stride-2 max pool over blocked images. The per-element max chain
/// follows the per-layer interpreter's order exactly (bitwise contract).
fn maxpool2_blocked(src: &BlockedImage, dst: &mut BlockedImage) {
    let (b_n, _, h, w) = src.dims();
    let (db, _, oh, ow) = dst.dims();
    debug_assert_eq!((db, oh, ow), (b_n, h / 2, w / 2));
    for b in 0..b_n {
        for cb in 0..src.c_blocks() {
            for y in 0..oh {
                for x in 0..ow {
                    let a = src.lanes(b, cb, 2 * y, 2 * x);
                    let bq = src.lanes(b, cb, 2 * y, 2 * x + 1);
                    let cq = src.lanes(b, cb, 2 * y + 1, 2 * x);
                    let dq = src.lanes(b, cb, 2 * y + 1, 2 * x + 1);
                    let out = dst.lanes_mut(b, cb, y, x);
                    for l in 0..LANES {
                        out[l] = a[l].max(bq[l]).max(cq[l]).max(dq[l]);
                    }
                }
            }
        }
    }
}

/// Global average pooling over blocked images (y-major accumulation, then
/// one multiply by `1/(h·w)` — the per-layer interpreter's order).
fn gap_blocked(src: &BlockedImage, dst: &mut BlockedImage) {
    let (b_n, _, h, w) = src.dims();
    let inv = 1.0 / (h * w) as f32;
    for b in 0..b_n {
        for cb in 0..src.c_blocks() {
            let out = dst.lanes_mut(b, cb, 0, 0);
            out.fill(0.0);
            for y in 0..h {
                for x in 0..w {
                    let lanes = src.lanes(b, cb, y, x);
                    for l in 0..LANES {
                        out[l] += lanes[l];
                    }
                }
            }
            for v in out.iter_mut() {
                *v *= inv;
            }
        }
    }
}

/// Fully connected head over `(B, C, 1, 1)` blocked activations. Writes
/// every lane of the destination (padding lanes zeroed: the slot may be a
/// reused window holding stale bits, and downstream consumers assume
/// padding reads as zero).
fn linear_blocked(
    src: &BlockedImage,
    dst: &mut BlockedImage,
    weights: &[f32],
    bias: &[f32],
    in_c: usize,
    out_c: usize,
) {
    let (b_n, c_n, _, _) = src.dims();
    debug_assert_eq!(c_n, in_c);
    for b in 0..b_n {
        for kb in 0..dst.c_blocks() {
            let out = dst.lanes_mut(b, kb, 0, 0);
            for (l, o) in out.iter_mut().enumerate() {
                let k = kb * LANES + l;
                *o = if k < out_c {
                    let mut s = bias[k];
                    for c in 0..in_c {
                        s += weights[k * in_c + c] * src.lanes(b, c / LANES, 0, 0)[c % LANES];
                    }
                    s
                } else {
                    0.0
                };
            }
        }
    }
}

/// Unfused residual: `dst = max(skip + body, 0)` element-wise, in the
/// per-layer interpreter's operand order.
fn residual_add_blocked(skip: &BlockedImage, body: &BlockedImage, dst: &mut BlockedImage) {
    debug_assert_eq!(skip.dims(), dst.dims());
    debug_assert_eq!(body.dims(), dst.dims());
    for ((o, &s), &bv) in dst
        .data_mut()
        .iter_mut()
        .zip(skip.data())
        .zip(body.data())
    {
        *o = (s + bv).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{mini_resnet, mini_vgg};
    use lowino_testkit::Rng;

    /// Give every conv/linear a non-trivial bias so the fused epilogue
    /// path is exercised (fresh layers initialise biases to zero).
    fn inject_biases(layers: &mut [Layer], rng: &mut Rng) {
        for l in layers {
            match l {
                Layer::Conv(c) => {
                    for b in &mut c.bias {
                        *b = rng.f32_range(-0.3, 0.3);
                    }
                }
                Layer::Linear(lin) => {
                    for b in &mut lin.bias {
                        *b = rng.f32_range(-0.3, 0.3);
                    }
                }
                Layer::Residual(r) => inject_biases(&mut r.body, rng),
                _ => {}
            }
        }
    }

    fn calib(batch: usize, c: usize, s: usize) -> Tensor4 {
        Tensor4::from_fn(batch, c, s, s, |b, cc, y, x| {
            ((b * 37 + cc * 11 + y * 5 + x * 3) as f32 * 0.41).sin()
        })
    }

    #[test]
    fn compiles_and_classifies_both_models() {
        let mut rng = Rng::seed_from_u64(41);
        for resnet in [false, true] {
            let mut model = if resnet {
                mini_resnet(3, 8, 3, 21)
            } else {
                mini_vgg(3, 8, 3, 21)
            };
            inject_biases(&mut model.layers, &mut rng);
            let x = calib(4, 3, 8);
            let spec = GraphSpec { m: 2, batch: 2, threads: 1 };
            let mut g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
            assert_eq!(g.classes(), 3);
            assert_eq!(g.batch(), 2);
            assert_eq!(g.demotion_count(), 0);
            assert!(!g.plan_degraded());
            let preds = g.predict(&x);
            assert_eq!(preds.len(), 4);
            assert!(preds.iter().all(|&p| p < 3));
            // Deterministic across runs (the arena is fully re-written).
            assert_eq!(preds, g.predict(&x));
        }
    }

    #[test]
    fn arena_is_smaller_than_disjoint_layout() {
        // Liveness planning must actually reuse windows: the arena of a
        // deep model is strictly smaller than the sum of all tensors.
        let mut model = mini_vgg(3, 8, 3, 5);
        let x = calib(2, 3, 8);
        let spec = GraphSpec { m: 2, batch: 2, threads: 1 };
        let g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
        let disjoint: usize = g
            .slots
            .iter()
            .map(|s| s.len() * core::mem::size_of::<f32>())
            .sum();
        assert!(
            g.plan_bytes() < disjoint,
            "plan {} >= disjoint {}",
            g.plan_bytes(),
            disjoint
        );
    }

    #[test]
    fn residual_skip_add_is_fused_into_the_body_conv() {
        let mut model = mini_resnet(3, 8, 3, 9);
        let x = calib(2, 3, 8);
        let spec = GraphSpec { m: 2, batch: 2, threads: 1 };
        let g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
        let fused = g
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::Conv { residual: Some(_), relu: true, .. }))
            .count();
        assert_eq!(fused, 3, "every residual block fuses into its last conv");
        assert!(
            !g.ops.iter().any(|op| matches!(op, GraphOp::ResidualAdd { .. })),
            "no unfused residual op should remain"
        );
        assert!(
            !g.ops.iter().any(|op| matches!(op, GraphOp::Relu { .. })),
            "every ReLU folds into a conv epilogue in MiniResNet"
        );
    }
}
