//! Post-training quantization of a trained model (the Table 3 pipeline).
//!
//! Conversion walks the FP32 model layer by layer with a batch of
//! calibration images: each convolution's *input activations* are captured
//! exactly where they occur in the network (paper §3: "the input of a
//! convolutional layer is collected by executing the neural network on the
//! sample images"), the requested `lowino` algorithm is planned with those
//! samples, and inference then runs convolutions through the low-precision
//! executors while the glue (bias, ReLU, pooling, linear head) stays FP32.

use lowino::prelude::*;
use lowino::ConvError;

use crate::layers::{Conv2dLayer, Layer};
use crate::model::Model;

/// How to quantize the convolutions.
#[derive(Debug, Clone, Copy)]
pub struct QuantizedSpec {
    /// The convolution algorithm for every conv layer.
    pub algorithm: Algorithm,
    /// Use per-tile-position scales (LoWino only).
    pub per_position: bool,
    /// Inference batch size (the executors are planned for it).
    pub batch: usize,
    /// Thread count for the engine.
    pub threads: usize,
}

enum QStage {
    Conv {
        layer: Layer2,
        bias: Vec<f32>,
    },
    ReLU,
    MaxPool,
    Gap,
    Linear {
        weights: Vec<f32>,
        bias: Vec<f32>,
        in_c: usize,
        out_c: usize,
    },
    Residual(Vec<QStage>),
}

// A planned lowino layer (type alias to keep signatures readable).
type Layer2 = lowino::builder::Layer;

/// A quantized inference model.
pub struct QuantizedModel {
    stages: Vec<QStage>,
    engine: Engine,
    classes: usize,
    batch: usize,
    in_dims: (usize, usize, usize),
}

impl QuantizedModel {
    /// Convert a trained FP32 model, calibrating on `calib_x` (a batch of
    /// images in NCHW).
    pub fn from_model(
        model: &mut Model,
        calib_x: &Tensor4,
        qspec: &QuantizedSpec,
    ) -> Result<Self, ConvError> {
        let engine = Engine::new(qspec.threads);
        let (_, c, h, w) = calib_x.dims();
        let mut act = calib_x.clone();
        let stages = convert_layers(&mut model.layers, &mut act, qspec, &engine)?;
        Ok(Self {
            stages,
            engine,
            classes: model.classes(),
            batch: qspec.batch,
            in_dims: (c, h, w),
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Predict classes for a batch of images (processed in planning-sized
    /// chunks; the tail is zero-padded internally).
    pub fn predict(&mut self, x: &Tensor4) -> Vec<usize> {
        let (n, c, h, w) = x.dims();
        assert_eq!((c, h, w), self.in_dims, "input dims");
        let mut preds = Vec::with_capacity(n);
        let mut chunk = Tensor4::zeros(self.batch, c, h, w);
        let mut i = 0;
        while i < n {
            let take = (n - i).min(self.batch);
            chunk.data_mut().fill(0.0);
            for b in 0..take {
                for cc in 0..c {
                    for y in 0..h {
                        for xx in 0..w {
                            *chunk.at_mut(b, cc, y, xx) = x.at(i + b, cc, y, xx);
                        }
                    }
                }
            }
            let logits = forward_stages(&mut self.stages, &chunk, &mut self.engine);
            let (_, k, _, _) = logits.dims();
            for b in 0..take {
                let best = (0..k)
                    .max_by(|&a, &b2| logits.at(b, a, 0, 0).total_cmp(&logits.at(b, b2, 0, 0)))
                    .unwrap_or(0);
                preds.push(best);
            }
            i += take;
        }
        preds
    }

    /// Raw logits `(batch, classes, 1, 1)` for one planning-sized batch —
    /// the per-layer reference the graph engine's differential tests
    /// compare against bitwise, so unlike [`Self::predict`] it does no
    /// chunking or padding.
    pub fn logits(&mut self, x: &Tensor4) -> Tensor4 {
        let (b, c, h, w) = x.dims();
        assert_eq!((c, h, w), self.in_dims, "input dims");
        assert_eq!(b, self.batch, "logits() takes exactly the planned batch");
        forward_stages(&mut self.stages, x, &mut self.engine)
    }

    /// Top-1 accuracy on a labelled set.
    pub fn evaluate_top1(&mut self, x: &Tensor4, y: &[usize]) -> f64 {
        let preds = self.predict(x);
        preds.iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
    }
}

fn convert_layers(
    layers: &mut [Layer],
    act: &mut Tensor4,
    qspec: &QuantizedSpec,
    engine: &Engine,
) -> Result<Vec<QStage>, ConvError> {
    let mut stages = Vec::with_capacity(layers.len());
    for layer in layers.iter_mut() {
        match layer {
            Layer::Conv(conv) => {
                stages.push(convert_conv(conv, act, qspec, engine)?);
                // FP32 reference activations flow forward (quantization
                // error must not contaminate downstream calibration).
                *act = layer.forward(act);
            }
            Layer::Residual(block) => {
                let mut inner_act = act.clone();
                let inner =
                    convert_layers(&mut block.body, &mut inner_act, qspec, engine)?;
                stages.push(QStage::Residual(inner));
                *act = layer.forward(act);
            }
            Layer::ReLU(_) => {
                stages.push(QStage::ReLU);
                *act = layer.forward(act);
            }
            Layer::MaxPool(_) => {
                stages.push(QStage::MaxPool);
                *act = layer.forward(act);
            }
            Layer::Gap(_) => {
                stages.push(QStage::Gap);
                *act = layer.forward(act);
            }
            Layer::Linear(lin) => {
                stages.push(QStage::Linear {
                    weights: lin.weights.clone(),
                    bias: lin.bias.clone(),
                    in_c: lin.weights.len() / lin.bias.len(),
                    out_c: lin.bias.len(),
                });
                *act = layer.forward(act);
            }
        }
    }
    Ok(stages)
}

fn convert_conv(
    conv: &Conv2dLayer,
    act: &Tensor4,
    qspec: &QuantizedSpec,
    engine: &Engine,
) -> Result<QStage, ConvError> {
    let (_, c, h, w) = act.dims();
    debug_assert_eq!(c, conv.in_channels());
    let spec = ConvShape {
        batch: qspec.batch,
        in_c: conv.in_channels(),
        out_c: conv.out_channels(),
        h,
        w,
        r: conv.filter(),
        stride: 1,
        pad: (conv.filter() - 1) / 2,
    };
    // The calibration batch usually differs from the inference batch; the
    // sample image is re-batched to match the spec the executor is planned
    // for (the calibrators accept any batch inside one BlockedImage, but
    // sample dims must equal the spec's H/W/C).
    let samples = rebatch_for_calibration(act, qspec.batch);
    let layer = LayerBuilder::new(spec, &conv.weights)
        .algorithm(AlgoChoice::Fixed(qspec.algorithm))
        .calibration_samples(samples)
        .per_position_scales(qspec.per_position)
        .build(engine)?;
    Ok(QStage::Conv {
        layer,
        bias: conv.bias.clone(),
    })
}

/// Split a calibration activation batch into `BlockedImage`s whose batch
/// dimension matches the planned spec (shared with the graph compiler,
/// which must calibrate identically for the bitwise-identity guarantee).
pub(crate) fn rebatch_for_calibration(act: &Tensor4, batch: usize) -> Vec<BlockedImage> {
    let (n, c, h, w) = act.dims();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let take = (n - i).min(batch);
        let mut chunk = Tensor4::zeros(batch, c, h, w);
        for b in 0..take {
            for cc in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        *chunk.at_mut(b, cc, y, xx) = act.at(i + b, cc, y, xx);
                    }
                }
            }
        }
        out.push(BlockedImage::from_nchw(&chunk));
        i += take;
    }
    out
}

fn forward_stages(stages: &mut [QStage], x: &Tensor4, engine: &mut Engine) -> Tensor4 {
    let mut h = x.clone();
    for stage in stages.iter_mut() {
        h = match stage {
            QStage::Conv { layer, bias } => {
                let img = BlockedImage::from_nchw(&h);
                let spec = *layer.spec();
                let mut out = engine.alloc_output(&spec);
                engine.execute(layer, &img, &mut out)
                    .expect("quantized layer execute");
                let mut t = out.to_nchw();
                add_bias(&mut t, bias);
                t
            }
            QStage::ReLU => {
                let mut t = h.clone();
                for v in t.data_mut() {
                    *v = v.max(0.0);
                }
                t
            }
            QStage::MaxPool => maxpool2(&h),
            QStage::Gap => gap(&h),
            QStage::Linear {
                weights,
                bias,
                in_c,
                out_c,
            } => linear(&h, weights, bias, *in_c, *out_c),
            QStage::Residual(inner) => {
                let body = forward_stages(inner, &h, engine);
                let mut t = h.clone();
                for (o, &b) in t.data_mut().iter_mut().zip(body.data()) {
                    *o = (*o + b).max(0.0);
                }
                t
            }
        };
    }
    h
}

fn add_bias(t: &mut Tensor4, bias: &[f32]) {
    let (b_n, k_n, h, w) = t.dims();
    debug_assert_eq!(k_n, bias.len());
    for b in 0..b_n {
        for k in 0..k_n {
            for y in 0..h {
                for x in 0..w {
                    *t.at_mut(b, k, y, x) += bias[k];
                }
            }
        }
    }
}

fn maxpool2(x: &Tensor4) -> Tensor4 {
    let (b_n, c_n, h, w) = x.dims();
    let mut out = Tensor4::zeros(b_n, c_n, h / 2, w / 2);
    for b in 0..b_n {
        for c in 0..c_n {
            for y in 0..h / 2 {
                for xx in 0..w / 2 {
                    let m = x
                        .at(b, c, 2 * y, 2 * xx)
                        .max(x.at(b, c, 2 * y, 2 * xx + 1))
                        .max(x.at(b, c, 2 * y + 1, 2 * xx))
                        .max(x.at(b, c, 2 * y + 1, 2 * xx + 1));
                    *out.at_mut(b, c, y, xx) = m;
                }
            }
        }
    }
    out
}

fn gap(x: &Tensor4) -> Tensor4 {
    let (b_n, c_n, h, w) = x.dims();
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor4::zeros(b_n, c_n, 1, 1);
    for b in 0..b_n {
        for c in 0..c_n {
            let mut s = 0f32;
            for y in 0..h {
                for xx in 0..w {
                    s += x.at(b, c, y, xx);
                }
            }
            *out.at_mut(b, c, 0, 0) = s * inv;
        }
    }
    out
}

fn linear(x: &Tensor4, weights: &[f32], bias: &[f32], in_c: usize, out_c: usize) -> Tensor4 {
    let (b_n, c_n, _, _) = x.dims();
    debug_assert_eq!(c_n, in_c);
    let mut out = Tensor4::zeros(b_n, out_c, 1, 1);
    for b in 0..b_n {
        for k in 0..out_c {
            let mut s = bias[k];
            for c in 0..in_c {
                s += weights[k * in_c + c] * x.at(b, c, 0, 0);
            }
            *out.at_mut(b, k, 0, 0) = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticSpec};
    use crate::model::{mini_resnet, mini_vgg};
    use crate::train::{evaluate_top1, train, TrainConfig};

    fn trained_setup(resnet: bool) -> (Model, Dataset) {
        let data = Dataset::generate(&SyntheticSpec {
            classes: 3,
            channels: 3,
            size: 8,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.1,
            seed: 13,
        });
        let mut model = if resnet {
            mini_resnet(3, 8, 3, 77)
        } else {
            mini_vgg(3, 8, 3, 77)
        };
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 6,
                batch_size: 10,
                lr: 0.05,
                momentum: 0.9,
                seed: 5,
            },
        );
        (model, data)
    }

    #[test]
    fn directf32_passthrough_matches_fp32_model() {
        let (mut model, data) = trained_setup(false);
        let fp32_acc = evaluate_top1(&mut model, data.test_x(), data.test_y());
        let calib = data.gather_batch(&(0..20).collect::<Vec<_>>()).0;
        let mut q = QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: Algorithm::DirectF32,
                per_position: false,
                batch: 8,
                threads: 1,
            },
        )
        .unwrap();
        let q_acc = q.evaluate_top1(data.test_x(), data.test_y());
        assert!(
            (q_acc - fp32_acc).abs() < 1e-9,
            "fp32 {fp32_acc} vs passthrough {q_acc}"
        );
    }

    #[test]
    fn lowino_f2_preserves_accuracy() {
        let (mut model, data) = trained_setup(false);
        let fp32_acc = evaluate_top1(&mut model, data.test_x(), data.test_y());
        let calib = data.gather_batch(&(0..20).collect::<Vec<_>>()).0;
        let mut q = QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: Algorithm::LoWino { m: 2 },
                per_position: false,
                batch: 8,
                threads: 1,
            },
        )
        .unwrap();
        let q_acc = q.evaluate_top1(data.test_x(), data.test_y());
        assert!(
            q_acc >= fp32_acc - 0.15,
            "fp32 {fp32_acc} vs lowino {q_acc}"
        );
    }

    #[test]
    fn residual_model_quantizes() {
        let (mut model, data) = trained_setup(true);
        let calib = data.gather_batch(&(0..12).collect::<Vec<_>>()).0;
        let mut q = QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: Algorithm::LoWino { m: 2 },
                per_position: false,
                batch: 6,
                threads: 1,
            },
        )
        .unwrap();
        let acc = q.evaluate_top1(data.test_x(), data.test_y());
        assert!(acc > 1.0 / 3.0, "acc {acc} at chance level");
        assert_eq!(q.classes(), 3);
    }

    #[test]
    fn predict_handles_ragged_tail() {
        let (mut model, data) = trained_setup(false);
        let calib = data.gather_batch(&(0..8).collect::<Vec<_>>()).0;
        let mut q = QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: Algorithm::DirectInt8,
                per_position: false,
                batch: 7, // deliberately not dividing the test-set size
                threads: 1,
            },
        )
        .unwrap();
        let preds = q.predict(data.test_x());
        assert_eq!(preds.len(), data.test_y().len());
    }
}
