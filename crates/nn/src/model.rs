//! Model composition and the two Mini architectures.

use lowino::Tensor4;
use lowino_testkit::Rng;

use crate::layers::{
    Conv2dLayer, GapLayer, Layer, LinearLayer, MaxPoolLayer, ReluLayer, ResidualBlock,
};

/// A sequential model.
pub struct Model {
    /// Layers in execution order.
    pub layers: Vec<Layer>,
    classes: usize,
}

impl Model {
    /// Wrap layers.
    pub fn new(layers: Vec<Layer>, classes: usize) -> Self {
        Self { layers, classes }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Full forward pass to logits `(B, classes, 1, 1)`.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let mut h = x.clone();
        for l in self.layers.iter_mut() {
            h = l.forward(&h);
        }
        h
    }

    /// Backward pass from logit gradients.
    pub fn backward(&mut self, g: &Tensor4) {
        let mut g = g.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// SGD step over all parameters.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        for l in self.layers.iter_mut() {
            l.step(lr, momentum);
        }
    }

    /// Predicted class per sample from logits.
    pub fn predict(&mut self, x: &Tensor4) -> Vec<usize> {
        let logits = self.forward(x);
        let (b, k, _, _) = logits.dims();
        (0..b)
            .map(|bi| {
                (0..k)
                    .max_by(|&a, &b2| logits.at(bi, a, 0, 0).total_cmp(&logits.at(bi, b2, 0, 0)))
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// MiniVGG: plain 3×3 stacks with max-pooling — the small-scale analogue of
/// the paper's VGG16 row in Table 3.
///
/// `size` is the (even) input resolution; two pools reduce it 4×.
pub fn mini_vgg(in_c: usize, width: usize, classes: usize, seed: u64) -> Model {
    let mut rng = Rng::seed_from_u64(seed);
    let layers = vec![
        Layer::Conv(Conv2dLayer::new(in_c, width, 3, &mut rng)),
        Layer::ReLU(ReluLayer::new()),
        Layer::Conv(Conv2dLayer::new(width, width, 3, &mut rng)),
        Layer::ReLU(ReluLayer::new()),
        Layer::MaxPool(MaxPoolLayer::new()),
        Layer::Conv(Conv2dLayer::new(width, width, 3, &mut rng)),
        Layer::ReLU(ReluLayer::new()),
        Layer::Conv(Conv2dLayer::new(width, width, 3, &mut rng)),
        Layer::ReLU(ReluLayer::new()),
        Layer::MaxPool(MaxPoolLayer::new()),
        Layer::Gap(GapLayer::new()),
        Layer::Linear(LinearLayer::new(width, classes, &mut rng)),
    ];
    Model::new(layers, classes)
}

/// MiniResNet: a stem conv plus two identity residual blocks — the
/// small-scale analogue of the paper's ResNet-50 row in Table 3.
pub fn mini_resnet(in_c: usize, width: usize, classes: usize, seed: u64) -> Model {
    let mut rng = Rng::seed_from_u64(seed);
    let block = |rng: &mut Rng| {
        Layer::Residual(ResidualBlock::new(vec![
            Layer::Conv(Conv2dLayer::new(width, width, 3, rng)),
            Layer::ReLU(ReluLayer::new()),
            Layer::Conv(Conv2dLayer::new(width, width, 3, rng)),
        ]))
    };
    let layers = vec![
        Layer::Conv(Conv2dLayer::new(in_c, width, 3, &mut rng)),
        Layer::ReLU(ReluLayer::new()),
        block(&mut rng),
        Layer::MaxPool(MaxPoolLayer::new()),
        block(&mut rng),
        Layer::MaxPool(MaxPoolLayer::new()),
        block(&mut rng),
        Layer::Gap(GapLayer::new()),
        Layer::Linear(LinearLayer::new(width, classes, &mut rng)),
    ];
    Model::new(layers, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minivgg_shapes() {
        let mut m = mini_vgg(3, 16, 5, 1);
        let x = Tensor4::zeros(2, 3, 8, 8);
        let logits = m.forward(&x);
        assert_eq!(logits.dims(), (2, 5, 1, 1));
        assert_eq!(m.classes(), 5);
    }

    #[test]
    fn miniresnet_shapes() {
        let mut m = mini_resnet(3, 16, 4, 2);
        let x = Tensor4::zeros(1, 3, 8, 8);
        let logits = m.forward(&x);
        assert_eq!(logits.dims(), (1, 4, 1, 1));
    }

    #[test]
    fn predict_returns_argmax() {
        let mut m = mini_vgg(2, 8, 3, 5);
        let x = Tensor4::from_fn(4, 2, 8, 8, |b, c, y, xx| ((b + c + y + xx) as f32 * 0.3).sin());
        let preds = m.predict(&x);
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 3));
        // Deterministic.
        assert_eq!(preds, m.predict(&x));
    }

    #[test]
    fn backward_and_step_change_output() {
        let mut m = mini_vgg(2, 8, 2, 3);
        let x = Tensor4::from_fn(2, 2, 8, 8, |b, c, y, xx| ((b + c + y + xx) as f32 * 0.5).cos());
        let l0 = m.forward(&x);
        m.backward(&l0); // gradient = logits (arbitrary non-zero)
        m.step(0.05, 0.0);
        let l1 = m.forward(&x);
        assert!(l1.max_abs_diff(&l0) > 0.0);
    }
}
