//! Procedurally generated image-classification data.
//!
//! Each class is defined by a small set of random spectral components
//! (per-channel 2-D sinusoids with fixed frequencies, phases and
//! amplitudes); a sample is the class prototype evaluated with a random
//! spatial shift plus Gaussian-ish noise. The task is easy enough for a
//! tiny CNN yet requires learning genuine spatial filters, giving the
//! quantization experiments realistic intermediate activation
//! distributions (bell-shaped with tails — what KL calibration expects).

use lowino::Tensor4;
use lowino_testkit::Rng;

/// Parameters of a synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Square image size.
    pub size: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Additive noise amplitude.
    pub noise: f32,
    /// RNG seed (fully deterministic generation).
    pub seed: u64,
}

/// A generated dataset (train + test splits, NCHW images).
pub struct Dataset {
    train_x: Tensor4,
    train_y: Vec<usize>,
    test_x: Tensor4,
    test_y: Vec<usize>,
    classes: usize,
}

struct Component {
    channel: usize,
    fy: f32,
    fx: f32,
    phase: f32,
    amp: f32,
}

impl Dataset {
    /// Generate deterministically from the spec.
    pub fn generate(spec: &SyntheticSpec) -> Self {
        assert!(spec.classes >= 2, "need at least two classes");
        let mut rng = Rng::seed_from_u64(spec.seed);
        // Class prototypes: 4 components per channel.
        let protos: Vec<Vec<Component>> = (0..spec.classes)
            .map(|_| {
                (0..spec.channels * 4)
                    .map(|i| Component {
                        channel: i % spec.channels,
                        // Low-frequency components: real CNN feature maps
                        // are spatially smooth, and the Winograd-domain
                        // quantization noise profile depends on that
                        // smoothness (white-noise activations would
                        // overstate the per-tensor F(4,3) error).
                        fy: rng.f32_range(0.5, 3.0),
                        fx: rng.f32_range(0.5, 3.0),
                        phase: rng.f32_range(0.0, std::f32::consts::TAU),
                        amp: rng.f32_range(0.4, 1.0),
                    })
                    .collect()
            })
            .collect();

        let render = |count_per_class: usize, rng: &mut Rng| {
            let total = count_per_class * spec.classes;
            let mut x = Tensor4::zeros(total, spec.channels, spec.size, spec.size);
            let mut y = Vec::with_capacity(total);
            let inv = std::f32::consts::TAU / spec.size as f32;
            for i in 0..total {
                let class = i % spec.classes;
                y.push(class);
                let shift_y: f32 = rng.f32_range(0.0, spec.size as f32);
                let shift_x: f32 = rng.f32_range(0.0, spec.size as f32);
                for comp in &protos[class] {
                    for yy in 0..spec.size {
                        for xx in 0..spec.size {
                            let v = comp.amp
                                * ((comp.fy * (yy as f32 + shift_y)
                                    + comp.fx * (xx as f32 + shift_x))
                                    * inv
                                    + comp.phase)
                                    .sin();
                            *x.at_mut(i, comp.channel, yy, xx) += v;
                        }
                    }
                }
                // Noise: sum of two uniforms, centred.
                for c in 0..spec.channels {
                    for yy in 0..spec.size {
                        for xx in 0..spec.size {
                            let n: f32 = rng.f32_range(-1.0, 1.0) + rng.f32_range(-1.0, 1.0);
                            *x.at_mut(i, c, yy, xx) += spec.noise * n;
                        }
                    }
                }
            }
            (x, y)
        };

        let (train_x, train_y) = render(spec.train_per_class, &mut rng);
        let (test_x, test_y) = render(spec.test_per_class, &mut rng);
        Self {
            train_x,
            train_y,
            test_x,
            test_y,
            classes: spec.classes,
        }
    }

    /// Training images (NCHW).
    pub fn train_x(&self) -> &Tensor4 {
        &self.train_x
    }

    /// Training labels.
    pub fn train_y(&self) -> &[usize] {
        &self.train_y
    }

    /// Test images (NCHW).
    pub fn test_x(&self) -> &Tensor4 {
        &self.test_x
    }

    /// Test labels.
    pub fn test_y(&self) -> &[usize] {
        &self.test_y
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Copy a batch of training samples by index into a new tensor.
    pub fn gather_batch(&self, indices: &[usize]) -> (Tensor4, Vec<usize>) {
        let (_, c, h, w) = self.train_x.dims();
        let mut x = Tensor4::zeros(indices.len(), c, h, w);
        let mut y = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            y.push(self.train_y[i]);
            for cc in 0..c {
                for yy in 0..h {
                    for xx in 0..w {
                        *x.at_mut(bi, cc, yy, xx) = self.train_x.at(i, cc, yy, xx);
                    }
                }
            }
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec {
            classes: 3,
            channels: 2,
            size: 6,
            train_per_class: 5,
            test_per_class: 2,
            noise: 0.05,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&spec());
        let b = Dataset::generate(&spec());
        assert_eq!(a.train_x().max_abs_diff(b.train_x()), 0.0);
        assert_eq!(a.train_y(), b.train_y());
        assert_eq!(a.test_x().max_abs_diff(b.test_x()), 0.0);
    }

    #[test]
    fn shapes_and_labels() {
        let d = Dataset::generate(&spec());
        assert_eq!(d.train_x().dims(), (15, 2, 6, 6));
        assert_eq!(d.test_x().dims(), (6, 2, 6, 6));
        assert_eq!(d.classes(), 3);
        assert!(d.train_y().iter().all(|&y| y < 3));
        // Balanced classes.
        for cls in 0..3 {
            assert_eq!(d.train_y().iter().filter(|&&y| y == cls).count(), 5);
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean images of different classes must differ far more than the
        // within-class variation (otherwise the task is unlearnable).
        let d = Dataset::generate(&spec());
        let (n, c, h, w) = d.train_x().dims();
        let mut means = vec![vec![0f32; c * h * w]; 3];
        let mut counts = [0usize; 3];
        for i in 0..n {
            let cls = d.train_y()[i];
            counts[cls] += 1;
            for (j, m) in means[cls].iter_mut().enumerate() {
                let (cc, yy, xx) = (j / (h * w), (j / w) % h, j % w);
                *m += d.train_x().at(i, cc, yy, xx);
            }
        }
        for (cls, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[cls] as f32;
            }
        }
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>().sqrt()
        };
        assert!(dist(&means[0], &means[1]) > 1.0);
        assert!(dist(&means[1], &means[2]) > 1.0);
    }

    #[test]
    fn gather_batch_matches_source() {
        let d = Dataset::generate(&spec());
        let (x, y) = d.gather_batch(&[3, 7]);
        assert_eq!(x.dims(), (2, 2, 6, 6));
        assert_eq!(y, vec![d.train_y()[3], d.train_y()[7]]);
        assert_eq!(x.at(1, 1, 2, 3), d.train_x().at(7, 1, 2, 3));
    }
}
