//! Liveness-planned arena layout for graph activations.
//!
//! The graph engine ([`crate::graph`]) runs a whole model out of **one**
//! activation arena: every intermediate tensor is a window of a single
//! allocation, and windows are re-used as soon as their tensor dies. This
//! module computes that layout. Inputs are [`SlotReq`]s — one per tensor,
//! carrying its size in `f32` elements and its *inclusive* live range in
//! op indices (`first` = the op that defines it, `last` = the last op that
//! reads it). Output is an [`ArenaPlan`]: per-tensor offsets plus the total
//! arena length.
//!
//! The planner is **first-fit over live intervals**: slots are placed in
//! request order (which the graph builder emits topologically, so earlier
//! slots are the longer-lived ones); each slot takes the lowest aligned
//! offset that does not overlap any already-placed slot whose live range
//! intersects its own. Two invariants hold by construction and are
//! property-tested in `tests/plan_prop.rs`:
//!
//! * **soundness** — while two tensors are simultaneously live, their
//!   `[offset, offset + len)` windows never intersect;
//! * **boundedness** — the arena never exceeds the sum of all (aligned)
//!   tensor sizes, i.e. planning is never worse than disjoint allocation.
//!
//! Planning is a pure function of its inputs, so re-planning the same
//! graph is deterministic — the `graph/plan` fault site is the one
//! exception: an armed [`lowino_testkit::faults::GRAPH_PLAN`] degrades the
//! plan to the no-reuse disjoint layout (offsets by prefix sum) instead of
//! failing the compile, and marks the plan [`ArenaPlan::degraded`].

use lowino_testkit::faults::GRAPH_PLAN;

/// Arena alignment in `f32` elements: 16 floats = 64 bytes, one cache
/// line, so every slot starts on the same boundary [`lowino::AlignedBuf`]
/// guarantees for the arena base.
pub const PLAN_ALIGN: usize = 16;

/// One tensor's demand on the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotReq {
    /// Size in `f32` elements (`BlockedImage::storage_len`).
    pub len: usize,
    /// First op index at which the tensor is live (its definition).
    pub first: usize,
    /// Last op index at which the tensor is live (inclusive).
    pub last: usize,
}

impl SlotReq {
    /// Do two requests' live ranges intersect?
    fn conflicts(&self, other: &SlotReq) -> bool {
        self.first <= other.last && other.first <= self.last
    }
}

/// A computed arena layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// Per-slot offset into the arena, in `f32` elements (aligned to
    /// [`PLAN_ALIGN`]), index-parallel with the request list.
    pub offsets: Vec<usize>,
    /// Total arena length in `f32` elements.
    pub total_len: usize,
    /// `true` when the `graph/plan` fault degraded this plan to the
    /// disjoint (no-reuse) layout.
    pub degraded: bool,
}

impl ArenaPlan {
    /// Arena size in bytes (the `graph/plan_bytes` trace counter value).
    pub fn bytes(&self) -> usize {
        self.total_len * core::mem::size_of::<f32>()
    }
}

/// Round `x` up to a multiple of `to`.
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// The degraded fallback: every slot disjoint, offsets by prefix sum.
fn plan_disjoint(reqs: &[SlotReq], align: usize) -> ArenaPlan {
    let mut offsets = Vec::with_capacity(reqs.len());
    let mut total = 0usize;
    for r in reqs {
        offsets.push(total);
        total += round_up(r.len, align);
    }
    ArenaPlan {
        offsets,
        total_len: total,
        degraded: true,
    }
}

/// Compute an arena layout for `reqs` with slot starts aligned to `align`
/// `f32` elements (use [`PLAN_ALIGN`]; other values serve the property
/// tests).
pub fn plan_slots(reqs: &[SlotReq], align: usize) -> ArenaPlan {
    let align = align.max(1);
    if GRAPH_PLAN.fire() {
        lowino_trace::instant("graph/plan_degraded", reqs.len() as u64);
        return plan_disjoint(reqs, align);
    }
    // (offset, aligned_len, request) of every placed slot.
    let mut placed: Vec<(usize, usize, SlotReq)> = Vec::with_capacity(reqs.len());
    let mut offsets = Vec::with_capacity(reqs.len());
    let mut total = 0usize;
    for r in reqs {
        let len = round_up(r.len, align).max(align);
        // Only live-range conflicts constrain the placement.
        let conflicts: Vec<(usize, usize)> = placed
            .iter()
            .filter(|(_, _, p)| p.conflicts(r))
            .map(|&(off, l, _)| (off, l))
            .collect();
        // First fit: the candidate starts are 0 and the end of each
        // conflicting slot; the lowest candidate clear of every conflict
        // wins. One of the candidates (max end) is always feasible.
        let mut candidates: Vec<usize> = std::iter::once(0)
            .chain(conflicts.iter().map(|&(off, l)| off + l))
            .collect();
        candidates.sort_unstable();
        let offset = candidates
            .into_iter()
            .find(|&cand| {
                conflicts
                    .iter()
                    .all(|&(off, l)| cand + len <= off || off + l <= cand)
            })
            .expect("the past-all-conflicts candidate is always feasible");
        offsets.push(offset);
        total = total.max(offset + len);
        placed.push((offset, len, *r));
    }
    ArenaPlan {
        offsets,
        total_len: total,
        degraded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_chain_uses_two_buffers() {
        // A straight-line chain v0 → v1 → v2 → v3 (each op reads the
        // previous tensor and defines the next) needs exactly two equal
        // slots: the classic ping-pong.
        let reqs: Vec<SlotReq> = (0..4)
            .map(|i| SlotReq {
                len: 100,
                first: i,
                last: (i + 1).min(3),
            })
            .collect();
        let plan = plan_slots(&reqs, 16);
        assert!(!plan.degraded);
        assert_eq!(plan.total_len, 2 * round_up(100, 16));
        assert_eq!(plan.offsets[0], plan.offsets[2]);
        assert_eq!(plan.offsets[1], plan.offsets[3]);
        assert_ne!(plan.offsets[0], plan.offsets[1]);
    }

    #[test]
    fn skip_connection_keeps_three_slots_apart() {
        // v0 stays live across the body (a residual skip): v0, v1, v2 all
        // overlap pairwise, so all three need distinct space.
        let reqs = [
            SlotReq { len: 64, first: 0, last: 2 },
            SlotReq { len: 64, first: 0, last: 1 },
            SlotReq { len: 64, first: 1, last: 2 },
        ];
        let plan = plan_slots(&reqs, 16);
        assert_eq!(plan.total_len, 3 * 64);
        let mut offs = plan.offsets.clone();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 3);
    }

    #[test]
    fn degraded_plan_is_disjoint_and_flagged() {
        GRAPH_PLAN.arm();
        let reqs: Vec<SlotReq> = (0..4)
            .map(|i| SlotReq { len: 50, first: i, last: (i + 1).min(3) })
            .collect();
        let plan = plan_slots(&reqs, 16);
        assert!(!GRAPH_PLAN.is_armed(), "fault is one-shot");
        assert!(plan.degraded);
        assert_eq!(plan.total_len, 4 * round_up(50, 16));
        for w in plan.offsets.windows(2) {
            assert!(w[0] < w[1], "disjoint layout is a strict prefix sum");
        }
        // Re-planning with the fault consumed yields the compact layout.
        let replan = plan_slots(&reqs, 16);
        assert!(!replan.degraded);
        assert!(replan.total_len < plan.total_len);
    }
}
