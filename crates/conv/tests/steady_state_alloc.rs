//! Steady-state execution audit for the single-fork-join executors:
//!
//! * after the first `execute` on a shape has grown the per-worker scratch
//!   arenas, repeated executes perform **zero heap allocations**;
//! * every executor issues exactly **one** pool fork-join per `execute`;
//! * the fused LoWino schedule is bitwise identical to the retained
//!   three-fork-join reference path.
//!
//! The allocation count comes from a counting `#[global_allocator]` that is
//! armed only around the audited region (so the test harness's own
//! allocations don't pollute the count).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lowino_conv::{
    calibrate_spatial, calibrate_winograd_domain, ConvContext, ConvExecutor, DirectInt8Conv,
    DownScaleConv, LoWinoConv, UpCastConv, WinogradF32Conv,
};
use lowino_tensor::{BlockedImage, ConvShape, Tensor4};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count heap allocations (on any thread) during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn test_image(spec: &ConvShape) -> BlockedImage {
    let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
        ((b * 41 + c * 17 + y * 5 + x * 3) as f32 * 0.23).sin()
    });
    BlockedImage::from_nchw(&input)
}

fn test_weights(spec: &ConvShape) -> Tensor4 {
    Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 11 + c * 7 + y * 3 + x) as f32 * 0.37).cos() * 0.3
    })
}

#[test]
fn lowino_steady_state_allocates_nothing_and_is_one_fork_join() {
    let spec = ConvShape::same(2, 16, 16, 12, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
    let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
    let mut out = BlockedImage::zeros(2, 16, 12, 12);

    for threads in [1, 3] {
        let mut ctx = ConvContext::new(threads);
        // Warm-up: the first execute on this shape grows the arenas.
        conv.execute(&img, &mut out, &mut ctx).unwrap();

        let before = ctx.pool.fork_joins();
        let allocs = count_allocs(|| {
            for _ in 0..3 {
                conv.execute(&img, &mut out, &mut ctx).unwrap();
            }
        });
        assert_eq!(
            ctx.pool.fork_joins() - before,
            3,
            "each execute must be exactly one fork-join (threads={threads})"
        );
        assert_eq!(
            allocs, 0,
            "steady-state execute must not touch the heap (threads={threads})"
        );
    }
}

/// The pipelined GEMM under dynamic scheduling: a blocking override small
/// enough to force several `(K_blk, C_blk)` cache blocks per task makes the
/// two `PanelScratch` packing slots actually cycle, and multiple threads
/// engage the bounded work-stealing pop path — both must stay allocation-
/// free once the warm-up execute has grown the arenas (steal queues are
/// re-seeded in place, packs are straight copies into the resident slots).
#[test]
fn pipelined_multi_block_steady_state_allocates_nothing() {
    use lowino_gemm::Blocking;
    let spec = ConvShape::same(1, 70, 130, 11, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let wino = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
    let spatial = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
    // C_p = 128, K_p = 192 → 2 C-blocks × 3 K-blocks = 6 packed blocks per
    // task: the double-buffer alternates through five hand-offs.
    let blocking = Blocking { n_blk: 8, c_blk: 64, k_blk: 64, row_blk: 4, col_blk: 2 };

    let mut lowino = LoWinoConv::new(spec, 4, &weights, wino).unwrap();
    lowino.set_blocking(blocking);
    let mut downscale = DownScaleConv::new(spec, 4, &weights, spatial).unwrap();
    downscale.set_blocking(blocking);
    let mut executors: Vec<(&str, Box<dyn ConvExecutor>)> = vec![
        ("lowino", Box::new(lowino)),
        ("downscale", Box::new(downscale)),
    ];

    let mut out = BlockedImage::zeros(1, 130, 11, 11);
    for threads in [1, 3] {
        let mut ctx = ConvContext::new(threads);
        for (name, exec) in &mut executors {
            exec.execute(&img, &mut out, &mut ctx).unwrap();
            let allocs = count_allocs(|| {
                for _ in 0..2 {
                    exec.execute(&img, &mut out, &mut ctx).unwrap();
                }
            });
            assert_eq!(
                allocs, 0,
                "{name}: pipelined steady state must not touch the heap (threads={threads})"
            );
        }
    }
}

/// Autotuner 2.0 extension of the zero-alloc invariant: the `Background`
/// lookup path (published-table probe + hot-shape counter bump) and a
/// published-winner hit must both stay heap-free in steady state — the
/// retuner's whole point is free swaps, not per-execute overhead. The
/// runtime is built without a thread (`retune: None`) so the counting
/// allocator, which counts every thread's allocations, sees only the
/// execute path; a winner is published by hand to exercise the table hit.
#[test]
fn background_lookup_and_published_hit_stay_allocation_free() {
    use lowino_gemm::{GemmShape, TunePolicy, Wisdom};
    use lowino_simd::SimdTier;

    let spec = ConvShape::same(2, 16, 16, 12, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
    let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
    let mut out = BlockedImage::zeros(2, 16, 12, 12);

    let tier = SimdTier::detect();
    let mut ctx =
        ConvContext::with_tuning(2, tier, TunePolicy::Background, Wisdom::new(), None);
    let geom = spec.tiles(4).unwrap();
    let shape = GemmShape { t: geom.t(), n: geom.total, c: spec.in_c, k: spec.out_c };

    // Warm-up: grows the arenas AND inserts the shape's hot-counter entry
    // (the only allocation the note path ever performs).
    conv.execute(&img, &mut out, &mut ctx).unwrap();

    // Steady state on the cost-model-seed path (nothing published yet).
    let allocs = count_allocs(|| {
        for _ in 0..3 {
            conv.execute(&img, &mut out, &mut ctx).unwrap();
        }
    });
    assert_eq!(allocs, 0, "Background lookup+note path must not touch the heap");

    // Publish a winner (as the retuner would) and hit the table instead.
    ctx.tune
        .shared()
        .publish(tier, &shape, lowino_gemm::Blocking::default_for(&shape));
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    let allocs = count_allocs(|| {
        for _ in 0..3 {
            conv.execute(&img, &mut out, &mut ctx).unwrap();
        }
    });
    assert_eq!(allocs, 0, "published-winner hit must not touch the heap");
}

#[test]
fn every_executor_is_one_fork_join_per_execute() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let spatial = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
    let wino = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();

    let mut executors: Vec<(&str, Box<dyn ConvExecutor>)> = vec![
        (
            "lowino",
            Box::new(LoWinoConv::new(spec, 2, &weights, wino).unwrap()),
        ),
        (
            "wino_f32",
            Box::new(WinogradF32Conv::new(spec, 2, &weights).unwrap()),
        ),
        (
            "downscale",
            Box::new(DownScaleConv::new(spec, 2, &weights, spatial).unwrap()),
        ),
        (
            "upcast",
            Box::new(UpCastConv::new(spec, 2, &weights, spatial).unwrap()),
        ),
        (
            "direct_i8",
            Box::new(DirectInt8Conv::new(spec, &weights, spatial).unwrap()),
        ),
    ];

    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    for (name, exec) in &mut executors {
        let before = ctx.pool.fork_joins();
        exec.execute(&img, &mut out, &mut ctx).unwrap();
        assert_eq!(
            ctx.pool.fork_joins() - before,
            1,
            "{name}: execute must issue exactly one pool fork-join"
        );
    }
}

#[test]
fn fused_lowino_matches_three_fork_join_bitwise() {
    // Ragged tiles, multiple channel blocks, both thread counts.
    let spec = ConvShape::same(1, 70, 66, 11, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
    for threads in [1, 2, 4] {
        let mut fused = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
        let mut legacy = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
        let mut ctx = ConvContext::new(threads);
        let mut out_fused = BlockedImage::zeros(1, 66, 11, 11);
        let mut out_legacy = BlockedImage::zeros(1, 66, 11, 11);
        fused.execute(&img, &mut out_fused, &mut ctx).unwrap();
        legacy.execute_three_fork_join(&img, &mut out_legacy, &mut ctx);
        assert_eq!(
            out_fused.to_nchw().max_abs_diff(&out_legacy.to_nchw()),
            0.0,
            "fused vs three-fork-join mismatch at threads={threads}"
        );
    }
}
