//! Fault-injection tests for the executors' recoverable error paths.
//!
//! These live in their own integration binary (their own process) because
//! the fault sites are process-global: arming `scratch/grow` here cannot
//! race with the library unit tests, which run in a different process.

use lowino_conv::{
    calibrate_spatial, calibrate_winograd_domain, ConvContext, ConvError, ConvExecutor, ExecError,
    LoWinoConv, NonFinitePolicy,
};
use lowino_tensor::{BlockedImage, ConvShape, Tensor4};
use lowino_testkit::faults::{CALIBRATE_SAMPLES, SCRATCH_GROW};

fn test_image(spec: &ConvShape) -> BlockedImage {
    let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
        ((b * 41 + c * 17 + y * 5 + x * 3) as f32 * 0.23).sin()
    });
    BlockedImage::from_nchw(&input)
}

fn test_weights(spec: &ConvShape) -> Tensor4 {
    Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 11 + c * 7 + y * 3 + x) as f32 * 0.37).cos() * 0.3
    })
}

/// A scratch-growth failure during the first execute on a shape surfaces
/// as a recoverable [`ExecError::WorkerPanic`]; the same executor, pool
/// and arena then complete the retry and match a clean run bitwise.
#[test]
fn scratch_grow_fault_is_recoverable() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();

    // Clean run for the expected output.
    let mut clean = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
    let mut ctx_clean = ConvContext::new(2);
    let mut want = BlockedImage::zeros(1, 8, 10, 10);
    clean.execute(&img, &mut want, &mut ctx_clean).unwrap();

    // Faulted run: a fresh context means the first execute must grow the
    // scratch arena, where the armed fault panics inside a phase body.
    let mut conv = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    SCRATCH_GROW.arm();
    let err = conv.execute(&img, &mut out, &mut ctx).unwrap_err();
    match &err {
        ExecError::WorkerPanic { message } => {
            assert!(
                message.contains("injected fault: scratch/grow"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(!SCRATCH_GROW.is_armed(), "fault is one-shot");
    assert_eq!(SCRATCH_GROW.hits(), 1);

    // Recovery: same executor, same pool, same arena.
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert_eq!(
        out.to_nchw().max_abs_diff(&want.to_nchw()),
        0.0,
        "retry after a scratch fault must match a clean run bitwise"
    );
}

/// The `calibrate/samples` site lets CI exercise the calibration error
/// path with healthy data; disarmed, the same samples calibrate fine.
#[test]
fn calibrate_fault_yields_calibration_error() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = test_image(&spec);
    CALIBRATE_SAMPLES.arm();
    let err = calibrate_spatial(std::slice::from_ref(&img)).unwrap_err();
    match &err {
        ConvError::Calibration(msg) => {
            assert!(msg.contains("injected fault: calibrate/samples"), "{msg}");
        }
        other => panic!("expected Calibration, got {other:?}"),
    }
    assert!(!CALIBRATE_SAMPLES.is_armed(), "fault is one-shot");
    assert!(calibrate_spatial(std::slice::from_ref(&img)).is_ok());
}

/// Mismatched tensors are rejected before any work starts — no fault
/// arming needed; this is the always-on shape guard.
#[test]
fn io_shape_mismatch_is_an_error_not_a_panic() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
    let mut conv = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
    let mut ctx = ConvContext::new(1);

    let mut wrong_out = BlockedImage::zeros(1, 8, 11, 11);
    let err = conv.execute(&img, &mut wrong_out, &mut ctx).unwrap_err();
    assert!(matches!(err, ExecError::IoShape { which: "output", .. }), "{err:?}");

    let wrong_in = BlockedImage::zeros(1, 4, 10, 10);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    let err = conv.execute(&wrong_in, &mut out, &mut ctx).unwrap_err();
    assert!(matches!(err, ExecError::IoShape { which: "input", .. }), "{err:?}");

    // The executor is still usable after rejected calls.
    conv.execute(&img, &mut out, &mut ctx).unwrap();
}

/// `NonFinitePolicy::Reject` scans the input up front and fails before any
/// work; the default `Propagate` policy lets the same input through.
#[test]
fn non_finite_policy_reject_fails_fast() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = test_image(&spec);
    let weights = test_weights(&spec);
    let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
    let mut conv = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
    let mut ctx = ConvContext::new(1);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);

    let mut poisoned = Tensor4::from_fn(1, 8, 10, 10, |_, _, _, _| 0.5);
    *poisoned.at_mut(0, 3, 4, 5) = f32::NAN;
    *poisoned.at_mut(0, 6, 0, 1) = f32::INFINITY;
    let poisoned = BlockedImage::from_nchw(&poisoned);

    ctx.non_finite = NonFinitePolicy::Reject;
    let err = conv.execute(&poisoned, &mut out, &mut ctx).unwrap_err();
    assert_eq!(err, ExecError::NonFiniteInput { count: 2 });

    // Propagate (the default) doesn't scan: the same input executes.
    ctx.non_finite = NonFinitePolicy::Propagate;
    conv.execute(&poisoned, &mut out, &mut ctx).unwrap();
}
