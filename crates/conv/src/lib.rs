//! # lowino-conv
//!
//! The convolution algorithms of the paper, all built on the same
//! substrates (`lowino-tensor`, `-simd`, `-winograd`, `-quant`, `-gemm`,
//! `-parallel`):
//!
//! | Algorithm | Paper role |
//! |---|---|
//! | [`DirectF32Conv`] | FP32 reference & §5.1 full-precision baseline |
//! | [`WinogradF32Conv`] | FP32 Winograd baseline |
//! | [`DirectInt8Conv`] | "INT8 Direct Convolution – oneDNN" baseline (Fig. 8) |
//! | [`DownScaleConv`] | the down-scaling approach (§2.3, oneDNN-style Winograd INT8) |
//! | [`UpCastConv`] | the up-casting approach (§2.3, ncnn-style INT16 Winograd) |
//! | [`LoWinoConv`] | **the paper's contribution**: Winograd-domain PTQ INT8 Winograd |
//!
//! Every executor follows the three-stage pipeline of Fig. 3 — input/filter
//! transformation ①, batched low-precision matrix multiplication ②, output
//! transformation ③ — and reports per-stage wall time ([`StageTimings`]) so
//! the Fig. 10 breakdown can be regenerated.
//!
//! Inputs and outputs use the blocked activation layout
//! ([`lowino_tensor::BlockedImage`]); weights enter as plain `K×C×r×r`
//! NCHW-style [`lowino_tensor::Tensor4`] and are re-packed offline.

pub mod algo;
pub mod calibrate;
pub mod context;
pub mod error;
pub mod filter;
pub mod scratch;
pub mod stats;
pub mod tiles;

pub use algo::direct_f32::DirectF32Conv;
pub use algo::direct_i8::DirectInt8Conv;
pub use algo::downscale::DownScaleConv;
pub use algo::lowino::LoWinoConv;
pub use algo::upcast::UpCastConv;
pub use algo::wino_f32::WinogradF32Conv;
pub use algo::{apply_post_ops, Algorithm, ConvExecutor, ConvPostOps};
pub use calibrate::{calibrate_spatial, calibrate_winograd_domain};
pub use context::{ConvContext, NonFinitePolicy};
pub use error::{ConvError, ExecError};
pub use scratch::{ScratchArena, WorkerScratch};
pub use stats::StageTimings;

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::{BlockedImage, ConvShape, Tensor4};

    /// End-to-end smoke: LoWino vs the FP32 direct reference on a small
    /// layer must agree to quantization accuracy.
    #[test]
    fn lowino_approximates_direct_f32() {
        let spec = ConvShape::same(1, 8, 8, 12, 3).validate().unwrap();
        let input = Tensor4::from_fn(1, 8, 12, 12, |_, c, y, x| {
            ((c * 31 + y * 7 + x) as f32 * 0.43).sin()
        });
        let weights = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
            ((k * 13 + c * 5 + y * 3 + x) as f32 * 0.7).cos() * 0.3
        });
        let mut ctx = ConvContext::new(1);
        let img = BlockedImage::from_nchw(&input);

        let mut reference = DirectF32Conv::new(spec, &weights).unwrap();
        let mut out_ref = BlockedImage::zeros(1, 8, 12, 12);
        reference.execute(&img, &mut out_ref, &mut ctx).unwrap();

        let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
        let mut lw = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
        let mut out = BlockedImage::zeros(1, 8, 12, 12);
        lw.execute(&img, &mut out, &mut ctx).unwrap();
        // Per-tensor F(4,3) on an 8-channel toy layer is noisy (the error
        // averages down ~1/√C on real layers); it must still be in the
        // right ballpark...
        let err = out.to_nchw().rel_l2_error(&out_ref.to_nchw());
        assert!(err < 0.30, "relative error {err}");

        // ...and the per-position granularity must be a close match even
        // at C = 8.
        let cal_pp =
            calibrate::calibrate_winograd_domain_per_position(&spec, 4, std::slice::from_ref(&img)).unwrap();
        let mut lw = LoWinoConv::new_per_position(spec, 4, &weights, &cal_pp).unwrap();
        let mut out = BlockedImage::zeros(1, 8, 12, 12);
        lw.execute(&img, &mut out, &mut ctx).unwrap();
        let err_pp = out.to_nchw().rel_l2_error(&out_ref.to_nchw());
        assert!(err_pp < 0.08, "per-position relative error {err_pp}");
        assert!(err_pp < err, "granularity must help: {err_pp} vs {err}");
    }
}
