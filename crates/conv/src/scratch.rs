//! Persistent per-worker scratch arenas.
//!
//! Every executor stage needs small thread-local working buffers (gathered
//! patches, transformed tiles, de-quantized `Z` blocks, GEMM accumulators).
//! Allocating them inside the stage closures — the pre-PR-2 design — put a
//! handful of `malloc`/`free` pairs on every fork-join of every layer. The
//! arena moves that state into [`crate::ConvContext`]: one cache-line
//! aligned slot per pool worker, grown on first use and reused across
//! stages, executes and layers. After the first `execute` on a given shape
//! the steady state performs **zero heap allocations** (asserted by the
//! `steady_state_alloc` integration test).
//!
//! Concurrency: during a fork-join, worker `w` is the only thread that
//! touches slot `w`, so the per-slot [`Mutex`] is never contended — it
//! exists to make the shared `&ScratchArena` capture safe without `unsafe`,
//! and costs one uncontended atomic per phase. `#[repr(align(64))]` keeps
//! neighbouring slots off each other's cache lines (the buffers themselves
//! are heap-allocated and 64-byte aligned via [`AlignedBuf`]).

use std::sync::{Mutex, MutexGuard};

use lowino_gemm::PanelScratch;
use lowino_tensor::AlignedBuf;
use lowino_winograd::TransformScratch;

/// The per-worker buffer set. Fields are public so a stage body can
/// destructure the guard and borrow several buffers mutably at once.
///
/// Buffer roles are by convention (sizes are whatever the last user grew
/// them to — contents are never carried between uses):
///
/// * `transform` — [`TransformScratch`] for the Winograd matrices;
/// * `patch_f` — gathered FP32 input patch / de-quantized `Z` block;
/// * `tile_f` — transformed FP32 tile / inverse-transformed output tile;
/// * `acc_f` — FP32 GEMM accumulator (the `GemmTasksF32` path);
/// * `patch_i` — gathered INT8→i32 patch (integer-transform baselines);
/// * `tile_i` — integer-transformed tile.
#[derive(Default)]
pub struct WorkerScratch {
    /// Winograd transform temporaries.
    pub transform: TransformScratch,
    /// FP32 patch-sized buffer.
    pub patch_f: AlignedBuf<f32>,
    /// FP32 tile-sized buffer.
    pub tile_f: AlignedBuf<f32>,
    /// FP32 accumulator buffer.
    pub acc_f: AlignedBuf<f32>,
    /// i32 patch-sized buffer.
    pub patch_i: AlignedBuf<i32>,
    /// i32 tile-sized buffer.
    pub tile_i: AlignedBuf<i32>,
    /// u8 tile-sized buffer (quantized transform output; 64-byte aligned
    /// so each 64-lane group can be stream-stored as one cache line).
    pub tile_u8: AlignedBuf<u8>,
    /// Double-buffered `U` packing slots for the pipelined GEMM driver
    /// (grown by `GemmTasks::run_range` on first use, then reused).
    pub gemm_pack: PanelScratch,
}

/// Record an arena growth in the trace. Buffers never shrink, so the
/// cumulative `scratch/high_water_bytes` counter *is* the arena's
/// high-water footprint across all workers; growth only happens on the
/// first execute of a new shape, so this never fires in steady state.
fn note_growth(old_len: usize, new_len: usize, elem_bytes: usize) {
    lowino_trace::counter(
        "scratch/high_water_bytes",
        ((new_len - old_len) * elem_bytes) as u64,
    );
}

/// The `scratch/grow` fault site: an armed fault panics in place of the
/// reallocation, modelling an allocation failure at the only point the
/// steady state can allocate. The panic unwinds into the pool's capture
/// (`StaticPool::run_phases_catching`) and surfaces to the caller as a
/// recoverable `ExecError::WorkerPanic`. One relaxed atomic load when
/// disarmed.
fn grow_fault_probe(new_len: usize, elem_bytes: usize) {
    if lowino_testkit::faults::SCRATCH_GROW.fire() {
        panic!(
            "injected fault: scratch/grow (realloc to {} bytes)",
            new_len * elem_bytes
        );
    }
}

/// Grow-on-demand view: returns `&mut buf[..len]`, reallocating (to the
/// next power of two, so repeated layers of mixed sizes settle quickly)
/// only when the buffer is too small. Contents are unspecified — every
/// user fully overwrites the slice it asks for.
pub fn ensure_f32(buf: &mut AlignedBuf<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        let new_len = len.next_power_of_two();
        grow_fault_probe(new_len, core::mem::size_of::<f32>());
        note_growth(buf.len(), new_len, core::mem::size_of::<f32>());
        *buf = AlignedBuf::zeroed(new_len);
    }
    &mut buf.as_mut_slice()[..len]
}

/// i32 twin of [`ensure_f32`].
pub fn ensure_i32(buf: &mut AlignedBuf<i32>, len: usize) -> &mut [i32] {
    if buf.len() < len {
        let new_len = len.next_power_of_two();
        grow_fault_probe(new_len, core::mem::size_of::<i32>());
        note_growth(buf.len(), new_len, core::mem::size_of::<i32>());
        *buf = AlignedBuf::zeroed(new_len);
    }
    &mut buf.as_mut_slice()[..len]
}

/// u8 twin of [`ensure_f32`].
pub fn ensure_u8(buf: &mut AlignedBuf<u8>, len: usize) -> &mut [u8] {
    if buf.len() < len {
        let new_len = len.next_power_of_two();
        grow_fault_probe(new_len, core::mem::size_of::<u8>());
        note_growth(buf.len(), new_len, core::mem::size_of::<u8>());
        *buf = AlignedBuf::zeroed(new_len);
    }
    &mut buf.as_mut_slice()[..len]
}

/// One arena slot, padded to a cache line so slot headers don't false-share.
#[repr(align(64))]
struct Slot(Mutex<WorkerScratch>);

/// One [`WorkerScratch`] per pool worker, addressed by the worker index the
/// pool passes to every phase body.
pub struct ScratchArena {
    slots: Box<[Slot]>,
}

impl ScratchArena {
    /// An arena with `workers` slots (must match the pool's thread count).
    ///
    /// `workers == 0` is clamped to one slot, mirroring
    /// `StaticPool::new`'s sequential-fallback clamp: a zero-thread
    /// misconfiguration degrades to single-slot operation instead of
    /// aborting the process.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            slots: (0..workers)
                .map(|_| Slot(Mutex::new(WorkerScratch::default())))
                .collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Lock worker `w`'s scratch. Uncontended on the executor path (each
    /// worker index is driven by exactly one thread per fork-join); poison
    /// is ignored because the buffers carry no invariants between uses.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn worker(&self, w: usize) -> MutexGuard<'_, WorkerScratch> {
        match self.slots[w].0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_once_then_reuses() {
        let arena = ScratchArena::new(2);
        {
            let mut ws = arena.worker(0);
            let s = ensure_f32(&mut ws.patch_f, 100);
            assert_eq!(s.len(), 100);
            s.fill(7.0);
        }
        let mut ws = arena.worker(0);
        let cap = ws.patch_f.len();
        assert!(cap >= 100);
        let ptr = ws.patch_f.as_ptr();
        // A smaller request must not shrink or move the buffer.
        let s = ensure_f32(&mut ws.patch_f, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(ws.patch_f.as_ptr(), ptr);
        assert_eq!(ws.patch_f.len(), cap);
        // A larger request grows to the next power of two.
        ensure_i32(&mut ws.patch_i, 33);
        assert_eq!(ws.patch_i.len(), 64);
    }

    #[test]
    fn slots_are_independent() {
        let arena = ScratchArena::new(3);
        assert_eq!(arena.workers(), 3);
        ensure_f32(&mut arena.worker(1).tile_f, 16).fill(1.0);
        assert_eq!(arena.worker(2).tile_f.len(), 0);
        assert_eq!(arena.worker(1).tile_f.len(), 16);
    }

    #[test]
    fn zero_workers_clamps_to_one_slot() {
        assert_eq!(ScratchArena::new(0).workers(), 1);
    }

    #[test]
    fn usable_through_shared_reference_across_threads() {
        let arena = ScratchArena::new(4);
        std::thread::scope(|scope| {
            let arena = &arena;
            for w in 0..4 {
                scope.spawn(move || {
                    let mut ws = arena.worker(w);
                    let s = ensure_f32(&mut ws.tile_f, 64);
                    s.fill(w as f32);
                });
            }
        });
        for w in 0..4 {
            assert!(arena.worker(w).tile_f.as_slice().iter().all(|&v| v == w as f32));
        }
    }
}
