//! **LoWino** — low-precision Winograd convolution with Winograd-domain
//! post-training quantization (the paper's contribution, §3–4).
//!
//! Pipeline (Fig. 3):
//!
//! 1. **Input transformation ①** — gather each `n×n×64` tile from the
//!    blocked image, transform in FP32 (`V = Bᵀ d B`), quantize *in the
//!    Winograd domain* with the calibrated `α_V` (Eq. 4), add the +128
//!    compensation, and scatter each 64-channel group as one cache line
//!    into the `V` panel with non-temporal stores (§4.2.1);
//! 2. **Batched GEMM ②** — `T` tall-and-skinny `u8×i8→i32` products with
//!    compensation seeding (§4.3);
//! 3. **Output transformation ③** — read each tile's `T×64` block
//!    contiguously from `Z`, de-quantize by `1/(α_V·α_U)` (Eq. 6),
//!    inverse-transform (`y = Aᵀ Z A`) and scatter to the blocked output.
//!
//! Unlike the down-scaling baseline, the FP32 input is loaded directly (4×
//! the bytes of an INT8 load — the §5.3 transformation-time trade-off) and
//! no precision is lost to transform-domain rescaling; unlike the
//! up-casting baseline, the multiply stage runs at full `vpdpbusd`
//! throughput.

use std::time::Instant;

use lowino_gemm::{batched_gemm_u8i8, Blocking, GemmShape, GemmTasks, UPanel, VPanel, ZPanel};
use lowino_quant::QParams;
use lowino_simd::vecf32::VecTier;
use lowino_simd::{quantize_f32_lanes_i8, store::stream_fence, stream_store_u8_64};
use lowino_tensor::{BlockedImage, ConvShape, Tensor4, TileGeometry, LANES};
use lowino_winograd::TileTransformer;

use crate::algo::{check_io, Algorithm, ConvExecutor, ConvPostOps};
use crate::context::{ConvContext, NonFinitePolicy};
use crate::error::{ConvError, ExecError};
use crate::filter::{pack_filters_lowino, pack_filters_lowino_per_position};
use crate::scratch::{ensure_f32, ensure_u8, ScratchArena, WorkerScratch};
use crate::stats::StageTimings;
use crate::tiles::{gather_patch, scatter_output_tile, tile_coords, tile_origin};

/// The LoWino executor.
pub struct LoWinoConv {
    spec: ConvShape,
    geom: TileGeometry,
    tt: TileTransformer,
    u_panel: UPanel,
    /// Input scale per tile position (a per-tensor scale is broadcast).
    alpha_v: Vec<f32>,
    /// Filter scale per tile position.
    alpha_u: Vec<f32>,
    /// De-quantization factors `1/(α_V[t]·α_U[t])`.
    inv_alpha: Vec<f32>,
    per_position: bool,
    v_panel: VPanel,
    z_panel: ZPanel,
    blocking_override: Option<Blocking>,
}

impl LoWinoConv {
    /// Plan a LoWino convolution for `F(m×m, r×r)`.
    ///
    /// `input_scale` is the Winograd-domain activation scale from
    /// [`crate::calibrate_winograd_domain`] (or any externally chosen
    /// `α_V`). Filters are transformed, quantized and interleaved here —
    /// offline, exactly once.
    pub fn new(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        input_scale: QParams,
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let geom = spec.tiles(m)?;
        let tt = TileTransformer::new(m, spec.r)?;
        let (u_panel, alpha_u) = pack_filters_lowino(&spec, &geom, &tt, weights)?;
        let t_count = geom.t();
        Ok(Self::assemble(
            spec,
            geom,
            tt,
            u_panel,
            vec![input_scale.alpha; t_count],
            vec![alpha_u.alpha; t_count],
            false,
        ))
    }

    /// Plan with **per-tile-position** scales (the scale-granularity
    /// extension; required for `m = 6`). `input_scales` comes from
    /// [`crate::calibrate::calibrate_winograd_domain_per_position`] and
    /// must have exactly `(m+r−1)²` entries.
    pub fn new_per_position(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        input_scales: &[QParams],
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let geom = spec.tiles(m)?;
        let t_count = geom.t();
        if input_scales.len() != t_count {
            return Err(ConvError::Calibration(format!(
                "expected {t_count} per-position scales, got {}",
                input_scales.len()
            )));
        }
        let tt = TileTransformer::new(m, spec.r)?;
        let (u_panel, alpha_u) = pack_filters_lowino_per_position(&spec, &geom, &tt, weights)?;
        Ok(Self::assemble(
            spec,
            geom,
            tt,
            u_panel,
            input_scales.iter().map(|q| q.alpha).collect(),
            alpha_u.iter().map(|q| q.alpha).collect(),
            true,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        spec: ConvShape,
        geom: TileGeometry,
        tt: TileTransformer,
        u_panel: UPanel,
        alpha_v: Vec<f32>,
        alpha_u: Vec<f32>,
        per_position: bool,
    ) -> Self {
        let t_count = geom.t();
        let inv_alpha = (0..t_count)
            .map(|t| 1.0 / (alpha_v[t] * alpha_u[t]))
            .collect();
        Self {
            spec,
            geom,
            tt,
            u_panel,
            alpha_v,
            alpha_u,
            inv_alpha,
            per_position,
            v_panel: VPanel::new(t_count, geom.total, spec.in_c),
            z_panel: ZPanel::new(t_count, geom.total, spec.out_c),
            blocking_override: None,
        }
    }

    /// Whether per-tile-position scales are in use.
    pub fn is_per_position(&self) -> bool {
        self.per_position
    }

    /// Override the GEMM blocking (wisdom/tuner integration and the
    /// blocking ablation bench).
    pub fn set_blocking(&mut self, b: Blocking) {
        self.blocking_override = Some(b);
    }

    /// The GEMM shape of stage ② (for tuning).
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape {
            t: self.geom.t(),
            n: self.geom.total,
            c: self.spec.in_c,
            k: self.spec.out_c,
        }
    }

    /// The Winograd-domain scales `(α_V[t], α_U[t])` — constant vectors
    /// when planned per-tensor.
    pub fn scales(&self) -> (&[f32], &[f32]) {
        (&self.alpha_v, &self.alpha_u)
    }

    /// Tile geometry.
    pub fn geometry(&self) -> &TileGeometry {
        &self.geom
    }

    /// The pre-PR-2 execution schedule: three separate pool fork-joins
    /// (one per stage) with per-call scratch allocations inside the stage
    /// closures. Kept verbatim as the reference point for the fork-join
    /// benchmark and the fused-equivalence tests; [`ConvExecutor::execute`]
    /// is the production single-fork-join path.
    pub fn execute_three_fork_join(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> StageTimings {
        check_io(&self.spec, input, output, NonFinitePolicy::Propagate)
            .expect("io mismatch on the legacy reference path");
        let mut timings = StageTimings::default();
        let spec = self.spec;
        let geom = self.geom;
        let (n, m, t_count) = (geom.n, geom.m, geom.t());
        let tt = &self.tt;
        let tier = ctx.tier;
        let alpha_v: &[f32] = &self.alpha_v;

        // -- Stage ①: input transformation + Winograd-domain quantization.
        let start = Instant::now();
        let vp: &VPanel = &self.v_panel;
        let c_blocks = input.c_blocks();
        let tasks = c_blocks * geom.total;
        ctx.pool.run(tasks, |_, range| {
            let mut scratch = tt.make_scratch(LANES);
            let mut patch = vec![0f32; n * n * LANES];
            let mut v = vec![0f32; n * n * LANES];
            let mut q = [0u8; LANES];
            for task in range {
                let cb = task / geom.total;
                let tile = task % geom.total;
                let (b, ty, tx) = tile_coords(&geom, tile);
                let (y0, x0) = tile_origin(&spec, &geom, ty, tx);
                gather_patch(input, b, cb, y0, x0, n, &mut patch);
                tt.input_tile_f32(&patch, &mut v, &mut scratch);
                for t in 0..t_count {
                    quantize_f32_lanes_i8(&v[t * LANES..(t + 1) * LANES], alpha_v[t], true, &mut q);
                    // SAFETY: each (t, tile, cb) cache line is written by
                    // exactly one task; rows are 64-byte aligned.
                    unsafe {
                        let dst = vp.row_ptr_shared(t, tile).add(cb * LANES);
                        let dst = core::slice::from_raw_parts_mut(dst, LANES);
                        stream_store_u8_64(tier, dst, &q);
                    }
                }
            }
            stream_fence();
        });
        timings.input_transform = start.elapsed();

        // -- Stage ②: batched low-precision GEMM.
        let start = Instant::now();
        let shape = self.gemm_shape();
        let blocking = ctx.gemm_blocking(&shape, self.blocking_override);
        batched_gemm_u8i8(
            tier,
            &shape,
            &blocking,
            &self.v_panel,
            &self.u_panel,
            &mut self.z_panel,
            &mut ctx.pool,
        );
        timings.gemm = start.elapsed();

        // -- Stage ③: de-quantize + output transformation.
        let start = Instant::now();
        let inv_alpha: &[f32] = &self.inv_alpha;
        let zp: &ZPanel = &self.z_panel;
        let out_ref: &BlockedImage = output;
        let k_blocks = output.c_blocks();
        let tasks = k_blocks * geom.total;
        ctx.pool.run(tasks, |_, range| {
            let mut scratch = tt.make_scratch(LANES);
            let mut zf = vec![0f32; t_count * LANES];
            let mut y = vec![0f32; m * m * LANES];
            for task in range {
                let kg = task / geom.total;
                let tile = task % geom.total;
                let (b, ty, tx) = tile_coords(&geom, tile);
                let block = zp.tile_block(kg, tile);
                for t in 0..t_count {
                    lowino_simd::dequantize_i32_lanes(
                        &block[t * LANES..(t + 1) * LANES],
                        inv_alpha[t],
                        &mut zf[t * LANES..(t + 1) * LANES],
                    );
                }
                tt.output_tile_f32(&zf, &mut y, &mut scratch);
                // SAFETY: output tiles never overlap; one task per tile.
                unsafe {
                    scatter_output_tile(out_ref, b, kg, ty * m, tx * m, m, &y);
                }
            }
        });
        timings.output_transform = start.elapsed();
        timings
    }

    /// The fused single-fork-join body shared by [`ConvExecutor::execute`]
    /// (`post` empty) and [`ConvExecutor::execute_post`]: phase ③ threads
    /// the per-destination post-ops into the output-transform tape's row
    /// pass, so bias/residual/ReLU happen in-register between the inverse
    /// transform and the one store of each output element.
    fn execute_impl(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        post: &ConvPostOps<'_>,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        if let Some(bias) = post.bias {
            assert!(
                bias.len() >= output.c_blocks() * LANES,
                "blocked bias too short for {} channel groups",
                output.c_blocks()
            );
        }
        if let Some(res) = post.residual {
            assert_eq!(res.dims(), output.dims(), "residual dims mismatch");
        }
        let spec = self.spec;
        let geom = self.geom;
        let (n, m, t_count) = (geom.n, geom.m, geom.t());
        let tt = &self.tt;
        let alpha_v: &[f32] = &self.alpha_v;
        let inv_alpha: &[f32] = &self.inv_alpha;

        // Resolve stage ②'s blocking (published winner → override → seed)
        // before splitting the context.
        let shape = GemmShape {
            t: t_count,
            n: geom.total,
            c: spec.in_c,
            k: spec.out_c,
        };
        let blocking = ctx.gemm_blocking(&shape, self.blocking_override);

        // Split the context so the pool (`&mut`) and the shared arena can
        // be used simultaneously.
        let ConvContext {
            pool,
            tier,
            scratch,
            ..
        } = ctx;
        let tier = *tier;
        let vt = VecTier::for_simd(tier);
        let scratch: &ScratchArena = scratch;

        // Plan stage ② up front; the plan's exclusive borrow of `Z` lives
        // through the whole fork-join (phase ③ reads it via `z()`).
        let vp: &VPanel = &self.v_panel;
        let gemm = GemmTasks::plan(
            tier,
            &shape,
            &blocking,
            &self.v_panel,
            &self.u_panel,
            &mut self.z_panel,
        );

        let c_blocks = input.c_blocks();
        let k_blocks = output.c_blocks();
        let out_ref: &BlockedImage = output;
        let totals = [
            c_blocks * geom.total,
            gemm.total(),
            k_blocks * geom.total,
        ];
        let times = pool.run_phases_catching(&totals, |worker, phase, range| match phase {
            // -- Phase ①: compiled input transform with the quantize
            // epilogue fused into the row pass, then a stream-scatter of
            // each 64-channel cache line into the V panel.
            0 => {
                let _span = lowino_trace::span("lowino/input_transform");
                // One gate load per phase body; saturation totals accumulate
                // locally and flush as a single counter add per worker.
                let tracing = lowino_trace::enabled();
                let mut saturated = 0u64;
                let mut values = 0u64;
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform,
                    patch_f,
                    tile_u8,
                    ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let patch = ensure_f32(patch_f, n * n * LANES);
                let q_tile = ensure_u8(tile_u8, n * n * LANES);
                for task in range {
                    let cb = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let (y0, x0) = tile_origin(&spec, &geom, ty, tx);
                    gather_patch(input, b, cb, y0, x0, n, patch);
                    tt.input_tile_quantized(vt, patch, alpha_v, true, q_tile, transform);
                    if tracing {
                        saturated += lowino_quant::count_saturated_u8(&q_tile[..t_count * LANES]);
                        values += (t_count * LANES) as u64;
                    }
                    for t in 0..t_count {
                        let line: &[u8; LANES] =
                            q_tile[t * LANES..(t + 1) * LANES].try_into().unwrap();
                        // SAFETY: each (t, tile, cb) cache line is written by
                        // exactly one task; rows are 64-byte aligned.
                        unsafe {
                            let dst = vp.row_ptr_shared(t, tile).add(cb * LANES);
                            let dst = core::slice::from_raw_parts_mut(dst, LANES);
                            stream_store_u8_64(tier, dst, line);
                        }
                    }
                }
                if tracing {
                    lowino_trace::counter("quant/saturated", saturated);
                    lowino_trace::counter("quant/values", values);
                }
                // Drain the non-temporal stores before the phase barrier —
                // the GEMM phase reads V from other threads.
                stream_fence();
            }
            // -- Phase ②: batched low-precision GEMM, pipelined through
            // the worker's double-buffered packing scratch.
            1 => {
                let _span = lowino_trace::span("lowino/gemm");
                let mut ws = scratch.worker(worker);
                gemm.run_range(range, &mut ws.gemm_pack);
            }
            // -- Phase ③: compiled output transform consuming the raw i32
            // Z block, dequantization fused into the column-pass loads and
            // the post-op epilogue (bias / residual tile / ReLU) fused
            // into the row-pass stores.
            _ => {
                let _span = lowino_trace::span("lowino/output_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform,
                    tile_f,
                    patch_f,
                    ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let y = ensure_f32(tile_f, m * m * LANES);
                // `patch_f` is free in phase ③ — it becomes the gathered
                // residual tile (clipped slots read zeros and are never
                // scattered, so their epilogue results are discarded).
                let mut res_tile = post
                    .residual
                    .map(|_| ensure_f32(patch_f, m * m * LANES));
                for task in range {
                    let kg = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let block = gemm.z().tile_block(kg, tile);
                    if let (Some(res), Some(rt)) = (post.residual, res_tile.as_deref_mut()) {
                        gather_patch(res, b, kg, (ty * m) as isize, (tx * m) as isize, m, rt);
                    }
                    let tape_post = lowino_winograd::TapePostOps {
                        bias: post.bias.map(|bb| &bb[kg * LANES..(kg + 1) * LANES]),
                        residual: res_tile.as_deref().map(|rt| (rt, 0, LANES)),
                        relu: post.relu,
                    };
                    tt.output_tile_dequantized_post(
                        vt, block, inv_alpha, 1, tape_post, y, transform,
                    );
                    // SAFETY: output tiles never overlap; one task per tile.
                    unsafe {
                        scatter_output_tile(out_ref, b, kg, ty * m, tx * m, m, y);
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: times[0],
            gemm: times[1],
            output_transform: times[2],
        })
    }
}

impl ConvExecutor for LoWinoConv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::LoWino { m: self.geom.m }
    }

    /// The fused single-fork-join schedule (paper §4.4): all three pipeline
    /// stages run inside **one** pool job, separated by in-pool barriers,
    /// with working buffers drawn from the context's persistent per-worker
    /// [`ScratchArena`]. Transforms run on the **compiled codelet tapes**
    /// with fused epilogues: phase ① quantizes `V` in-register during the
    /// row pass (the f32 `V` tile is never materialized) and phase ③ folds
    /// the `1/(α_V·α_U)` dequantization into the column-pass loads of the
    /// raw i32 `Z` block. Task decomposition and per-lane arithmetic are
    /// identical to the interpreted
    /// [`LoWinoConv::execute_three_fork_join`], so outputs are bitwise
    /// identical (the equivalence test below is the end-to-end
    /// compiled-vs-interpreted oracle check).
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        self.execute_impl(input, output, &ConvPostOps::default(), ctx)
    }

    /// Fused override of the default execute-then-apply path: the post-ops
    /// ride the phase-③ tape epilogue (see [`Self::execute_impl`]), so the
    /// activations are touched exactly once. Bitwise identical to the
    /// default implementation ([`crate::algo::apply_post_ops`]) because
    /// `((y + bias) + res).max(0.0)` is evaluated in the same order with
    /// the same IEEE ops.
    fn execute_post(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        post: &ConvPostOps<'_>,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        self.execute_impl(input, output, post, ctx)
    }

    /// Saturation of the last execute's Winograd-domain quantized `V`
    /// panel. Padding channels are zero bytes, which the compensated-u8
    /// counter ignores, so scanning full padded rows is exact; `total`
    /// counts only the real `T·N·C` values.
    fn saturation(&self) -> Option<(u64, u64)> {
        let (t, n, c, _) = self.v_panel.dims();
        let mut sat = 0u64;
        for ti in 0..t {
            for ni in 0..n {
                sat += lowino_quant::count_saturated_u8(self.v_panel.row(ti, ni));
            }
        }
        Some((sat, (t * n * c) as u64))
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        // Qualified call: the inherent method shadows the trait's.
        Some(LoWinoConv::gemm_shape(self))
    }

    fn set_blocking(&mut self, b: Blocking) {
        LoWinoConv::set_blocking(self, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::direct_f32::reference_conv_nchw;
    use crate::calibrate::calibrate_winograd_domain;

    fn run_case(spec: ConvShape, m: usize, threads: usize) -> f64 {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 131 + c * 31 + y * 7 + x) as f32 * 0.29).sin() * 1.5
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 17 + c * 5 + y * 3 + x) as f32 * 0.53).cos() * 0.25
        });
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_winograd_domain(&spec, m, std::slice::from_ref(&img)).unwrap();
        let mut conv = LoWinoConv::new(spec, m, &weights, cal).unwrap();
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(threads);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        out.to_nchw().rel_l2_error(&want)
    }

    #[test]
    fn f2_accuracy_small_layer() {
        let err = run_case(ConvShape::same(1, 8, 8, 10, 3), 2, 1);
        assert!(err < 0.03, "rel error {err}");
    }

    #[test]
    fn f4_accuracy_small_layer() {
        // Quantization noise on an 8-16 channel toy layer; real layers
        // (C >= 128) average the error down well below this.
        let err = run_case(ConvShape::same(2, 16, 16, 12, 3), 4, 2);
        assert!(err < 0.06, "rel error {err}");
    }

    fn run_case_per_position(spec: ConvShape, m: usize) -> f64 {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 131 + c * 31 + y * 7 + x) as f32 * 0.29).sin() * 1.5
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 17 + c * 5 + y * 3 + x) as f32 * 0.53).cos() * 0.25
        });
        let want = crate::algo::direct_f32::reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let cal =
            crate::calibrate::calibrate_winograd_domain_per_position(&spec, m, std::slice::from_ref(&img))
                .unwrap();
        let mut conv = LoWinoConv::new_per_position(spec, m, &weights, &cal).unwrap();
        assert!(conv.is_per_position());
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(1);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        out.to_nchw().rel_l2_error(&want)
    }

    #[test]
    fn f6_per_position_scales_make_large_tiles_usable() {
        // Per-tensor scales cannot span the cross-position magnitude
        // disparity of F(6,3) (the quiet central positions quantize to
        // ~nothing); per-position scales — the granularity extension —
        // recover the accuracy. This is the scale-granularity ablation.
        let spec = ConvShape::same(1, 8, 8, 14, 3);
        let per_tensor = run_case(spec, 6, 1);
        let per_position = run_case_per_position(spec, 6);
        assert!(
            per_position < 0.08,
            "per-position rel error {per_position}"
        );
        assert!(
            per_position < per_tensor / 3.0,
            "per-position {per_position} vs per-tensor {per_tensor}"
        );
    }

    #[test]
    fn f4_per_position_no_worse_than_per_tensor() {
        let spec = ConvShape::same(1, 16, 16, 12, 3);
        let pt = run_case(spec, 4, 1);
        let pp = run_case_per_position(spec, 4);
        assert!(pp <= pt * 1.5, "pp={pp} pt={pt}");
    }

    #[test]
    fn per_position_scale_count_validated() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let weights = Tensor4::zeros(8, 8, 3, 3);
        let err = LoWinoConv::new_per_position(spec, 2, &weights, &[QParams::UNIT; 3]);
        assert!(matches!(err, Err(ConvError::Calibration(_))));
    }

    #[test]
    fn ragged_tiles_and_many_channels() {
        // H' = 11 not divisible by m = 4; C crosses a 64 block.
        let err = run_case(ConvShape::same(1, 70, 66, 11, 3), 4, 2);
        assert!(err < 0.04, "rel error {err}");
    }

    #[test]
    fn multi_thread_matches_single_thread() {
        let spec = ConvShape::same(2, 8, 8, 10, 3).validate().unwrap();
        let input = Tensor4::from_fn(2, 8, 10, 10, |b, c, y, x| {
            ((b + c * 3 + y * 5 + x * 7) as f32 * 0.37).sin()
        });
        let weights = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
            ((k + c + y + x) as f32 * 0.41).cos() * 0.3
        });
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
        let mut outs = Vec::new();
        for threads in [1, 3] {
            let mut conv = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
            let mut out = BlockedImage::zeros(2, 8, 10, 10);
            let mut ctx = ConvContext::new(threads);
            conv.execute(&img, &mut out, &mut ctx).unwrap();
            outs.push(out.to_nchw());
        }
        assert_eq!(outs[0].max_abs_diff(&outs[1]), 0.0);
    }

    #[test]
    fn blocking_override_is_used_and_equivalent() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let input = Tensor4::from_fn(1, 8, 8, 8, |_, c, y, x| ((c + y + x) as f32 * 0.3).sin());
        let weights = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
            ((k * 2 + c + y + x) as f32 * 0.5).cos() * 0.2
        });
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
        let mut a = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
        let mut b = LoWinoConv::new(spec, 2, &weights, cal).unwrap();
        b.set_blocking(Blocking {
            n_blk: 4,
            c_blk: 4,
            k_blk: 64,
            row_blk: 2,
            col_blk: 1,
        });
        let mut ctx = ConvContext::new(1);
        let mut out_a = BlockedImage::zeros(1, 8, 8, 8);
        let mut out_b = BlockedImage::zeros(1, 8, 8, 8);
        a.execute(&img, &mut out_a, &mut ctx).unwrap();
        b.execute(&img, &mut out_b, &mut ctx).unwrap();
        assert_eq!(out_a.to_nchw().max_abs_diff(&out_b.to_nchw()), 0.0);
    }

    #[test]
    fn fused_is_one_fork_join_and_matches_three_fork_join() {
        let spec = ConvShape::same(2, 8, 16, 11, 3).validate().unwrap();
        let input = Tensor4::from_fn(2, 8, 11, 11, |b, c, y, x| {
            ((b * 3 + c * 7 + y * 11 + x * 13) as f32 * 0.31).sin()
        });
        let weights = Tensor4::from_fn(16, 8, 3, 3, |k, c, y, x| {
            ((k + c * 2 + y + x) as f32 * 0.43).cos() * 0.3
        });
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
        for threads in [1, 3] {
            let mut fused = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            let mut legacy = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            let mut ctx = ConvContext::new(threads);
            let mut out_fused = BlockedImage::zeros(2, 16, 11, 11);
            let mut out_legacy = BlockedImage::zeros(2, 16, 11, 11);
            let before = ctx.pool.fork_joins();
            fused.execute(&img, &mut out_fused, &mut ctx).unwrap();
            assert_eq!(
                ctx.pool.fork_joins() - before,
                1,
                "fused execute must be exactly one fork-join (threads={threads})"
            );
            legacy.execute_three_fork_join(&img, &mut out_legacy, &mut ctx);
            assert!(
                ctx.pool.fork_joins() - before > 1,
                "legacy path must fork-join per stage"
            );
            assert_eq!(
                out_fused.to_nchw().max_abs_diff(&out_legacy.to_nchw()),
                0.0,
                "fused and three-fork-join outputs must be bitwise identical (threads={threads})"
            );
        }
    }

    #[test]
    fn fused_post_ops_match_unfused_oracle_bitwise() {
        // Fused phase-③ epilogue vs execute-then-apply_post_ops (the
        // default trait path) — must agree bitwise for every post-op
        // combination, including ragged tiles (H' = 11, m = 4).
        use crate::algo::apply_post_ops;
        let spec = ConvShape::same(2, 8, 16, 11, 3).validate().unwrap();
        let input = Tensor4::from_fn(2, 8, 11, 11, |b, c, y, x| {
            ((b * 3 + c * 7 + y * 11 + x * 13) as f32 * 0.31).sin()
        });
        let weights = Tensor4::from_fn(16, 8, 3, 3, |k, c, y, x| {
            ((k + c * 2 + y + x) as f32 * 0.43).cos() * 0.3
        });
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&img)).unwrap();
        let k_blocks = 1usize; // 16 channels
        let mut bias = vec![0.0f32; k_blocks * lowino_tensor::LANES];
        for (k, b) in bias.iter_mut().enumerate().take(16) {
            *b = (k as f32 * 0.37).sin() - 0.2;
        }
        let res_t = Tensor4::from_fn(2, 16, 11, 11, |b, c, y, x| {
            ((b + c * 5 + y * 3 + x * 2) as f32 * 0.19).cos() * 0.8
        });
        let res = BlockedImage::from_nchw(&res_t);
        for (use_bias, use_res, relu) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, true),
        ] {
            let post = ConvPostOps {
                bias: use_bias.then_some(bias.as_slice()),
                residual: use_res.then_some(&res),
                relu,
            };
            let mut ctx = ConvContext::new(2);
            let mut fused = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            let mut out_fused = BlockedImage::zeros(2, 16, 11, 11);
            fused.execute_post(&img, &mut out_fused, &post, &mut ctx).unwrap();
            // Oracle: plain execute, then the reference elementwise pass.
            let mut plain = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            let mut out_plain = BlockedImage::zeros(2, 16, 11, 11);
            plain.execute(&img, &mut out_plain, &mut ctx).unwrap();
            apply_post_ops(&mut out_plain, &post);
            let got: Vec<u32> = out_fused.data().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = out_plain.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, want,
                "bias={use_bias} res={use_res} relu={relu}"
            );
        }
    }

    #[test]
    fn io_mismatch_panics() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let weights = Tensor4::zeros(8, 8, 3, 3);
        let mut conv = LoWinoConv::new(spec, 2, &weights, QParams::UNIT).unwrap();
        let img = BlockedImage::zeros(1, 8, 9, 9); // wrong H/W
        let mut out = BlockedImage::zeros(1, 8, 8, 8);
        let mut ctx = ConvContext::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conv.execute(&img, &mut out, &mut ctx).unwrap();
        }));
        assert!(result.is_err());
    }
}
