//! The convolution algorithm implementations.

pub mod direct_f32;
pub mod direct_i8;
pub mod downscale;
pub mod lowino;
pub mod upcast;
pub mod wino_f32;

use lowino_tensor::{BlockedImage, ConvShape, LANES};

use crate::context::{ConvContext, NonFinitePolicy};
use crate::error::ExecError;
use crate::stats::StageTimings;

/// Per-destination post-ops applied to a convolution's output — the graph
/// engine's bias / skip-connection add / ReLU, folded into the layer so no
/// separate elementwise pass over the activations is needed.
///
/// The contract, per output element (in this exact order and spelling, the
/// bitwise bar every implementation — fused or not — must meet):
///
/// ```text
/// v = conv_output
/// v = v + bias[k]        (when bias is set; k = output channel)
/// v = v + residual[...]  (when residual is set; same position)
/// v = max(v, 0.0)        (when relu; maxps semantics: v > 0.0 ? v : 0.0)
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvPostOps<'a> {
    /// Per-output-channel bias in the blocked layout: at least
    /// `k_blocks·64` values, zero-padded past `out_c` so padding lanes stay
    /// zero. Lane `l` of channel group `kg` gains `bias[kg·64 + l]`.
    pub bias: Option<&'a [f32]>,
    /// Skip-connection image added element-wise; must have exactly the
    /// output's dims (padding lanes must be zero, as every producer in the
    /// blocked pipeline guarantees).
    pub residual: Option<&'a BlockedImage>,
    /// Apply `max(·, 0.0)` last.
    pub relu: bool,
}

impl ConvPostOps<'_> {
    /// True when no post-op is requested (`execute_post` ≡ `execute`).
    pub fn is_empty(&self) -> bool {
        self.bias.is_none() && self.residual.is_none() && !self.relu
    }
}

/// Reference application of [`ConvPostOps`] as a separate elementwise pass
/// — the oracle the fused epilogues are tested against, and the default
/// path for executors that don't fuse.
///
/// # Panics
///
/// Panics when `bias` is shorter than `k_blocks·64` or `residual` dims
/// don't match the output.
pub fn apply_post_ops(output: &mut BlockedImage, post: &ConvPostOps<'_>) {
    if post.is_empty() {
        return;
    }
    let (batch, _, h, w) = output.dims();
    let k_blocks = output.c_blocks();
    if let Some(bias) = post.bias {
        assert!(
            bias.len() >= k_blocks * LANES,
            "blocked bias too short: {} < {}",
            bias.len(),
            k_blocks * LANES
        );
    }
    if let Some(res) = post.residual {
        assert_eq!(res.dims(), output.dims(), "residual dims mismatch");
    }
    for b in 0..batch {
        for kg in 0..k_blocks {
            for y in 0..h {
                for x in 0..w {
                    for l in 0..LANES {
                        let mut v = output.lanes(b, kg, y, x)[l];
                        if let Some(bias) = post.bias {
                            v += bias[kg * LANES + l];
                        }
                        if let Some(res) = post.residual {
                            v += res.lanes(b, kg, y, x)[l];
                        }
                        if post.relu {
                            v = if v > 0.0 { v } else { 0.0 };
                        }
                        output.lanes_mut(b, kg, y, x)[l] = v;
                    }
                }
            }
        }
    }
}

/// Algorithm identifiers (the paper's comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// FP32 direct convolution (reference / §5.1 baseline).
    DirectF32,
    /// INT8 direct convolution (im2col + VNNI GEMM; "oneDNN direct").
    DirectInt8,
    /// FP32 Winograd `F(m×m, r×r)`.
    WinogradF32 {
        /// Output tile size `m`.
        m: usize,
    },
    /// LoWino: Winograd-domain PTQ INT8 Winograd (the paper's approach).
    LoWino {
        /// Output tile size `m`.
        m: usize,
    },
    /// Down-scaling INT8 Winograd (oneDNN-style baseline, §2.3).
    DownScale {
        /// Output tile size `m`.
        m: usize,
    },
    /// Up-casting INT16 Winograd (ncnn-style baseline, §2.3).
    UpCast {
        /// Output tile size `m`.
        m: usize,
    },
}

impl Algorithm {
    /// Human-readable name used in harness output.
    pub fn name(&self) -> String {
        match self {
            Algorithm::DirectF32 => "direct-f32".into(),
            Algorithm::DirectInt8 => "direct-int8".into(),
            Algorithm::WinogradF32 { m } => format!("winograd-f32 F({m}x{m},3x3)"),
            Algorithm::LoWino { m } => format!("lowino F({m}x{m},3x3)"),
            Algorithm::DownScale { m } => format!("downscale F({m}x{m},3x3)"),
            Algorithm::UpCast { m } => format!("upcast F({m}x{m},3x3)"),
        }
    }

    /// The Winograd tile size, if this is a Winograd algorithm.
    pub fn tile_m(&self) -> Option<usize> {
        match self {
            Algorithm::WinogradF32 { m }
            | Algorithm::LoWino { m }
            | Algorithm::DownScale { m }
            | Algorithm::UpCast { m } => Some(*m),
            _ => None,
        }
    }

    /// Whether the algorithm needs a spatial-domain input scale.
    pub fn needs_spatial_scale(&self) -> bool {
        matches!(
            self,
            Algorithm::DirectInt8 | Algorithm::DownScale { .. } | Algorithm::UpCast { .. }
        )
    }

    /// Whether the algorithm needs a Winograd-domain input scale (LoWino).
    pub fn needs_winograd_scale(&self) -> bool {
        matches!(self, Algorithm::LoWino { .. })
    }
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A prepared convolution executor: weights packed, workspaces allocated;
/// `execute` runs the layer on a batch and reports per-stage timings.
pub trait ConvExecutor {
    /// The layer specification this executor was planned for.
    fn spec(&self) -> &ConvShape;

    /// Which algorithm this executor implements.
    fn algorithm(&self) -> Algorithm;

    /// Run the convolution. `input` must match the spec's `(B, C, H, W)`;
    /// `output` must be pre-allocated as `(B, K, H', W')`.
    ///
    /// Every failure is recoverable: mismatched tensors and rejected
    /// non-finite inputs ([`ExecError::IoShape`] /
    /// [`ExecError::NonFiniteInput`]) are detected before any work starts,
    /// and a panic inside the fork-join surfaces as
    /// [`ExecError::WorkerPanic`] with the pool, scratch and executor all
    /// still usable (the output buffer contents are then unspecified).
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError>;

    /// [`Self::execute`] with [`ConvPostOps`] applied to the output.
    ///
    /// The default implementation runs the plain convolution and then
    /// [`apply_post_ops`] as a separate pass; executors with fused
    /// epilogues (LoWino's output-transform tape) override this to apply
    /// the post-ops in-register before the output store. Both must meet
    /// the bitwise contract documented on [`ConvPostOps`], so the
    /// `ResilientConv` demotion ladder can swap implementations freely.
    fn execute_post(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        post: &ConvPostOps<'_>,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        let timings = self.execute(input, output, ctx)?;
        apply_post_ops(output, post);
        Ok(timings)
    }

    /// Post-execute numeric-health signal: `(saturated, total)` counts of
    /// quantized intermediate values from the last `execute`, if this
    /// algorithm quantizes. `None` for full-precision executors.
    ///
    /// A high saturated/total ratio means the calibrated scales no longer
    /// fit the live data distribution — the signal `ResilientConv` uses to
    /// demote to a higher-precision algorithm.
    fn saturation(&self) -> Option<(u64, u64)> {
        None
    }

    /// The stage-② GEMM shape this executor runs, when it is GEMM-backed
    /// and open to tuner seeding. `None` (the default) means "nothing to
    /// seed" — true for direct/f32 executors and for `DownScaleConv`,
    /// whose blocking deliberately models oneDNN's partition design.
    fn gemm_shape(&self) -> Option<lowino_gemm::GemmShape> {
        None
    }

    /// Install a tuner-chosen blocking for the stage-② GEMM. Executors
    /// that report a shape from [`Self::gemm_shape`] accept the seed;
    /// everyone else ignores it.
    fn set_blocking(&mut self, _b: lowino_gemm::Blocking) {}
}

/// Shared input/output validation for all executors: dimension check plus
/// the context's non-finite input policy.
pub(crate) fn check_io(
    spec: &ConvShape,
    input: &BlockedImage,
    output: &BlockedImage,
    policy: NonFinitePolicy,
) -> Result<(), ExecError> {
    let expected_in = (spec.batch, spec.in_c, spec.h, spec.w);
    if input.dims() != expected_in {
        return Err(ExecError::IoShape {
            which: "input",
            expected: expected_in,
            got: input.dims(),
        });
    }
    let expected_out = (spec.batch, spec.out_c, spec.out_h(), spec.out_w());
    if output.dims() != expected_out {
        return Err(ExecError::IoShape {
            which: "output",
            expected: expected_out,
            got: output.dims(),
        });
    }
    if policy == NonFinitePolicy::Reject {
        let count = input.data().iter().filter(|v| !v.is_finite()).count() as u64;
        if count > 0 {
            return Err(ExecError::NonFiniteInput { count });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::DirectF32.name(), "direct-f32");
        assert_eq!(Algorithm::LoWino { m: 4 }.tile_m(), Some(4));
        assert_eq!(Algorithm::DirectInt8.tile_m(), None);
        assert!(Algorithm::DownScale { m: 2 }.needs_spatial_scale());
        assert!(!Algorithm::DownScale { m: 2 }.needs_winograd_scale());
        assert!(Algorithm::LoWino { m: 2 }.needs_winograd_scale());
        assert!(!Algorithm::DirectF32.needs_spatial_scale());
        assert_eq!(format!("{}", Algorithm::UpCast { m: 2 }), "upcast F(2x2,3x3)");
    }
}
