//! The down-scaling low-precision Winograd baseline (paper §2.3, Fig. 2b —
//! the oneDNN-style design).
//!
//! The input is quantized **in the spatial domain** (INT8), transformed
//! with the *integer* `Bᵀ`, and the amplified result is squeezed back into
//! INT8 by multiplying with `α = 1/growth` and rounding — `1/4` for
//! `F(2,3)`, `1/100` for `F(4,3)`, `~1/10⁴` for `F(6,3)`. The rounding of
//! the down-scaled values is the precision loss (❷ in Fig. 2b) that makes
//! large tiles unusable — reproduced in the Table 3 / Fig. 9 experiments.
//!
//! The oneDNN implementation additionally processes the input in small
//! partitions whose intermediates stay cache-resident, which caps its GEMM
//! block sizes (paper §5.3). We model that by defaulting to a deliberately
//! small cache blocking (`N_blk`/`K_blk` of one L2-resident partition)
//! unless the caller overrides it.

use lowino_gemm::{Blocking, GemmShape, GemmTasks, UPanel, VPanel, ZPanel};
use lowino_quant::QParams;
use lowino_simd::vecf32::{requantize_i32_lanes, VecTier};
use lowino_simd::{store::stream_fence, stream_store_u8_64};
use lowino_tensor::{AlignedBuf, BlockedImage, ConvShape, Tensor4, TileGeometry, LANES};
use lowino_winograd::{range_growth_2d, TileTransformer};

use crate::algo::{check_io, Algorithm, ConvExecutor};
use crate::context::ConvContext;
use crate::error::{ConvError, ExecError};
use crate::filter::pack_filters_lowino;
use crate::scratch::{ensure_f32, ensure_i32, ScratchArena, WorkerScratch};
use crate::stats::StageTimings;
use crate::tiles::{scatter_output_tile, tile_coords, tile_origin};

/// Down-scaling Winograd INT8 executor.
pub struct DownScaleConv {
    spec: ConvShape,
    geom: TileGeometry,
    tt: TileTransformer,
    u_panel: UPanel,
    alpha_in: QParams,
    alpha_u: QParams,
    /// The transform-domain down-scale `α = 1/growth`.
    alpha_ds: f32,
    /// Spatially-quantized padded input `[B][H+2p][W+2p][C_p]` i8 — filled
    /// once per execute, so overlapping tiles re-read INT8 bytes instead of
    /// re-quantizing FP32 (the oneDNN behaviour the paper contrasts with in
    /// §5.3: oneDNN's transform reads 4× fewer input bytes than LoWino).
    qbuf: AlignedBuf<i8>,
    /// Padded buffer dims (cover the full ragged-tile extent).
    hp: usize,
    wp: usize,
    v_panel: VPanel,
    z_panel: ZPanel,
    blocking_override: Option<Blocking>,
}

impl DownScaleConv {
    /// Plan a down-scaling Winograd convolution. `input_scale` is the
    /// spatial-domain scale from [`crate::calibrate_spatial`].
    pub fn new(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        input_scale: QParams,
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let geom = spec.tiles(m)?;
        let tt = TileTransformer::new(m, spec.r)?;
        // Filters follow the same Winograd-domain max-abs path as LoWino
        // (weights are fully known offline; this matches oneDNN).
        let (u_panel, alpha_u) = pack_filters_lowino(&spec, &geom, &tt, weights)?;
        let growth = range_growth_2d(m, spec.r)? as f32;
        let t_count = geom.t();
        let cp = lowino_tensor::round_up(spec.in_c, LANES);
        // Ragged edge tiles read past H+2p; size the buffer for the full
        // tile extent.
        let hp = ((geom.tiles_h - 1) * geom.m + geom.n).max(spec.h + 2 * spec.pad);
        let wp = ((geom.tiles_w - 1) * geom.m + geom.n).max(spec.w + 2 * spec.pad);
        Ok(Self {
            spec,
            geom,
            tt,
            u_panel,
            alpha_in: input_scale,
            alpha_u,
            alpha_ds: 1.0 / growth,
            qbuf: AlignedBuf::zeroed(spec.batch * hp * wp * cp),
            hp,
            wp,
            v_panel: VPanel::new(t_count, geom.total, spec.in_c),
            z_panel: ZPanel::new(t_count, geom.total, spec.out_c),
            blocking_override: None,
        })
    }

    /// The transform-domain down-scale factor (`1/4`, `1/100`, …).
    pub fn down_scale(&self) -> f32 {
        self.alpha_ds
    }

    /// Override the GEMM blocking.
    pub fn set_blocking(&mut self, b: Blocking) {
        self.blocking_override = Some(b);
    }

    /// The GEMM shape of stage ②.
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape {
            t: self.geom.t(),
            n: self.geom.total,
            c: self.spec.in_c,
            k: self.spec.out_c,
        }
    }

    /// The cache-capped blocking modelling oneDNN's partition design
    /// (§5.3: intermediates for one partition stay in cache, so blocks are
    /// small and shrink as the tile size grows).
    fn onednn_like_blocking(&self) -> Blocking {
        let shape = self.gemm_shape();
        let mut b = Blocking::default_for(&shape);
        // One partition's V/U/Z intermediates (~T·part·C bytes) must stay
        // L2-resident (1 MB on Cascade Lake); larger tiles => smaller
        // partitions (2.25× more intermediate for F(4,3), paper §5.3).
        let budget = 1024 * 1024usize; // bytes of L2 for intermediates
        let per_row = self.geom.t() * (lowino_tensor::round_up(shape.c, 64) + 4 * 64);
        b.n_blk = (budget / per_row.max(1)).clamp(8, 96);
        b.k_blk = 128;
        b.c_blk = b.c_blk.min(256);
        b
    }
}

impl ConvExecutor for DownScaleConv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::DownScale { m: self.geom.m }
    }

    /// Single-fork-join schedule: the four stages (spatial quantization,
    /// integer transform, GEMM, output transform) run as barrier-separated
    /// phases of one pool job, with working buffers from the context's
    /// persistent per-worker [`ScratchArena`].
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        let spec = self.spec;
        let geom = self.geom;
        let (n, m, t_count) = (geom.n, geom.m, geom.t());
        let tt = &self.tt;
        let alpha_in = self.alpha_in.alpha;
        let alpha_ds = self.alpha_ds;
        let (hp, wp) = (self.hp, self.wp);
        let cp = lowino_tensor::round_up(spec.in_c, LANES);
        let c_blocks = cp / LANES;

        // A published retune winner beats the override; otherwise the
        // oneDNN-like partition cap stands in for wisdom — this executor
        // models oneDNN's design, so it is never cost-model seeded.
        let shape = self.gemm_shape();
        let blocking = match ctx.tune.lookup(ctx.tier, &shape) {
            Some(published) => published,
            None => self
                .blocking_override
                .unwrap_or_else(|| self.onednn_like_blocking()),
        };

        let ConvContext {
            pool,
            tier,
            scratch,
            ..
        } = ctx;
        let tier = *tier;
        let vt = VecTier::for_simd(tier);
        let scratch: &ScratchArena = scratch;

        // Plan stage ③ (the GEMM) with the partition-capped blocking; the
        // plan's exclusive borrow of `Z` lives through the whole fork-join.
        let vp: &VPanel = &self.v_panel;
        let qb: &AlignedBuf<i8> = &self.qbuf;
        let gemm = GemmTasks::plan(
            tier,
            &shape,
            &blocking,
            &self.v_panel,
            &self.u_panel,
            &mut self.z_panel,
        );
        let inv = 1.0 / (alpha_in * alpha_ds * self.alpha_u.alpha);

        let out_ref: &BlockedImage = output;
        let totals = [
            spec.batch * spec.h,
            c_blocks * geom.total,
            gemm.total(),
            out_ref.c_blocks() * geom.total,
        ];
        let times = pool.run_phases_catching(&totals, |worker, phase, range| match phase {
            // -- Phase ① part A: quantize the input image ONCE into the
            // padded INT8 buffer (❶ of Fig. 2b) — the oneDNN design:
            // overlapping tiles then re-read cheap INT8 bytes.
            0 => {
                let _span = lowino_trace::span("downscale/quantize_input");
                let tracing = lowino_trace::enabled();
                let mut saturated = 0u64;
                let mut values = 0u64;
                for row in range {
                    let b = row / spec.h;
                    let y = row % spec.h;
                    for x in 0..spec.w {
                        for cb in 0..c_blocks {
                            let lanes = input.lanes(b, cb, y, x);
                            let off =
                                ((b * hp + y + spec.pad) * wp + x + spec.pad) * cp + cb * LANES;
                            // SAFETY: each (b, y) row is owned by one task.
                            unsafe {
                                let dst = qb.as_ptr().add(off) as *mut i8;
                                for (l, &s) in lanes.iter().enumerate() {
                                    let qv = (s * alpha_in)
                                        .round_ties_even()
                                        .clamp(-127.0, 127.0)
                                        as i8;
                                    *dst.add(l) = qv;
                                    if tracing && (qv == 127 || qv == -127) {
                                        saturated += 1;
                                    }
                                }
                            }
                            if tracing {
                                values += LANES as u64;
                            }
                        }
                    }
                }
                if tracing {
                    lowino_trace::counter("quant/saturated", saturated);
                    lowino_trace::counter("quant/values", values);
                }
            }
            // -- Phase ① part B: integer transform of INT8 tiles,
            // down-scale, round back to INT8 (❷ — the lossy step), +128
            // compensation.
            1 => {
                let _span = lowino_trace::span("downscale/input_transform");
                let tracing = lowino_trace::enabled();
                let mut saturated = 0u64;
                let mut values = 0u64;
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform,
                    patch_i,
                    tile_i,
                    ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let patch_q = ensure_i32(patch_i, n * n * LANES);
                let v_int = ensure_i32(tile_i, n * n * LANES);
                let mut q = [0u8; LANES];
                for task in range {
                    let cb = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let (y0, x0) = tile_origin(&spec, &geom, ty, tx);
                    // Gather the INT8 tile (pad offsets shift the origin into
                    // the padded buffer, so indices are always in bounds).
                    for i in 0..n {
                        for j in 0..n {
                            let yy = (y0 + i as isize + spec.pad as isize) as usize;
                            let xx = (x0 + j as isize + spec.pad as isize) as usize;
                            let off = ((b * hp + yy) * wp + xx) * cp + cb * LANES;
                            let src = &qb.as_slice()[off..off + LANES];
                            let dst = &mut patch_q[(i * n + j) * LANES..][..LANES];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d = i32::from(s);
                            }
                        }
                    }
                    // Exact integer Winograd transform (range grows up to
                    // `growth(m)×`).
                    tt.input_tile_i32(patch_q, v_int, transform);
                    for t in 0..t_count {
                        let src = &v_int[t * LANES..(t + 1) * LANES];
                        requantize_i32_lanes(vt, src, alpha_ds, true, &mut q);
                        if tracing {
                            saturated += lowino_quant::count_saturated_u8(&q);
                            values += LANES as u64;
                        }
                        // SAFETY: disjoint cache lines per task.
                        unsafe {
                            let dst = vp.row_ptr_shared(t, tile).add(cb * LANES);
                            let dst = core::slice::from_raw_parts_mut(dst, LANES);
                            stream_store_u8_64(tier, dst, &q);
                        }
                    }
                }
                if tracing {
                    lowino_trace::counter("quant/saturated", saturated);
                    lowino_trace::counter("quant/values", values);
                }
                // Drain the non-temporal stores before the phase barrier.
                stream_fence();
            }
            // -- Phase ②: the GEMM, pipelined through the worker's
            // double-buffered packing scratch.
            2 => {
                let _span = lowino_trace::span("downscale/gemm");
                let mut ws = scratch.worker(worker);
                gemm.run_range(range, &mut ws.gemm_pack);
            }
            // -- Phase ③: fused de-quantize + output transform (the inverse
            // scale 1/(α_in·α_ds·α_U) is folded into the compiled tape's
            // i32→f32 loads, broadcast across all t). Effective input scale
            // is α_in·α_ds (the spatial scale times the transform
            // down-scale).
            _ => {
                let _span = lowino_trace::span("downscale/output_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform, tile_f, ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let y = ensure_f32(tile_f, m * m * LANES);
                for task in range {
                    let kg = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let block = gemm.z().tile_block(kg, tile);
                    tt.output_tile_dequantized(
                        vt,
                        block,
                        core::slice::from_ref(&inv),
                        0,
                        y,
                        transform,
                    );
                    // SAFETY: output tiles never overlap.
                    unsafe {
                        scatter_output_tile(out_ref, b, kg, ty * m, tx * m, m, y);
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: times[0] + times[1],
            gemm: times[2],
            output_transform: times[3],
        })
    }

    /// Saturation of the last execute's down-scaled `V` panel — the
    /// transform-domain requantization (❷ of Fig. 2b) is where this
    /// baseline clamps. Padding channels are zero bytes (ignored by the
    /// compensated-u8 counter); `total` counts only the real `T·N·C`
    /// values.
    fn saturation(&self) -> Option<(u64, u64)> {
        let (t, n, c, _) = self.v_panel.dims();
        let mut sat = 0u64;
        for ti in 0..t {
            for ni in 0..n {
                sat += lowino_quant::count_saturated_u8(self.v_panel.row(ti, ni));
            }
        }
        Some((sat, (t * n * c) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::direct_f32::reference_conv_nchw;
    use crate::calibrate::calibrate_spatial;

    fn run_case(spec: ConvShape, m: usize) -> f64 {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 61 + c * 23 + y * 11 + x) as f32 * 0.19).sin()
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 7 + c * 3 + y + x) as f32 * 0.59).cos() * 0.25
        });
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = DownScaleConv::new(spec, m, &weights, cal).unwrap();
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(1);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        out.to_nchw().rel_l2_error(&want)
    }

    #[test]
    fn f2_is_usable() {
        // α = 1/4: mild extra loss, still usable (paper Table 3).
        let err = run_case(ConvShape::same(1, 8, 8, 10, 3), 2);
        assert!(err < 0.08, "rel error {err}");
    }

    #[test]
    fn f4_degrades_severely() {
        // α = 1/100: the rounding destroys most of the signal — the Table 3
        // accuracy-collapse mechanism. The error must be far worse than
        // both its own F(2,3) variant and LoWino's F(4,3).
        let spec = ConvShape::same(1, 8, 8, 10, 3);
        let e2 = run_case(spec, 2);
        let e4 = run_case(spec, 4);
        assert!(e4 > 3.0 * e2, "e2={e2} e4={e4}");
        assert!(e4 > 0.10, "e4={e4} unexpectedly good");
    }

    #[test]
    fn down_scale_factors_match_paper() {
        let spec = ConvShape::same(1, 4, 4, 8, 3).validate().unwrap();
        let w = Tensor4::zeros(4, 4, 3, 3);
        let c2 = DownScaleConv::new(spec, 2, &w, QParams::UNIT).unwrap();
        assert!((c2.down_scale() - 0.25).abs() < 1e-9);
        let c4 = DownScaleConv::new(spec, 4, &w, QParams::UNIT).unwrap();
        assert!((c4.down_scale() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn partition_blocking_is_smaller_for_larger_tiles() {
        let spec = ConvShape::same(1, 64, 64, 32, 3).validate().unwrap();
        let w = Tensor4::zeros(64, 64, 3, 3);
        let c2 = DownScaleConv::new(spec, 2, &w, QParams::UNIT).unwrap();
        let c4 = DownScaleConv::new(spec, 4, &w, QParams::UNIT).unwrap();
        assert!(
            c4.onednn_like_blocking().n_blk <= c2.onednn_like_blocking().n_blk,
            "F(4,3) partitions must not exceed F(2,3)'s"
        );
    }
}
