//! The up-casting low-precision Winograd baseline (paper §2.3, Fig. 2a —
//! the ncnn-style design).
//!
//! The input is quantized in the spatial domain (INT8) and transformed with
//! the integer `Bᵀ` **exactly** — the result is simply kept in a wider
//! type (INT16) instead of being squeezed back to INT8. No transform-domain
//! precision is lost (❶ of Fig. 2a is lossless), but the multiply stage
//! must run on `vpdpwssd`, at half the per-instruction MAC throughput of
//! `vpdpbusd` — the performance cost the paper attributes to this design.
//!
//! INT16 capacity bounds the tile size: the transform amplifies magnitudes
//! by `growth(m)`, so `growth(m)·127` must fit in i16 — true for `m ≤ 4`,
//! false for `m = 6`, which is exactly why ncnn only ships small tiles.

use lowino_gemm::int16::GemmTasksI16;
use lowino_gemm::{GemmShape, UPanelI16, VPanelI16, ZPanel};
use lowino_quant::QParams;
use lowino_simd::vecf32::VecTier;
use lowino_tensor::{AlignedBuf, BlockedImage, ConvShape, Tensor4, TileGeometry, LANES};
use lowino_winograd::{range_growth_2d, TileTransformer};

use crate::algo::{check_io, Algorithm, ConvExecutor};
use crate::context::ConvContext;
use crate::error::{ConvError, ExecError};
use crate::filter::pack_filters_upcast;
use crate::scratch::{ensure_f32, ensure_i32, ScratchArena, WorkerScratch};
use crate::stats::StageTimings;
use crate::tiles::{scatter_output_tile, tile_coords, tile_origin};

/// Up-casting Winograd INT16 executor.
pub struct UpCastConv {
    spec: ConvShape,
    geom: TileGeometry,
    tt: TileTransformer,
    u_panel: UPanelI16,
    alpha_in: QParams,
    alpha_u: QParams,
    /// Spatially-quantized padded input (INT8, quantized once per execute).
    qbuf: AlignedBuf<i8>,
    hp: usize,
    wp: usize,
    v_panel: VPanelI16,
    z_panel: ZPanel,
}

impl UpCastConv {
    /// Plan an up-casting Winograd convolution. `input_scale` is the
    /// spatial-domain scale from [`crate::calibrate_spatial`].
    ///
    /// Fails with [`ConvError::Unsupported`] when the transform growth
    /// exceeds INT16 capacity (`m ≥ 6` for `r = 3`) — the same limitation
    /// as the production up-casting implementations.
    pub fn new(
        spec: ConvShape,
        m: usize,
        weights: &Tensor4,
        input_scale: QParams,
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let geom = spec.tiles(m)?;
        let growth = range_growth_2d(m, spec.r)?;
        if growth * 127.0 > f64::from(i16::MAX) {
            return Err(ConvError::Unsupported(format!(
                "up-casting F({m},{}) would overflow INT16: growth {growth:.0}× of ±127",
                spec.r
            )));
        }
        let tt = TileTransformer::new(m, spec.r)?;
        let (u_panel, alpha_u) = pack_filters_upcast(&spec, &geom, &tt, weights)?;
        let t_count = geom.t();
        let cp = lowino_tensor::round_up(spec.in_c, LANES);
        let hp = ((geom.tiles_h - 1) * geom.m + geom.n).max(spec.h + 2 * spec.pad);
        let wp = ((geom.tiles_w - 1) * geom.m + geom.n).max(spec.w + 2 * spec.pad);
        Ok(Self {
            spec,
            geom,
            tt,
            u_panel,
            alpha_in: input_scale,
            alpha_u,
            qbuf: AlignedBuf::zeroed(spec.batch * hp * wp * cp),
            hp,
            wp,
            v_panel: VPanelI16::new(t_count, geom.total, spec.in_c),
            z_panel: ZPanel::new(t_count, geom.total, spec.out_c),
        })
    }
}

impl ConvExecutor for UpCastConv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::UpCast { m: self.geom.m }
    }

    /// Single-fork-join schedule: the four stages (spatial quantization,
    /// integer transform, INT16 GEMM, output transform) run as
    /// barrier-separated phases of one pool job, with working buffers from
    /// the context's persistent per-worker [`ScratchArena`].
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        let spec = self.spec;
        let geom = self.geom;
        let (n, m, t_count) = (geom.n, geom.m, geom.t());
        let tt = &self.tt;
        let alpha_in = self.alpha_in.alpha;
        let (hp, wp) = (self.hp, self.wp);
        let cp = lowino_tensor::round_up(spec.in_c, LANES);
        let c_blocks = cp / LANES;

        let ConvContext {
            pool,
            tier,
            scratch,
            ..
        } = ctx;
        let tier = *tier;
        let vt = VecTier::for_simd(tier);
        let scratch: &ScratchArena = scratch;

        let shape = GemmShape {
            t: t_count,
            n: geom.total,
            c: spec.in_c,
            k: spec.out_c,
        };
        let vp: &VPanelI16 = &self.v_panel;
        let qb: &AlignedBuf<i8> = &self.qbuf;
        let gemm = GemmTasksI16::plan(tier, &shape, &self.v_panel, &self.u_panel, &mut self.z_panel);
        let inv = 1.0 / (alpha_in * self.alpha_u.alpha);

        let out_ref: &BlockedImage = output;
        let totals = [
            spec.batch * spec.h,
            c_blocks * geom.total,
            gemm.total(),
            out_ref.c_blocks() * geom.total,
        ];
        let times = pool.run_phases_catching(&totals, |worker, phase, range| match phase {
            // -- Phase ① part A: quantize the input once into the padded
            // INT8 buffer (shared design with the down-scaling baseline).
            0 => {
                let _span = lowino_trace::span("upcast/quantize_input");
                let tracing = lowino_trace::enabled();
                let mut saturated = 0u64;
                let mut values = 0u64;
                for row in range {
                    let b = row / spec.h;
                    let y = row % spec.h;
                    for x in 0..spec.w {
                        for cb in 0..c_blocks {
                            let lanes = input.lanes(b, cb, y, x);
                            let off =
                                ((b * hp + y + spec.pad) * wp + x + spec.pad) * cp + cb * LANES;
                            // SAFETY: each (b, y) row is owned by one task.
                            unsafe {
                                let dst = qb.as_ptr().add(off) as *mut i8;
                                for (l, &s) in lanes.iter().enumerate() {
                                    let qv = (s * alpha_in)
                                        .round_ties_even()
                                        .clamp(-127.0, 127.0)
                                        as i8;
                                    *dst.add(l) = qv;
                                    if tracing && (qv == 127 || qv == -127) {
                                        saturated += 1;
                                    }
                                }
                            }
                            if tracing {
                                values += LANES as u64;
                            }
                        }
                    }
                }
                if tracing {
                    lowino_trace::counter("quant/saturated", saturated);
                    lowino_trace::counter("quant/values", values);
                }
            }
            // -- Phase ① part B: exact integer transform of INT8 → INT16.
            1 => {
                let _span = lowino_trace::span("upcast/input_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform,
                    patch_i,
                    tile_i,
                    ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let patch_q = ensure_i32(patch_i, n * n * LANES);
                let v_int = ensure_i32(tile_i, n * n * LANES);
                for task in range {
                    let cb = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let (y0, x0) = tile_origin(&spec, &geom, ty, tx);
                    for i in 0..n {
                        for j in 0..n {
                            let yy = (y0 + i as isize + spec.pad as isize) as usize;
                            let xx = (x0 + j as isize + spec.pad as isize) as usize;
                            let off = ((b * hp + yy) * wp + xx) * cp + cb * LANES;
                            let src = &qb.as_slice()[off..off + LANES];
                            let dst = &mut patch_q[(i * n + j) * LANES..][..LANES];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d = i32::from(s);
                            }
                        }
                    }
                    tt.input_tile_i32(patch_q, v_int, transform);
                    // Up-cast ❶: exact in INT16 (capacity checked at plan
                    // time).
                    for t in 0..t_count {
                        // SAFETY: disjoint (t, tile, cb) groups per task.
                        unsafe {
                            let dst = vp.row_ptr_shared(t, tile).add(cb * LANES);
                            for l in 0..LANES {
                                let val = v_int[t * LANES + l];
                                debug_assert!(
                                    val >= i32::from(i16::MIN) && val <= i32::from(i16::MAX)
                                );
                                *dst.add(l) = val as i16;
                            }
                        }
                    }
                }
            }
            // -- Phase ②: INT16 GEMM (vpdpwssd — half VNNI throughput).
            2 => {
                let _span = lowino_trace::span("upcast/gemm");
                gemm.run_range(range);
            }
            // -- Phase ③: fused de-quantize + output transform (the inverse
            // scale is folded into the compiled tape's i32→f32 loads,
            // broadcast across all t). The integer transform is exact, so
            // the only scales are the spatial α_in and the filter α_U.
            _ => {
                let _span = lowino_trace::span("upcast/output_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform, tile_f, ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let y = ensure_f32(tile_f, m * m * LANES);
                for task in range {
                    let kg = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let block = gemm.z().tile_block(kg, tile);
                    tt.output_tile_dequantized(
                        vt,
                        block,
                        core::slice::from_ref(&inv),
                        0,
                        y,
                        transform,
                    );
                    // SAFETY: output tiles never overlap.
                    unsafe {
                        scatter_output_tile(out_ref, b, kg, ty * m, tx * m, m, y);
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: times[0] + times[1],
            gemm: times[2],
            output_transform: times[3],
        })
    }

    /// Saturation of the last execute's spatially-quantized INT8 input
    /// buffer. Padding bytes are zero (never on the ±127 clamp bounds), so
    /// scanning the whole padded buffer is exact; `total` counts only the
    /// real `B·C·H·W` values.
    fn saturation(&self) -> Option<(u64, u64)> {
        let spec = &self.spec;
        let sat = lowino_quant::count_saturated_i8(self.qbuf.as_slice());
        Some((sat, (spec.batch * spec.in_c * spec.h * spec.w) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::direct_f32::reference_conv_nchw;
    use crate::calibrate::calibrate_spatial;

    fn run_case(spec: ConvShape, m: usize) -> f64 {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 71 + c * 37 + y * 13 + x) as f32 * 0.27).sin()
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 5 + c * 3 + y * 2 + x) as f32 * 0.67).cos() * 0.3
        });
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = UpCastConv::new(spec, m, &weights, cal).unwrap();
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(2);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        out.to_nchw().rel_l2_error(&want)
    }

    #[test]
    fn f2_accuracy_is_spatial_quant_limited() {
        let err = run_case(ConvShape::same(1, 8, 8, 10, 3), 2);
        assert!(err < 0.04, "rel error {err}");
    }

    #[test]
    fn f4_accuracy_no_downscale_collapse() {
        // Up-casting quantizes in the spatial domain, so its rounding error
        // is amplified by the transform (up to 100x for F(4,3)) — worse
        // than LoWino, but nothing like the down-scaling collapse. Its real
        // cost is throughput (INT16 multiply), not a broken output.
        let err = run_case(ConvShape::same(1, 16, 8, 12, 3), 4);
        assert!(err < 0.25, "rel error {err}");
    }

    #[test]
    fn f6_rejected_for_int16_overflow() {
        let spec = ConvShape::same(1, 4, 4, 12, 3).validate().unwrap();
        let err = match UpCastConv::new(spec, 6, &Tensor4::zeros(4, 4, 3, 3), QParams::UNIT) {
            Err(e) => e,
            Ok(_) => panic!("F(6,3) up-casting must be rejected"),
        };
        assert!(matches!(err, ConvError::Unsupported(_)), "{err}");
        assert!(err.to_string().contains("INT16"));
    }
}
