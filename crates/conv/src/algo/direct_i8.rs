//! INT8 direct convolution (the "INT8 Direct Convolution – oneDNN" baseline
//! of paper Fig. 8), implemented as an **implicit GEMM**:
//!
//! 1. the input is quantized once into a spatially zero-padded
//!    `[B][H+2p][W+2p][C_p]` u8 buffer (padding pixels hold the compensated
//!    zero, 128 — the compensation algebra renders them inert);
//! 2. for each filter offset `(dy, dx)` the micro-kernel consumes the
//!    quantized buffer *in place* with shifted row pointers — no im2col
//!    materialisation, so each input byte is written once and read from
//!    cache, matching the memory behaviour of a production direct
//!    convolution;
//! 3. the `r²` offset passes accumulate into the same `Z` tile (seeded with
//!    the combined compensation row), then `Z` is de-quantized into the
//!    blocked output.

use lowino_gemm::kernel::{microkernel, Seed};
use lowino_gemm::{Blocking, GemmShape, UPanel, ZPanel};
use lowino_quant::QParams;
use lowino_simd::vecf32::VecTier;
use lowino_simd::{dequantize_lanes, quantize_lanes, store::stream_fence, stream_store_u8_64};
use lowino_tensor::{round_up, AlignedBuf, BlockedImage, ConvShape, Tensor4, LANES};

use crate::algo::{check_io, Algorithm, ConvExecutor};
use crate::context::ConvContext;
use crate::error::{ConvError, ExecError};
use crate::filter::pack_filters_direct_i8;
use crate::stats::StageTimings;

/// INT8 direct-convolution executor.
pub struct DirectInt8Conv {
    spec: ConvShape,
    /// `T = r²` filter panel (one tile position per offset).
    u_panel: UPanel,
    /// Combined compensation `Σ_t Z̄[t]` (seeds the first offset pass).
    zbar_total: AlignedBuf<i32>,
    alpha_in: QParams,
    alpha_w: QParams,
    /// Quantized, compensated, spatially padded input:
    /// `[B][H+2p][W+2p][C_p]` u8; padding pixels hold 128.
    qbuf: AlignedBuf<u8>,
    z_panel: ZPanel,
    cp: usize,
    blocking_override: Option<Blocking>,
}

impl DirectInt8Conv {
    /// Plan an INT8 direct convolution. `input_scale` comes from
    /// [`crate::calibrate_spatial`].
    pub fn new(
        spec: ConvShape,
        weights: &Tensor4,
        input_scale: QParams,
    ) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        if spec.stride != 1 {
            return Err(ConvError::Unsupported(
                "DirectInt8Conv currently supports stride 1 only".into(),
            ));
        }
        let cp = round_up(spec.in_c, LANES);
        let (u_panel, alpha_w) = pack_filters_direct_i8(&spec, weights)?;
        let t_count = spec.r * spec.r;
        let kp = u_panel.kp();
        let mut zbar_total = AlignedBuf::<i32>::zeroed(kp);
        for t in 0..t_count {
            for (dst, &z) in zbar_total.as_mut_slice().iter_mut().zip(u_panel.zbar(t)) {
                *dst += z;
            }
        }
        let (hp, wp) = (spec.h + 2 * spec.pad, spec.w + 2 * spec.pad);
        let mut qbuf = AlignedBuf::<u8>::zeroed(spec.batch * hp * wp * cp);
        // Padding pixels are the compensated zero. Fill everything once;
        // the interior is overwritten on every execute.
        qbuf.fill(128);
        let n = spec.batch * spec.out_h() * spec.out_w();
        Ok(Self {
            spec,
            u_panel,
            zbar_total,
            alpha_in: input_scale,
            alpha_w,
            qbuf,
            z_panel: ZPanel::new(1, n, spec.out_c),
            cp,
            blocking_override: None,
        })
    }

    /// Override the GEMM blocking.
    pub fn set_blocking(&mut self, b: Blocking) {
        self.blocking_override = Some(b);
    }

    /// The per-offset GEMM shape (for tuning; `r²` such passes run).
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape {
            t: self.spec.r * self.spec.r,
            n: self.spec.batch * self.spec.out_h() * self.spec.out_w(),
            c: self.spec.in_c,
            k: self.spec.out_c,
        }
    }
}

impl ConvExecutor for DirectInt8Conv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::DirectInt8
    }

    /// Single-fork-join schedule: quantization, the `r²` GEMM passes and
    /// de-quantization run as barrier-separated phases of one pool job.
    /// This executor's phase bodies use only small stack arrays, so —
    /// unlike the Winograd executors — it draws nothing from the scratch
    /// arena; the padded u8 buffer is a planned member already.
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        let spec = self.spec;
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        let (hp, wp) = (spec.h + 2 * spec.pad, spec.w + 2 * spec.pad);
        let r = spec.r;
        let alpha = self.alpha_in.alpha;
        let cp = self.cp;
        let c_blocks = cp / LANES;

        let shape = self.gemm_shape();
        let blocking = ctx.gemm_blocking(&shape, self.blocking_override);
        let blocking = lowino_gemm::normalize_for(&blocking, &shape);

        let ConvContext { pool, tier, .. } = ctx;
        let tier = *tier;
        let vt = VecTier::for_simd(tier);
        let kp = self.u_panel.kp();
        let zp: &ZPanel = &self.z_panel;
        let up: &UPanel = &self.u_panel;
        let qb: &AlignedBuf<u8> = &self.qbuf;
        let zbar: &[i32] = self.zbar_total.as_slice();
        let z_stride = zp.n_stride();
        let inv = self.alpha_in.product_dequant(&self.alpha_w);
        let out_ref: &BlockedImage = output;
        let k_blocks = out_ref.c_blocks();

        let totals = [
            spec.batch * spec.h,
            // Task = one output row (b, oy); Z regions are disjoint per row.
            spec.batch * out_h,
            spec.batch * out_h * out_w,
        ];
        let times = pool.run_phases_catching(&totals, |_, phase, range| match phase {
            // -- Phase ①: quantize the input once into the padded u8 buffer.
            0 => {
                let _span = lowino_trace::span("direct_i8/quantize_input");
                let tracing = lowino_trace::enabled();
                let mut saturated = 0u64;
                let mut values = 0u64;
                let mut q = [0u8; LANES];
                for row in range {
                    let b = row / spec.h;
                    let y = row % spec.h;
                    for x in 0..spec.w {
                        for cb in 0..c_blocks {
                            let lanes = if cb < input.c_blocks() {
                                input.lanes(b, cb, y, x)
                            } else {
                                &[0.0; LANES]
                            };
                            quantize_lanes(vt, lanes, alpha, true, &mut q);
                            if tracing {
                                saturated += lowino_quant::count_saturated_u8(&q);
                                values += LANES as u64;
                            }
                            let off = ((b * hp + y + spec.pad) * wp + x + spec.pad) * cp
                                + cb * LANES;
                            // SAFETY: each (b, y) row is owned by one task;
                            // offsets are in bounds and 64-byte aligned.
                            unsafe {
                                let dst = qb.as_ptr().add(off) as *mut u8;
                                let dst = core::slice::from_raw_parts_mut(dst, LANES);
                                stream_store_u8_64(tier, dst, &q);
                            }
                        }
                    }
                }
                if tracing {
                    lowino_trace::counter("quant/saturated", saturated);
                    lowino_trace::counter("quant/values", values);
                }
                stream_fence();
            }
            // -- Phase ②: r² shifted-pointer GEMM passes accumulating
            // into Z.
            1 => {
                let _span = lowino_trace::span("direct_i8/gemm");
                // Each task (one output row) runs r² shifted passes of an
                // out_w × cp × kp product.
                if lowino_trace::enabled() {
                    lowino_trace::counter(
                        "gemm/dpbusd_macs",
                        (range.len() * out_w * cp * kp * r * r) as u64,
                    );
                }
                for task in range {
                    let b = task / out_h;
                    let oy = task % out_h;
                    let n_base = (b * out_h + oy) * out_w;
                    let mut x0 = 0;
                    while x0 < out_w {
                        let x_end = (x0 + blocking.n_blk).min(out_w);
                        let mut k0 = 0;
                        while k0 < kp {
                            let k_end = (k0 + blocking.k_blk).min(kp);
                            for t in 0..r * r {
                                let (dy, dx) = (t / r, t % r);
                                let seed_first = t == 0;
                                let mut x1 = x0;
                                while x1 < x_end {
                                    let rb = (x_end - x1).min(blocking.row_blk);
                                    let mut k1 = k0;
                                    while k1 < k_end {
                                        let cb = ((k_end - k1) / 16).min(blocking.col_blk);
                                        let seed = if seed_first {
                                            Seed::Zbar(unsafe { zbar.as_ptr().add(k1) })
                                        } else {
                                            Seed::Accumulate
                                        };
                                        // SAFETY: the shifted input rows
                                        // (oy+dy, x1+dx .. x1+dx+rb) are
                                        // inside the padded buffer; Z rows
                                        // are owned by this task.
                                        unsafe {
                                            let v_ptr = qb.as_ptr().add(
                                                ((b * hp + oy + dy) * wp + x1 + dx) * cp,
                                            );
                                            let u_ptr = up.block_ptr(t, k1);
                                            let z_ptr =
                                                zp.store_ptr_shared(0, n_base + x1, k1);
                                            microkernel(
                                                tier,
                                                rb,
                                                cb,
                                                v_ptr,
                                                cp,
                                                u_ptr,
                                                up.c4_stride(),
                                                cp / 4,
                                                seed,
                                                z_ptr,
                                                z_stride,
                                            );
                                        }
                                        k1 += cb * 16;
                                    }
                                    x1 += rb;
                                }
                            }
                            k0 = k_end;
                        }
                        x0 = x_end;
                    }
                }
                stream_fence();
            }
            // -- Phase ③: de-quantize into the blocked output.
            _ => {
                let _span = lowino_trace::span("direct_i8/dequantize_output");
                let mut f = [0f32; LANES];
                for row in range {
                    let b = row / (out_h * out_w);
                    let oy = (row / out_w) % out_h;
                    let ox = row % out_w;
                    for kg in 0..k_blocks {
                        let block = zp.tile_block(kg, row); // T = 1 -> 64 lanes
                        dequantize_lanes(vt, block, inv, &mut f);
                        // SAFETY: one task per output pixel.
                        unsafe {
                            let dst = out_ref.lanes_ptr_shared(b, kg, oy, ox);
                            core::ptr::copy_nonoverlapping(f.as_ptr(), dst, LANES);
                        }
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: times[0],
            gemm: times[1],
            output_transform: times[2],
        })
    }

    /// Saturation over the persistent quantized input buffer. Padding
    /// pixels and padded channels hold the compensated zero (128), which
    /// [`lowino_quant::count_saturated_u8`] ignores, so only real input
    /// values can count as saturated; the denominator is the real value
    /// count.
    fn saturation(&self) -> Option<(u64, u64)> {
        let spec = &self.spec;
        let sat = lowino_quant::count_saturated_u8(self.qbuf.as_slice());
        Some((sat, (spec.batch * spec.in_c * spec.h * spec.w) as u64))
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        // Qualified call: the inherent method shadows the trait's.
        Some(DirectInt8Conv::gemm_shape(self))
    }

    fn set_blocking(&mut self, b: Blocking) {
        DirectInt8Conv::set_blocking(self, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::direct_f32::reference_conv_nchw;
    use crate::calibrate::calibrate_spatial;

    fn run_case(spec: ConvShape, threads: usize) -> f64 {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 101 + c * 29 + y * 13 + x) as f32 * 0.21).sin()
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 19 + c * 3 + y + x) as f32 * 0.47).cos() * 0.2
        });
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = DirectInt8Conv::new(spec, &weights, cal).unwrap();
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(threads);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        out.to_nchw().rel_l2_error(&want)
    }

    #[test]
    fn int8_direct_accuracy() {
        let err = run_case(ConvShape::same(1, 8, 8, 10, 3), 1);
        assert!(err < 0.05, "rel error {err}");
    }

    #[test]
    fn int8_direct_unpadded_and_multithreaded() {
        let spec = ConvShape {
            batch: 2,
            in_c: 5,
            out_c: 70,
            h: 9,
            w: 7,
            r: 3,
            stride: 1,
            pad: 0,
        };
        let err = run_case(spec, 3);
        assert!(err < 0.05, "rel error {err}");
    }

    #[test]
    fn int8_direct_wide_layer() {
        // Exercises multiple k-cache blocks and n-blocks per row.
        let err = run_case(ConvShape::same(1, 66, 130, 17, 3), 2);
        assert!(err < 0.05, "rel error {err}");
    }

    #[test]
    fn int8_direct_5x5_filter() {
        let spec = ConvShape {
            batch: 1,
            in_c: 4,
            out_c: 8,
            h: 10,
            w: 10,
            r: 5,
            stride: 1,
            pad: 2,
        };
        let err = run_case(spec, 1);
        assert!(err < 0.05, "rel error {err}");
    }

    #[test]
    fn stride_rejected() {
        let spec = ConvShape {
            stride: 2,
            ..ConvShape::same(1, 4, 4, 8, 3)
        };
        assert!(matches!(
            DirectInt8Conv::new(spec, &Tensor4::zeros(4, 4, 3, 3), QParams::UNIT),
            Err(ConvError::Unsupported(_))
        ));
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let input = Tensor4::from_fn(1, 8, 8, 8, |_, c, y, x| ((c + y + x) as f32 * 0.4).sin());
        let weights =
            Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| ((k + c + y + x) as f32 * 0.6).cos());
        let img = BlockedImage::from_nchw(&input);
        let mut conv = DirectInt8Conv::new(spec, &weights, QParams::from_threshold(2.0)).unwrap();
        let mut ctx = ConvContext::new(2);
        let mut outs = Vec::new();
        for _ in 0..3 {
            let mut out = BlockedImage::zeros(1, 8, 8, 8);
            conv.execute(&img, &mut out, &mut ctx).unwrap();
            outs.push(out.to_nchw());
        }
        assert_eq!(outs[0].max_abs_diff(&outs[1]), 0.0);
        assert_eq!(outs[1].max_abs_diff(&outs[2]), 0.0);
    }
}
