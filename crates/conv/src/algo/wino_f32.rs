//! FP32 Winograd convolution — the full-precision fast-algorithm baseline.
//!
//! Same three-stage pipeline as LoWino, with no quantization anywhere: the
//! transformed tiles stay in f32 and the GEMM runs at FP32 throughput
//! (16 lanes/instr vs. VNNI's 64 MACs/instr — the 4× theoretical gap of
//! paper §2.1).

use lowino_gemm::f32gemm::GemmTasksF32;
use lowino_gemm::{GemmShape, UPanelF32, VPanelF32, ZPanelF32};
use lowino_simd::vecf32::VecTier;
use lowino_tensor::{BlockedImage, ConvShape, Tensor4, TileGeometry, LANES};
use lowino_winograd::TileTransformer;

use crate::algo::{check_io, Algorithm, ConvExecutor};
use crate::context::ConvContext;
use crate::error::{ConvError, ExecError};
use crate::filter::pack_filters_f32;
use crate::scratch::{ensure_f32, ScratchArena, WorkerScratch};
use crate::stats::StageTimings;
use crate::tiles::{gather_patch, scatter_output_tile, tile_coords, tile_origin};

/// FP32 Winograd executor.
pub struct WinogradF32Conv {
    spec: ConvShape,
    geom: TileGeometry,
    tt: TileTransformer,
    u_panel: UPanelF32,
    v_panel: VPanelF32,
    z_panel: ZPanelF32,
}

impl WinogradF32Conv {
    /// Plan an FP32 `F(m×m, r×r)` Winograd convolution.
    pub fn new(spec: ConvShape, m: usize, weights: &Tensor4) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        let geom = spec.tiles(m)?;
        let tt = TileTransformer::new(m, spec.r)?;
        let u_panel = pack_filters_f32(&spec, &geom, &tt, weights)?;
        let t_count = geom.t();
        Ok(Self {
            spec,
            geom,
            tt,
            u_panel,
            v_panel: VPanelF32::new(t_count, geom.total, spec.in_c),
            z_panel: ZPanelF32::new(t_count, geom.total, spec.out_c),
        })
    }
}

impl ConvExecutor for WinogradF32Conv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::WinogradF32 { m: self.geom.m }
    }

    /// Single-fork-join schedule: the three stages run as barrier-separated
    /// phases of one pool job; working buffers come from the context's
    /// persistent per-worker [`ScratchArena`]. Transforms run on the
    /// compiled codelet tapes (bitwise identical to the interpreted
    /// reference).
    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        let spec = self.spec;
        let geom = self.geom;
        let (n, m, t_count) = (geom.n, geom.m, geom.t());
        let tt = &self.tt;

        let ConvContext {
            pool,
            tier,
            scratch,
            ..
        } = ctx;
        let vt = VecTier::for_simd(*tier);
        let scratch: &ScratchArena = scratch;

        let shape = GemmShape {
            t: t_count,
            n: geom.total,
            c: spec.in_c,
            k: spec.out_c,
        };
        let vp: &VPanelF32 = &self.v_panel;
        let gemm = GemmTasksF32::plan(&shape, &self.v_panel, &self.u_panel, &mut self.z_panel);
        let acc_len = gemm.acc_len();

        let out_ref: &BlockedImage = output;
        let totals = [
            input.c_blocks() * geom.total,
            gemm.total(),
            out_ref.c_blocks() * geom.total,
        ];
        let times = pool.run_phases_catching(&totals, |worker, phase, range| match phase {
            // -- Phase ①: FP32 input transform into the V panel.
            0 => {
                let _span = lowino_trace::span("wino_f32/input_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform,
                    patch_f,
                    tile_f,
                    ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let patch = ensure_f32(patch_f, n * n * LANES);
                let v = ensure_f32(tile_f, n * n * LANES);
                for task in range {
                    let cb = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let (y0, x0) = tile_origin(&spec, &geom, ty, tx);
                    gather_patch(input, b, cb, y0, x0, n, patch);
                    tt.input_tile_f32_compiled(vt, patch, v, transform);
                    for t in 0..t_count {
                        // SAFETY: disjoint (t, tile, cb) groups per task.
                        unsafe {
                            let dst = vp.row_ptr_shared(t, tile).add(cb * LANES);
                            core::ptr::copy_nonoverlapping(v.as_ptr().add(t * LANES), dst, LANES);
                        }
                    }
                }
            }
            // -- Phase ②: FP32 batched GEMM.
            1 => {
                let _span = lowino_trace::span("wino_f32/gemm");
                let mut ws = scratch.worker(worker);
                let acc = ensure_f32(&mut ws.acc_f, acc_len);
                gemm.run_range(range, acc);
            }
            // -- Phase ③: output transform.
            _ => {
                let _span = lowino_trace::span("wino_f32/output_transform");
                let mut ws = scratch.worker(worker);
                let WorkerScratch {
                    transform, tile_f, ..
                } = &mut *ws;
                tt.ensure_scratch(transform, LANES);
                let y = ensure_f32(tile_f, m * m * LANES);
                for task in range {
                    let kg = task / geom.total;
                    let tile = task % geom.total;
                    let (b, ty, tx) = tile_coords(&geom, tile);
                    let block = gemm.z().tile_block(kg, tile);
                    tt.output_tile_f32_compiled(vt, block, y, transform);
                    // SAFETY: output tiles never overlap.
                    unsafe {
                        scatter_output_tile(out_ref, b, kg, ty * m, tx * m, m, y);
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: times[0],
            gemm: times[1],
            output_transform: times[2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::direct_f32::reference_conv_nchw;

    fn check(spec: ConvShape, m: usize, threads: usize, tol: f32) {
        let spec = spec.validate().unwrap();
        let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 53 + c * 11 + y * 5 + x) as f32 * 0.33).sin()
        });
        let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 7 + c * 3 + y * 2 + x) as f32 * 0.61).cos() * 0.3
        });
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let mut conv = WinogradF32Conv::new(spec, m, &weights).unwrap();
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut ctx = ConvContext::new(threads);
        conv.execute(&img, &mut out, &mut ctx).unwrap();
        let diff = out.to_nchw().max_abs_diff(&want);
        assert!(diff < tol, "diff {diff} (m={m}, spec={spec:?})");
    }

    #[test]
    fn f2_matches_direct() {
        check(ConvShape::same(1, 8, 8, 10, 3), 2, 1, 1e-3);
    }

    #[test]
    fn f4_matches_direct() {
        check(ConvShape::same(2, 16, 8, 12, 3), 4, 2, 1e-3);
    }

    #[test]
    fn f6_matches_direct_with_looser_tolerance() {
        // FP32 Winograd with m = 6 is numerically less stable (paper §2.2).
        check(ConvShape::same(1, 8, 8, 12, 3), 6, 1, 5e-2);
    }

    #[test]
    fn ragged_and_crossing_blocks() {
        check(ConvShape::same(1, 65, 70, 9, 3), 2, 2, 1e-3);
    }
}
