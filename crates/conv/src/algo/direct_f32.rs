//! FP32 direct convolution — the correctness reference and the §5.1
//! full-precision baseline.
//!
//! Weights are re-packed offline to `[K/64][C][r][r][64]` so the inner loop
//! is a scalar-broadcast × 64-wide vector FMA over output channels, which
//! the compiler vectorises; supports arbitrary stride and padding.

use std::time::Instant;

use lowino_tensor::{AlignedBuf, BlockedImage, ConvShape, Tensor4, LANES};

use crate::algo::{check_io, Algorithm, ConvExecutor};
use crate::context::ConvContext;
use crate::error::{check_weights, ConvError, ExecError};
use crate::stats::StageTimings;

/// FP32 direct convolution executor.
pub struct DirectF32Conv {
    spec: ConvShape,
    /// `[K/64][C][r][r][64]` packed weights (padded K lanes are zero).
    wpack: AlignedBuf<f32>,
    k_blocks: usize,
}

impl DirectF32Conv {
    /// Pack weights (`K×C×r×r`) for the spec.
    pub fn new(spec: ConvShape, weights: &Tensor4) -> Result<Self, ConvError> {
        let spec = spec.validate()?;
        check_weights(&spec, weights)?;
        let k_blocks = spec.out_c.div_ceil(LANES);
        let r = spec.r;
        let mut wpack = AlignedBuf::<f32>::zeroed(k_blocks * spec.in_c * r * r * LANES);
        for k in 0..spec.out_c {
            let (kb, kl) = (k / LANES, k % LANES);
            for c in 0..spec.in_c {
                for dy in 0..r {
                    for dx in 0..r {
                        let o = (((kb * spec.in_c + c) * r + dy) * r + dx) * LANES + kl;
                        wpack.as_mut_slice()[o] = weights.at(k, c, dy, dx);
                    }
                }
            }
        }
        Ok(Self {
            spec,
            wpack,
            k_blocks,
        })
    }
}

impl ConvExecutor for DirectF32Conv {
    fn spec(&self) -> &ConvShape {
        &self.spec
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::DirectF32
    }

    fn execute(
        &mut self,
        input: &BlockedImage,
        output: &mut BlockedImage,
        ctx: &mut ConvContext,
    ) -> Result<StageTimings, ExecError> {
        check_io(&self.spec, input, output, ctx.non_finite)?;
        let start = Instant::now();
        let spec = self.spec;
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        let r = spec.r;
        let wpack = self.wpack.as_slice();
        let out_ref: &BlockedImage = output;
        // Task = (batch, k-block, output row); rows never overlap.
        let tasks = spec.batch * self.k_blocks * out_h;
        let k_blocks = self.k_blocks;
        ctx.pool.run_phases_catching(&[tasks], |_, _, range| {
            let mut acc = [0f32; LANES];
            for task in range {
                let b = task / (k_blocks * out_h);
                let kb = (task / out_h) % k_blocks;
                let oy = task % out_h;
                for ox in 0..out_w {
                    acc.fill(0.0);
                    let iy0 = (oy * spec.stride) as isize - spec.pad as isize;
                    let ix0 = (ox * spec.stride) as isize - spec.pad as isize;
                    for dy in 0..r {
                        let iy = iy0 + dy as isize;
                        if iy < 0 || iy as usize >= spec.h {
                            continue;
                        }
                        for dx in 0..r {
                            let ix = ix0 + dx as isize;
                            if ix < 0 || ix as usize >= spec.w {
                                continue;
                            }
                            for c in 0..spec.in_c {
                                let x = input.lanes(b, c / LANES, iy as usize, ix as usize)
                                    [c % LANES];
                                if x != 0.0 {
                                    let wbase =
                                        (((kb * spec.in_c + c) * r + dy) * r + dx) * LANES;
                                    let w = &wpack[wbase..wbase + LANES];
                                    for l in 0..LANES {
                                        acc[l] += x * w[l];
                                    }
                                }
                            }
                        }
                    }
                    // SAFETY: each (b, kb, oy) row is owned by one task.
                    unsafe {
                        let dst = out_ref.lanes_ptr_shared(b, kb, oy, ox);
                        core::ptr::copy_nonoverlapping(acc.as_ptr(), dst, LANES);
                    }
                }
            }
        })?;
        Ok(StageTimings {
            input_transform: std::time::Duration::ZERO,
            gemm: start.elapsed(),
            output_transform: std::time::Duration::ZERO,
        })
    }
}

/// Scalar NCHW reference convolution — deliberately naive, used to validate
/// every other implementation (including `DirectF32Conv` itself).
pub fn reference_conv_nchw(spec: &ConvShape, input: &Tensor4, weights: &Tensor4) -> Tensor4 {
    let (out_h, out_w) = (spec.out_h(), spec.out_w());
    let mut out = Tensor4::zeros(spec.batch, spec.out_c, out_h, out_w);
    for b in 0..spec.batch {
        for k in 0..spec.out_c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = 0f32;
                    for c in 0..spec.in_c {
                        for dy in 0..spec.r {
                            for dx in 0..spec.r {
                                let iy = (oy * spec.stride + dy) as isize - spec.pad as isize;
                                let ix = (ox * spec.stride + dx) as isize - spec.pad as isize;
                                acc += input.at_padded(b, c, iy, ix) * weights.at(k, c, dy, dx);
                            }
                        }
                    }
                    *out.at_mut(b, k, oy, ox) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_input(spec: &ConvShape) -> Tensor4 {
        Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b * 97 + c * 31 + y * 7 + x) as f32 * 0.23).sin()
        })
    }

    fn rand_weights(spec: &ConvShape) -> Tensor4 {
        Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
            ((k * 13 + c * 5 + y * 3 + x) as f32 * 0.71).cos() * 0.2
        })
    }

    fn check(spec: ConvShape, threads: usize) {
        let spec = spec.validate().unwrap();
        let input = rand_input(&spec);
        let weights = rand_weights(&spec);
        let want = reference_conv_nchw(&spec, &input, &weights);
        let img = BlockedImage::from_nchw(&input);
        let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
        let mut conv = DirectF32Conv::new(spec, &weights).unwrap();
        let mut ctx = ConvContext::new(threads);
        let t = conv.execute(&img, &mut out, &mut ctx).unwrap();
        assert!(t.total() > std::time::Duration::ZERO);
        let got = out.to_nchw();
        assert!(
            got.max_abs_diff(&want) < 1e-4,
            "diff {} (spec {spec:?})",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn matches_reference_same_padding() {
        check(ConvShape::same(2, 5, 9, 8, 3), 1);
    }

    #[test]
    fn matches_reference_no_padding() {
        check(
            ConvShape {
                batch: 1,
                in_c: 3,
                out_c: 4,
                h: 7,
                w: 9,
                r: 3,
                stride: 1,
                pad: 0,
            },
            2,
        );
    }

    #[test]
    fn matches_reference_strided() {
        check(
            ConvShape {
                batch: 1,
                in_c: 4,
                out_c: 70,
                h: 9,
                w: 9,
                r: 3,
                stride: 2,
                pad: 1,
            },
            2,
        );
    }

    #[test]
    fn matches_reference_5x5_filter() {
        check(
            ConvShape {
                batch: 1,
                in_c: 2,
                out_c: 2,
                h: 10,
                w: 10,
                r: 5,
                stride: 1,
                pad: 2,
            },
            1,
        );
    }

    #[test]
    fn matches_reference_many_channels() {
        check(ConvShape::same(1, 70, 130, 6, 3), 2);
    }

    #[test]
    fn wrong_weights_rejected() {
        let spec = ConvShape::same(1, 4, 4, 8, 3);
        assert!(DirectF32Conv::new(spec, &Tensor4::zeros(4, 4, 5, 5)).is_err());
    }
}
