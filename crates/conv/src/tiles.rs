//! Tile geometry helpers: gather input patches (with the zero-padding halo)
//! and scatter output tiles (with edge clipping) over the blocked layout.
//!
//! The input image is decomposed into `⌈H'/m⌉ × ⌈W'/m⌉` tiles per image with
//! an overlap of `r−1` (paper §2.2); ragged edge tiles read zeros outside
//! the image and write only the valid portion of the output.

use lowino_tensor::{BlockedImage, ConvShape, TileGeometry, LANES};

/// Decompose a global tile index into `(batch, tile_y, tile_x)`.
#[inline]
pub fn tile_coords(geom: &TileGeometry, tile: usize) -> (usize, usize, usize) {
    let b = tile / geom.per_image;
    let rem = tile % geom.per_image;
    (b, rem / geom.tiles_w, rem % geom.tiles_w)
}

/// Input-space origin (top-left of the `n×n` patch) of a tile, including
/// the padding offset — may be negative.
#[inline]
pub fn tile_origin(spec: &ConvShape, geom: &TileGeometry, ty: usize, tx: usize) -> (isize, isize) {
    (
        (ty * geom.m) as isize - spec.pad as isize,
        (tx * geom.m) as isize - spec.pad as isize,
    )
}

/// Gather an `n×n×64` patch from the blocked image into `dst`
/// (row-major tile slots of 64 lanes), reading zeros outside the image.
pub fn gather_patch(
    img: &BlockedImage,
    b: usize,
    c_block: usize,
    y0: isize,
    x0: isize,
    n: usize,
    dst: &mut [f32],
) {
    debug_assert!(dst.len() >= n * n * LANES);
    for i in 0..n {
        for j in 0..n {
            let slot = (i * n + j) * LANES;
            img.read_lanes_padded(
                b,
                c_block,
                y0 + i as isize,
                x0 + j as isize,
                &mut dst[slot..slot + LANES],
            );
        }
    }
}

/// Scatter an `m×m×64` output tile into the blocked output image, clipping
/// rows/columns that fall outside `H'×W'` (ragged edge tiles).
///
/// # Safety
///
/// Uses `lanes_ptr_shared`; the caller's schedule must guarantee that no
/// other thread writes the same output tile (output tiles never overlap, so
/// partitioning by tile index is sufficient).
pub unsafe fn scatter_output_tile(
    out: &BlockedImage,
    b: usize,
    k_block: usize,
    oy0: usize,
    ox0: usize,
    m: usize,
    src: &[f32],
) {
    let (_, _, out_h, out_w) = out.dims();
    debug_assert!(src.len() >= m * m * LANES);
    for i in 0..m {
        let y = oy0 + i;
        if y >= out_h {
            break;
        }
        for j in 0..m {
            let x = ox0 + j;
            if x >= out_w {
                break;
            }
            let slot = (i * m + j) * LANES;
            let dst = out.lanes_ptr_shared(b, k_block, y, x);
            core::ptr::copy_nonoverlapping(src.as_ptr().add(slot), dst, LANES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::Tensor4;

    #[test]
    fn tile_coords_round_trip() {
        let spec = ConvShape::same(3, 64, 64, 10, 3).validate().unwrap();
        let geom = spec.tiles(4).unwrap();
        assert_eq!(geom.tiles_h, 3);
        assert_eq!(geom.per_image, 9);
        assert_eq!(tile_coords(&geom, 0), (0, 0, 0));
        assert_eq!(tile_coords(&geom, 5), (0, 1, 2));
        assert_eq!(tile_coords(&geom, 9), (1, 0, 0));
        assert_eq!(tile_coords(&geom, 26), (2, 2, 2));
    }

    #[test]
    fn tile_origin_includes_padding() {
        let spec = ConvShape::same(1, 64, 64, 8, 3).validate().unwrap();
        let geom = spec.tiles(2).unwrap();
        assert_eq!(tile_origin(&spec, &geom, 0, 0), (-1, -1));
        assert_eq!(tile_origin(&spec, &geom, 1, 2), (1, 3));
    }

    #[test]
    fn gather_reads_padding_zeros() {
        let t = Tensor4::from_fn(1, 1, 4, 4, |_, _, y, x| (y * 4 + x + 1) as f32);
        let img = BlockedImage::from_nchw(&t);
        let mut patch = vec![9.0f32; 4 * 4 * LANES];
        gather_patch(&img, 0, 0, -1, -1, 4, &mut patch);
        // Slot (0,0) is outside -> zeros; slot (1,1) is image (0,0) = 1.
        assert_eq!(patch[0], 0.0);
        assert_eq!(patch[(4 + 1) * LANES], 1.0);
        // Channel lane 1 is padding (C = 1) -> zero.
        assert_eq!(patch[(4 + 1) * LANES + 1], 0.0);
        assert_eq!(patch[(2 * 4 + 2) * LANES], 6.0); // image (1,1)
    }

    #[test]
    fn scatter_clips_ragged_edges() {
        let out = BlockedImage::zeros(1, 64, 5, 5);
        let mut tile = vec![0.0f32; 4 * 4 * LANES];
        for i in 0..4 {
            for j in 0..4 {
                tile[(i * 4 + j) * LANES] = (10 * i + j) as f32;
            }
        }
        // Place the 4x4 tile at (3, 3) of a 5x5 output: only 2x2 fits.
        // SAFETY: single-threaded test.
        unsafe { scatter_output_tile(&out, 0, 0, 3, 3, 4, &tile) };
        let nchw = out.to_nchw();
        assert_eq!(nchw.at(0, 0, 3, 3), 0.0 * 1.0);
        assert_eq!(nchw.at(0, 0, 3, 4), 1.0);
        assert_eq!(nchw.at(0, 0, 4, 3), 10.0);
        assert_eq!(nchw.at(0, 0, 4, 4), 11.0);
        // Nothing outside was touched (no panic = no OOB write).
        assert_eq!(nchw.at(0, 0, 2, 2), 0.0);
    }
}
