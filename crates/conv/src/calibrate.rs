//! Activation calibration for the quantized convolutions (paper §3, Eq. 7).
//!
//! * [`calibrate_spatial`] — spatial-domain threshold over raw activations,
//!   used by the direct-INT8, down-scaling and up-casting baselines (they
//!   quantize *before* the Winograd transform);
//! * [`calibrate_winograd_domain`] — **LoWino's calibration**: the sample
//!   activations are pushed through the `Bᵀ d B` transform first and the
//!   KL search runs on the *transformed* distribution, so the chosen `τ`
//!   (and hence `α_V`) lives in the Winograd domain where the actual
//!   quantization happens.

use lowino_quant::{calibrate_kl, Histogram, QParams};
use lowino_tensor::{BlockedImage, ConvShape, LANES};
use lowino_winograd::TileTransformer;

use crate::error::ConvError;
use crate::tiles::{gather_patch, tile_coords, tile_origin};

/// Histogram bin count used by all calibrations (TensorRT convention).
const CAL_BINS: usize = 2048;

/// Degenerate-distribution guard shared by all calibrations: a sample set
/// with no finite values, or one that is identically zero, has no dynamic
/// range — the KL search would return `τ = 0` and the resulting scale
/// would silently zero out (or NaN out) every quantized activation. Fail
/// loudly at calibration time instead.
///
/// For per-position calibration the check passes as long as *any* position
/// saw real data (quiet corner positions of a sparse input may legitimately
/// be all-zero). Also carries the `calibrate/samples` fault site so the
/// error path can be exercised with healthy data.
fn check_distribution(what: &str, hists: &[&Histogram]) -> Result<(), ConvError> {
    if lowino_testkit::faults::CALIBRATE_SAMPLES.fire() {
        return Err(ConvError::Calibration(format!(
            "injected fault: calibrate/samples ({what})"
        )));
    }
    if hists.iter().all(|h| h.total() == 0) {
        return Err(ConvError::Calibration(format!(
            "{what}: samples contain no finite values"
        )));
    }
    if hists.iter().all(|h| h.max_abs() == 0.0) {
        return Err(ConvError::Calibration(format!(
            "{what}: samples are identically zero (no dynamic range to calibrate)"
        )));
    }
    Ok(())
}

/// Spatial-domain KL calibration over raw activation samples.
///
/// Only logical channels are histogrammed — the blocked layout's zero
/// padding lanes would otherwise flood the distribution with structural
/// zeros and bias the KL search toward tiny thresholds.
pub fn calibrate_spatial(samples: &[BlockedImage]) -> Result<QParams, ConvError> {
    if samples.is_empty() {
        return Err(ConvError::Calibration("empty sample set".into()));
    }
    let mut hist = Histogram::new(CAL_BINS);
    for s in samples {
        let (b_dim, c_dim, h, w) = s.dims();
        for b in 0..b_dim {
            for cb in 0..s.c_blocks() {
                let real = (c_dim - cb * LANES).min(LANES);
                for y in 0..h {
                    for x in 0..w {
                        hist.record(&s.lanes(b, cb, y, x)[..real]);
                    }
                }
            }
        }
    }
    check_distribution("calibrate_spatial", &[&hist])?;
    Ok(QParams::from_threshold(calibrate_kl(&hist).tau))
}

/// Winograd-domain KL calibration (the LoWino scheme): every tile of every
/// sample is transformed with `Bᵀ·B` for `F(m, r)` and the histogram is
/// collected over the transformed values.
pub fn calibrate_winograd_domain(
    spec: &ConvShape,
    m: usize,
    samples: &[BlockedImage],
) -> Result<QParams, ConvError> {
    if samples.is_empty() {
        return Err(ConvError::Calibration("empty sample set".into()));
    }
    let tt = TileTransformer::new(m, spec.r)?;
    let geom = spec.tiles(m)?;
    let n = geom.n;
    let mut hist = Histogram::new(CAL_BINS);
    let mut scratch = tt.make_scratch(LANES);
    let mut patch = vec![0f32; n * n * LANES];
    let mut v = vec![0f32; n * n * LANES];
    for sample in samples {
        let (b_dim, c_dim, h, w) = sample.dims();
        if (c_dim, h, w) != (spec.in_c, spec.h, spec.w) {
            return Err(ConvError::Calibration(format!(
                "sample dims ({c_dim},{h},{w}) don't match spec ({},{},{})",
                spec.in_c, spec.h, spec.w
            )));
        }
        let tiles = b_dim * geom.per_image;
        for tile in 0..tiles {
            let (b, ty, tx) = tile_coords(&geom, tile);
            let (y0, x0) = tile_origin(spec, &geom, ty, tx);
            for cb in 0..sample.c_blocks() {
                gather_patch(sample, b, cb, y0, x0, n, &mut patch);
                tt.input_tile_f32(&patch, &mut v, &mut scratch);
                // Only histogram real channels (padding lanes are zero and
                // would skew the distribution toward 0).
                let real = (spec.in_c - cb * LANES).min(LANES);
                if real == LANES {
                    hist.record(&v);
                } else {
                    for slot in 0..n * n {
                        hist.record(&v[slot * LANES..slot * LANES + real]);
                    }
                }
            }
        }
    }
    check_distribution("calibrate_winograd_domain", &[&hist])?;
    Ok(QParams::from_threshold(calibrate_kl(&hist).tau))
}

/// Per-tile-position Winograd-domain calibration: one threshold per
/// position `t ∈ 0..(m+r−1)²`.
///
/// The transform coefficients differ wildly across tile positions for
/// large tiles (the corner rows of `Bᵀ⟨6,3⟩` amplify ~27× more than the
/// central ones), so a single per-tensor scale wastes most of the INT8
/// range on the quiet positions. Per-position scales fix this — the
/// granularity extension evaluated in the scale-granularity ablation, and
/// what makes `F(6×6)` LoWino usable.
pub fn calibrate_winograd_domain_per_position(
    spec: &ConvShape,
    m: usize,
    samples: &[BlockedImage],
) -> Result<Vec<QParams>, ConvError> {
    if samples.is_empty() {
        return Err(ConvError::Calibration("empty sample set".into()));
    }
    let tt = TileTransformer::new(m, spec.r)?;
    let geom = spec.tiles(m)?;
    let n = geom.n;
    let t_count = geom.t();
    let mut hists: Vec<Histogram> = (0..t_count).map(|_| Histogram::new(CAL_BINS)).collect();
    let mut scratch = tt.make_scratch(LANES);
    let mut patch = vec![0f32; n * n * LANES];
    let mut v = vec![0f32; n * n * LANES];
    for sample in samples {
        let (b_dim, c_dim, h, w) = sample.dims();
        if (c_dim, h, w) != (spec.in_c, spec.h, spec.w) {
            return Err(ConvError::Calibration(format!(
                "sample dims ({c_dim},{h},{w}) don't match spec ({},{},{})",
                spec.in_c, spec.h, spec.w
            )));
        }
        let tiles = b_dim * geom.per_image;
        for tile in 0..tiles {
            let (b, ty, tx) = tile_coords(&geom, tile);
            let (y0, x0) = tile_origin(spec, &geom, ty, tx);
            for cb in 0..sample.c_blocks() {
                gather_patch(sample, b, cb, y0, x0, n, &mut patch);
                tt.input_tile_f32(&patch, &mut v, &mut scratch);
                let real = (spec.in_c - cb * LANES).min(LANES);
                for (t, hist) in hists.iter_mut().enumerate() {
                    hist.record(&v[t * LANES..t * LANES + real]);
                }
            }
        }
    }
    let refs: Vec<&Histogram> = hists.iter().collect();
    check_distribution("calibrate_winograd_domain_per_position", &refs)?;
    Ok(hists
        .iter()
        .map(|h| QParams::from_threshold(calibrate_kl(h).tau))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::Tensor4;
    use lowino_winograd::range_growth_2d;

    fn sample_image(spec: &ConvShape, scale: f32) -> BlockedImage {
        let t = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
            ((b + c * 3 + y * 7 + x * 11) as f32 * 0.17).sin() * scale
        });
        BlockedImage::from_nchw(&t)
    }

    #[test]
    fn spatial_calibration_covers_data() {
        let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
        let q = calibrate_spatial(&[sample_image(&spec, 2.0)]).unwrap();
        // τ within (0, max]; for this smooth data it should be near max.
        assert!(q.tau() > 0.5 && q.tau() <= 2.01, "tau={}", q.tau());
    }

    #[test]
    fn winograd_domain_tau_reflects_range_growth() {
        // The transformed values are amplified by up to growth(m); the
        // Winograd-domain τ must be substantially larger than the spatial
        // one — this is the heart of the LoWino scheme (Fig. 9).
        let spec = ConvShape::same(1, 8, 8, 12, 3).validate().unwrap();
        let samples = [sample_image(&spec, 1.0)];
        let spatial = calibrate_spatial(&samples).unwrap();
        let wd2 = calibrate_winograd_domain(&spec, 2, &samples).unwrap();
        let wd4 = calibrate_winograd_domain(&spec, 4, &samples).unwrap();
        assert!(wd2.tau() > spatial.tau(), "{} vs {}", wd2.tau(), spatial.tau());
        assert!(wd4.tau() > wd2.tau(), "{} vs {}", wd4.tau(), wd2.tau());
        // And bounded by the analytic growth.
        let g4 = range_growth_2d(4, 3).unwrap() as f32;
        assert!(wd4.tau() <= spatial.tau() * g4 * 1.1);
    }

    #[test]
    fn empty_samples_error() {
        let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
        assert!(calibrate_spatial(&[]).is_err());
        assert!(calibrate_winograd_domain(&spec, 2, &[]).is_err());
    }

    #[test]
    fn all_zero_samples_error() {
        let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
        let zero = BlockedImage::zeros(1, 8, 10, 10);
        let err = calibrate_spatial(std::slice::from_ref(&zero)).unwrap_err();
        assert!(err.to_string().contains("identically zero"), "{err}");
        assert!(calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&zero)).is_err());
        assert!(
            calibrate_winograd_domain_per_position(&spec, 2, std::slice::from_ref(&zero)).is_err()
        );
    }

    #[test]
    fn all_non_finite_samples_error() {
        let t = Tensor4::from_fn(1, 8, 10, 10, |_, _, _, _| f32::NAN);
        let nan = BlockedImage::from_nchw(&t);
        let err = calibrate_spatial(std::slice::from_ref(&nan)).unwrap_err();
        assert!(err.to_string().contains("no finite values"), "{err}");
    }

    #[test]
    fn mismatched_sample_dims_error() {
        let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
        let wrong = BlockedImage::zeros(1, 8, 11, 11);
        let err = calibrate_winograd_domain(&spec, 2, &[wrong]).unwrap_err();
        assert!(matches!(err, ConvError::Calibration(_)));
    }
}
