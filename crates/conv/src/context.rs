//! Shared execution resources: thread pool, SIMD tier, wisdom.

use lowino_gemm::Wisdom;
use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

use crate::scratch::ScratchArena;

/// What `execute` does when the input tensor contains NaN/±inf values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Don't look: non-finite values flow through the kernels (quantization
    /// maps them to clamped integers; f32 paths propagate them). Zero
    /// per-execute scan cost — the default, preserving the zero-overhead
    /// steady state.
    #[default]
    Propagate,
    /// Scan the input up front and fail with
    /// [`ExecError::NonFiniteInput`](crate::ExecError::NonFiniteInput)
    /// before any work starts. One linear pass over the input per execute.
    Reject,
}

/// Execution context shared across layers: the static-scheduling thread
/// pool (paper §4.4), the detected SIMD tier, the auto-tuning wisdom
/// (§4.3.4), and the persistent per-worker scratch arena the executors'
/// phase bodies draw their working buffers from.
pub struct ConvContext {
    /// Fork-join pool; worker count fixed at construction.
    pub pool: StaticPool,
    /// Instruction tier all kernels run on.
    pub tier: SimdTier,
    /// Tuned GEMM blockings.
    pub wisdom: Wisdom,
    /// One scratch slot per pool worker, reused across stages and layers.
    pub scratch: ScratchArena,
    /// How `execute` treats NaN/±inf input values.
    pub non_finite: NonFinitePolicy,
}

impl ConvContext {
    /// Context with `threads` execution slots and the best available tier.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: StaticPool::new(threads),
            tier: SimdTier::detect(),
            wisdom: Wisdom::new(),
            scratch: ScratchArena::new(threads),
            non_finite: NonFinitePolicy::default(),
        }
    }

    /// Context pinned to a specific tier (ablation benches).
    pub fn with_tier(threads: usize, tier: SimdTier) -> Self {
        Self {
            pool: StaticPool::new(threads),
            tier,
            wisdom: Wisdom::new(),
            scratch: ScratchArena::new(threads),
            non_finite: NonFinitePolicy::default(),
        }
    }

    /// Number of execution slots.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let ctx = ConvContext::new(2);
        assert_eq!(ctx.threads(), 2);
        assert_eq!(ctx.scratch.workers(), 2);
        assert_eq!(ctx.tier, SimdTier::detect());
        let ctx = ConvContext::with_tier(1, SimdTier::Scalar);
        assert_eq!(ctx.tier, SimdTier::Scalar);
        assert!(ctx.wisdom.is_empty());
    }
}
