//! Shared execution resources: thread pool, SIMD tier, wisdom, tuning.

use lowino_gemm::{
    Blocking, GemmShape, RetuneConfig, SeedSource, TunePolicy, TuneRuntime, Wisdom,
};
use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

use crate::scratch::ScratchArena;

/// What `execute` does when the input tensor contains NaN/±inf values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Don't look: non-finite values flow through the kernels (quantization
    /// maps them to clamped integers; f32 paths propagate them). Zero
    /// per-execute scan cost — the default, preserving the zero-overhead
    /// steady state.
    #[default]
    Propagate,
    /// Scan the input up front and fail with
    /// [`ExecError::NonFiniteInput`](crate::ExecError::NonFiniteInput)
    /// before any work starts. One linear pass over the input per execute.
    Reject,
}

/// Execution context shared across layers: the static-scheduling thread
/// pool (paper §4.4), the detected SIMD tier, the auto-tuning wisdom
/// (§4.3.4), the Autotuner 2.0 runtime (seeding policy, published retune
/// table, optional background retuner), and the persistent per-worker
/// scratch arena the executors' phase bodies draw their working buffers
/// from.
pub struct ConvContext {
    /// Fork-join pool; worker count fixed at construction.
    pub pool: StaticPool,
    /// Instruction tier all kernels run on.
    pub tier: SimdTier,
    /// Tuned GEMM blockings.
    pub wisdom: Wisdom,
    /// One scratch slot per pool worker, reused across stages and layers.
    pub scratch: ScratchArena,
    /// How `execute` treats NaN/±inf input values.
    pub non_finite: NonFinitePolicy,
    /// Autotuner 2.0: seeding policy + published-winner table + retuner.
    pub tune: TuneRuntime,
}

impl ConvContext {
    /// Context with `threads` execution slots and the best available tier.
    /// Tuning policy comes from `LOWINO_RETUNE` (default: seed-only, no
    /// thread) and wisdom from `LOWINO_WISDOM` (unreadable files degrade
    /// to empty wisdom). The retuner thread is *not* spawned here even
    /// under `background` — use [`Self::with_tuning`] or
    /// `Engine::builder` for that.
    pub fn new(threads: usize) -> Self {
        Self::with_tier(threads, SimdTier::detect())
    }

    /// Context pinned to a specific tier (ablation benches). Same env
    /// wiring as [`Self::new`].
    pub fn with_tier(threads: usize, tier: SimdTier) -> Self {
        let wisdom = match std::env::var("LOWINO_WISDOM") {
            Ok(path) => Wisdom::load(std::path::Path::new(&path)).unwrap_or_default(),
            Err(_) => Wisdom::new(),
        };
        Self::with_tuning(threads, tier, TunePolicy::from_env(), wisdom, None)
    }

    /// Fully explicit construction: tuning policy, wisdom, and (when the
    /// policy is [`TunePolicy::Background`] and `retune` is `Some`) a
    /// background retuner spawned with the given config. Passing `retune:
    /// None` under `Background` gives the policy's lookup/hotness
    /// behaviour without a thread — useful for tests that publish into
    /// the table by hand.
    pub fn with_tuning(
        threads: usize,
        tier: SimdTier,
        policy: TunePolicy,
        wisdom: Wisdom,
        retune: Option<RetuneConfig>,
    ) -> Self {
        let mut tune = TuneRuntime::new(policy);
        if policy == TunePolicy::Background {
            if let Some(cfg) = retune {
                tune.start_retuner(cfg, wisdom.clone());
            }
        }
        Self {
            pool: StaticPool::new(threads),
            tier,
            wisdom,
            scratch: ScratchArena::new(threads),
            non_finite: NonFinitePolicy::default(),
            tune,
        }
    }

    /// Number of execution slots.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Resolve the blocking an executor should run `shape` with, in
    /// priority order: published retune winner → compile-time/manual
    /// override → wisdom/cost-model seed (or the static default when the
    /// policy is [`TunePolicy::Off`]). Steady-state allocation-free; never
    /// measures.
    pub fn gemm_blocking(&self, shape: &GemmShape, override_: Option<Blocking>) -> Blocking {
        if let Some(published) = self.tune.lookup(self.tier, shape) {
            return published;
        }
        if let Some(b) = override_ {
            return b;
        }
        match self.tune.policy() {
            TunePolicy::Off => self.wisdom.blocking_or_default(self.tier, shape),
            _ => self.wisdom.blocking_for(self.tier, shape).0,
        }
    }

    /// The compile-time seed for `shape`: exact wisdom → shape-class
    /// wisdom → cost-model argmin (never a measurement). Emits one
    /// `tune/seeded` instant whose payload encodes the [`SeedSource`].
    /// Under [`TunePolicy::Off`] only exact wisdom or the static default
    /// are used (pre-autotuner behaviour).
    pub fn seed_blocking(&self, shape: &GemmShape) -> Blocking {
        let (blocking, src) = match self.tune.policy() {
            TunePolicy::Off => match self.wisdom.get(self.tier, shape) {
                Some(b) => (b, SeedSource::Exact),
                None => (Blocking::default_for(shape), SeedSource::Default),
            },
            _ => self.wisdom.blocking_for(self.tier, shape),
        };
        lowino_trace::instant("tune/seeded", src.as_u64());
        blocking
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let ctx = ConvContext::new(2);
        assert_eq!(ctx.threads(), 2);
        assert_eq!(ctx.scratch.workers(), 2);
        assert_eq!(ctx.tier, SimdTier::detect());
        let ctx = ConvContext::with_tier(1, SimdTier::Scalar);
        assert_eq!(ctx.tier, SimdTier::Scalar);
        assert!(ctx.wisdom.is_empty());
        assert!(!ctx.tune.is_retuning());
    }

    #[test]
    fn blocking_resolution_order() {
        let shape = GemmShape { t: 4, n: 100, c: 32, k: 64 };
        let override_b = Blocking { n_blk: 50, c_blk: 32, k_blk: 64, row_blk: 4, col_blk: 2 };
        let published = Blocking { n_blk: 25, c_blk: 32, k_blk: 64, row_blk: 2, col_blk: 2 };

        let mut ctx = ConvContext::with_tuning(
            1,
            SimdTier::Scalar,
            TunePolicy::SeedOnly,
            Wisdom::new(),
            None,
        );
        // No override, empty wisdom: cost-model seed, still valid.
        assert!(ctx.gemm_blocking(&shape, None).validate().is_ok());
        // Override beats the seed...
        assert_eq!(ctx.gemm_blocking(&shape, Some(override_b)), override_b);
        // ...but a published winner beats the override.
        ctx.tune.shared().publish(SimdTier::Scalar, &shape, published);
        assert_eq!(ctx.gemm_blocking(&shape, Some(override_b)), published);
        // Exact wisdom wins over the model when nothing is published.
        let other = GemmShape { t: 2, n: 64, c: 16, k: 64 };
        ctx.wisdom.insert(SimdTier::Scalar, &other, override_b);
        assert_eq!(ctx.gemm_blocking(&other, None), override_b);
    }

    #[test]
    fn off_policy_ignores_published_table() {
        let shape = GemmShape { t: 4, n: 100, c: 32, k: 64 };
        let published = Blocking { n_blk: 25, c_blk: 32, k_blk: 64, row_blk: 2, col_blk: 2 };
        let ctx = ConvContext::with_tuning(
            1,
            SimdTier::Scalar,
            TunePolicy::Off,
            Wisdom::new(),
            None,
        );
        ctx.tune.shared().publish(SimdTier::Scalar, &shape, published);
        assert_eq!(ctx.gemm_blocking(&shape, None), Blocking::default_for(&shape));
        assert_eq!(ctx.seed_blocking(&shape), Blocking::default_for(&shape));
    }
}
