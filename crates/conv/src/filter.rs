//! Offline filter transformation and packing (paper §4.2.2).
//!
//! Filters are known ahead of inference, so everything here runs offline
//! and is excluded from the reported stage timings. For the Winograd
//! algorithms each `r×r` filter channel is transformed to `U = G g Gᵀ`
//! (n×n), quantized (scheme-dependent), and reorganised into the VNNI
//! interleave together with the compensation rows of Eq. 9.

use lowino_gemm::{UPanel, UPanelF32, UPanelI16};
use lowino_quant::QParams;
use lowino_simd::vecf32::VecTier;
use lowino_simd::{saturate_to_i8, SimdTier};
use lowino_tensor::{ConvShape, Tensor4, TileGeometry};
use lowino_winograd::TileTransformer;

use crate::error::{check_weights, ConvError};

/// Transform every `(k, c)` filter channel to the Winograd domain.
/// Returns a `[k][c][t]`-indexed flat vector (`t = n²` values per channel).
pub fn transform_filters_f32(
    spec: &ConvShape,
    tt: &TileTransformer,
    weights: &Tensor4,
) -> Result<Vec<f32>, ConvError> {
    check_weights(spec, weights)?;
    let (kk, cc, r, _) = weights.dims();
    let n = tt.n();
    let t_count = n * n;
    let vt = VecTier::for_simd(SimdTier::detect());
    let mut out = vec![0f32; kk * cc * t_count];
    let mut scratch = tt.make_scratch(1);
    let mut g = vec![0f32; r * r];
    let mut u = vec![0f32; t_count];
    for k in 0..kk {
        for c in 0..cc {
            for dy in 0..r {
                for dx in 0..r {
                    g[dy * r + dx] = weights.at(k, c, dy, dx);
                }
            }
            tt.filter_tile_f32_compiled(vt, &g, &mut u, &mut scratch);
            out[(k * cc + c) * t_count..(k * cc + c) * t_count + t_count].copy_from_slice(&u);
        }
    }
    Ok(out)
}

/// LoWino filter packing: transform in f32, quantize **in the Winograd
/// domain** with a per-tensor max-abs scale `α_U` (the filters are fully
/// known, so max-abs is exact — no calibration needed), interleave, and
/// compute the compensation rows.
pub fn pack_filters_lowino(
    spec: &ConvShape,
    geom: &TileGeometry,
    tt: &TileTransformer,
    weights: &Tensor4,
) -> Result<(UPanel, QParams), ConvError> {
    let transformed = transform_filters_f32(spec, tt, weights)?;
    let alpha_u = QParams::from_max_abs(&transformed);
    let t_count = geom.t();
    let (kk, cc) = (spec.out_c, spec.in_c);
    let mut panel = UPanel::new(t_count, cc, kk);
    for k in 0..kk {
        for c in 0..cc {
            let base = (k * cc + c) * t_count;
            for t in 0..t_count {
                panel.set(t, c, k, alpha_u.quantize(transformed[base + t]));
            }
        }
    }
    panel.finalize_compensation();
    Ok((panel, alpha_u))
}

/// LoWino filter packing with **per-tile-position** scales: one max-abs
/// `α_U[t]` per position `t`. Required for large tiles (see
/// [`crate::calibrate::calibrate_winograd_domain_per_position`]).
pub fn pack_filters_lowino_per_position(
    spec: &ConvShape,
    geom: &TileGeometry,
    tt: &TileTransformer,
    weights: &Tensor4,
) -> Result<(UPanel, Vec<QParams>), ConvError> {
    let transformed = transform_filters_f32(spec, tt, weights)?;
    let t_count = geom.t();
    let (kk, cc) = (spec.out_c, spec.in_c);
    let mut alphas = vec![0f32; t_count];
    for k in 0..kk {
        for c in 0..cc {
            let base = (k * cc + c) * t_count;
            for t in 0..t_count {
                alphas[t] = alphas[t].max(transformed[base + t].abs());
            }
        }
    }
    let alphas: Vec<QParams> = alphas
        .into_iter()
        .map(QParams::from_threshold)
        .collect();
    let mut panel = UPanel::new(t_count, cc, kk);
    for k in 0..kk {
        for c in 0..cc {
            let base = (k * cc + c) * t_count;
            for t in 0..t_count {
                panel.set(t, c, k, alphas[t].quantize(transformed[base + t]));
            }
        }
    }
    panel.finalize_compensation();
    Ok((panel, alphas))
}

/// FP32 Winograd filter packing (no quantization).
pub fn pack_filters_f32(
    spec: &ConvShape,
    geom: &TileGeometry,
    tt: &TileTransformer,
    weights: &Tensor4,
) -> Result<UPanelF32, ConvError> {
    let transformed = transform_filters_f32(spec, tt, weights)?;
    let t_count = geom.t();
    let (kk, cc) = (spec.out_c, spec.in_c);
    let mut panel = UPanelF32::new(t_count, cc, kk);
    for k in 0..kk {
        for c in 0..cc {
            let base = (k * cc + c) * t_count;
            for t in 0..t_count {
                panel.row_mut(t, c)[k] = transformed[base + t];
            }
        }
    }
    Ok(panel)
}

/// Up-casting filter packing (ncnn-style): transform in f32, quantize to
/// INT8 range, *widen to INT16* for the `vpdpwssd` multiply stage.
pub fn pack_filters_upcast(
    spec: &ConvShape,
    geom: &TileGeometry,
    tt: &TileTransformer,
    weights: &Tensor4,
) -> Result<(UPanelI16, QParams), ConvError> {
    let transformed = transform_filters_f32(spec, tt, weights)?;
    let alpha_u = QParams::from_max_abs(&transformed);
    let t_count = geom.t();
    let (kk, cc) = (spec.out_c, spec.in_c);
    let mut panel = UPanelI16::new(t_count, cc, kk);
    for k in 0..kk {
        for c in 0..cc {
            let base = (k * cc + c) * t_count;
            for t in 0..t_count {
                panel.set(t, c, k, i16::from(alpha_u.quantize(transformed[base + t])));
            }
        }
    }
    Ok((panel, alpha_u))
}

/// Direct-INT8 filter packing: spatial-domain max-abs quantization into an
/// `r²`-position panel — one tile position per filter offset `(dy, dx)`,
/// consumed by [`crate::DirectInt8Conv`]'s implicit-GEMM offset passes.
pub fn pack_filters_direct_i8(
    spec: &ConvShape,
    weights: &Tensor4,
) -> Result<(UPanel, QParams), ConvError> {
    check_weights(spec, weights)?;
    let alpha_u = QParams::from_max_abs(weights.data());
    let r = spec.r;
    let mut panel = UPanel::new(r * r, spec.in_c, spec.out_c);
    for k in 0..spec.out_c {
        for c in 0..spec.in_c {
            for dy in 0..r {
                for dx in 0..r {
                    panel.set(dy * r + dx, c, k, alpha_u.quantize(weights.at(k, c, dy, dx)));
                }
            }
        }
    }
    panel.finalize_compensation();
    Ok((panel, alpha_u))
}

/// Saturating helper shared with the executors (re-exported so the quant
/// crate's local copy stays pinned to the simd one).
#[inline]
pub fn quantize_pin_check(x: f32) -> i8 {
    saturate_to_i8(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_and_weights() -> (ConvShape, Tensor4) {
        let spec = ConvShape::same(1, 4, 6, 8, 3).validate().unwrap();
        let w = Tensor4::from_fn(6, 4, 3, 3, |k, c, y, x| {
            ((k * 11 + c * 7 + y * 3 + x) as f32 * 0.31).sin() * 0.5
        });
        (spec, w)
    }

    #[test]
    fn transform_matches_scalar_reference() {
        let (spec, w) = spec_and_weights();
        let tt = TileTransformer::new(2, 3).unwrap();
        let tf = transform_filters_f32(&spec, &tt, &w).unwrap();
        // Spot-check one channel against the one-shot helper.
        let mut g = vec![0f32; 9];
        for dy in 0..3 {
            for dx in 0..3 {
                g[dy * 3 + dx] = w.at(3, 2, dy, dx);
            }
        }
        let want = lowino_winograd::filter_transform_f32(2, 3, &g).unwrap();
        let base = (3 * 4 + 2) * 16;
        for t in 0..16 {
            assert!((tf[base + t] - want[t]).abs() < 1e-5);
        }
    }

    #[test]
    fn lowino_packing_quantizes_in_winograd_domain() {
        let (spec, w) = spec_and_weights();
        let tt = TileTransformer::new(4, 3).unwrap();
        let geom = spec.tiles(4).unwrap();
        let (panel, alpha_u) = pack_filters_lowino(&spec, &geom, &tt, &w).unwrap();
        let tf = transform_filters_f32(&spec, &tt, &w).unwrap();
        // The max transformed magnitude maps to ±127.
        let max = tf.iter().fold(0f32, |m, &v| m.max(v.abs()));
        assert!((alpha_u.tau() - max).abs() < 1e-5);
        // Every packed value equals quantize(transformed).
        for k in 0..6 {
            for c in 0..4 {
                for t in 0..36 {
                    assert_eq!(
                        panel.get(t, c, k),
                        alpha_u.quantize(tf[(k * 4 + c) * 36 + t]),
                    );
                }
            }
        }
        // Compensation rows are populated.
        assert!(panel.zbar(0).iter().any(|&z| z != 0));
    }

    #[test]
    fn upcast_packing_widens_but_preserves_values() {
        let (spec, w) = spec_and_weights();
        let tt = TileTransformer::new(2, 3).unwrap();
        let geom = spec.tiles(2).unwrap();
        let (panel, alpha_u) = pack_filters_upcast(&spec, &geom, &tt, &w).unwrap();
        let (p8, a8) = pack_filters_lowino(&spec, &geom, &tt, &w).unwrap();
        assert_eq!(alpha_u.alpha, a8.alpha);
        for k in 0..6 {
            for c in 0..4 {
                for t in 0..16 {
                    assert_eq!(panel.get(t, c, k), i16::from(p8.get(t, c, k)));
                }
            }
        }
    }

    #[test]
    fn direct_i8_packing_uses_offset_positions() {
        let (spec, w) = spec_and_weights();
        let (panel, alpha_u) = pack_filters_direct_i8(&spec, &w).unwrap();
        let (t, c, _, k, _) = panel.dims();
        assert_eq!(t, 9);
        assert_eq!(c, 4);
        assert_eq!(k, 6);
        // Element (dy=1, dx=2, c=3, k=5) lives at position t = 5.
        assert_eq!(panel.get(5, 3, 5), alpha_u.quantize(w.at(5, 3, 1, 2)));
        // Padded channels are zero.
        assert_eq!(panel.get(5, 10, 5), 0);
    }

    #[test]
    fn wrong_weight_shape_rejected() {
        let (spec, _) = spec_and_weights();
        let bad = Tensor4::zeros(6, 4, 5, 5);
        let tt = TileTransformer::new(2, 3).unwrap();
        assert!(transform_filters_f32(&spec, &tt, &bad).is_err());
    }
}
