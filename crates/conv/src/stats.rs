//! Per-stage execution timing (the data behind paper Fig. 10).

use std::time::Duration;

/// Wall-clock breakdown of one convolution execution into the pipeline
/// stages of paper Fig. 3: the memory-bound transformations (input ①
/// and output ③) and the compute-bound matrix multiplication ②.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Input transformation (gather → transform → quantize → scatter).
    pub input_transform: Duration,
    /// Batched matrix multiplication.
    pub gemm: Duration,
    /// Output transformation (de-quantize → transform → scatter).
    pub output_transform: Duration,
}

impl StageTimings {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.input_transform + self.gemm + self.output_transform
    }

    /// Combined transformation time (the "Transformation" bar of Fig. 10).
    pub fn transform(&self) -> Duration {
        self.input_transform + self.output_transform
    }

    /// Element-wise accumulation — used when averaging repeated runs.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.input_transform += other.input_transform;
        self.gemm += other.gemm;
        self.output_transform += other.output_transform;
    }

    /// Divide all stages by `n` (average of `n` accumulated runs).
    pub fn scaled_down(&self, n: u32) -> StageTimings {
        StageTimings {
            input_transform: self.input_transform / n,
            gemm: self.gemm / n,
            output_transform: self.output_transform / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_averaging() {
        let a = StageTimings {
            input_transform: Duration::from_millis(2),
            gemm: Duration::from_millis(10),
            output_transform: Duration::from_millis(3),
        };
        assert_eq!(a.total(), Duration::from_millis(15));
        assert_eq!(a.transform(), Duration::from_millis(5));
        let mut acc = StageTimings::default();
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.gemm, Duration::from_millis(20));
        assert_eq!(acc.scaled_down(2), a);
    }
}
