//! Error type for convolution planning and execution.

use lowino_tensor::ShapeError;
use lowino_winograd::matrices::MatrixError;

/// Errors surfaced when constructing or running a convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// Invalid layer shape.
    Shape(ShapeError),
    /// Unsupported Winograd algorithm.
    Matrix(MatrixError),
    /// Weight tensor dimensions don't match the layer spec.
    WeightShape {
        /// Expected (K, C, r, r).
        expected: (usize, usize, usize, usize),
        /// What was provided.
        got: (usize, usize, usize, usize),
    },
    /// The algorithm can't support this configuration (with reason).
    Unsupported(String),
    /// Calibration failed (e.g. empty sample set).
    Calibration(String),
}

impl core::fmt::Display for ConvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConvError::Shape(e) => write!(f, "shape error: {e}"),
            ConvError::Matrix(e) => write!(f, "matrix error: {e}"),
            ConvError::WeightShape { expected, got } => {
                write!(f, "weight shape mismatch: expected {expected:?}, got {got:?}")
            }
            ConvError::Unsupported(s) => write!(f, "unsupported configuration: {s}"),
            ConvError::Calibration(s) => write!(f, "calibration error: {s}"),
        }
    }
}

impl std::error::Error for ConvError {}

impl From<ShapeError> for ConvError {
    fn from(e: ShapeError) -> Self {
        ConvError::Shape(e)
    }
}

impl From<MatrixError> for ConvError {
    fn from(e: MatrixError) -> Self {
        ConvError::Matrix(e)
    }
}

/// Validate a weight tensor against a spec; shared by all constructors.
pub(crate) fn check_weights(
    spec: &lowino_tensor::ConvShape,
    weights: &lowino_tensor::Tensor4,
) -> Result<(), ConvError> {
    let got = weights.dims();
    let expected = (spec.out_c, spec.in_c, spec.r, spec.r);
    if got != expected {
        return Err(ConvError::WeightShape { expected, got });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::{ConvShape, Tensor4};

    #[test]
    fn weight_check() {
        let spec = ConvShape::same(1, 4, 8, 6, 3);
        assert!(check_weights(&spec, &Tensor4::zeros(8, 4, 3, 3)).is_ok());
        let err = check_weights(&spec, &Tensor4::zeros(4, 8, 3, 3)).unwrap_err();
        assert!(matches!(err, ConvError::WeightShape { .. }));
        assert!(err.to_string().contains("weight shape mismatch"));
    }

    #[test]
    fn error_conversions_and_display() {
        let e: ConvError = ShapeError::ZeroDim("h").into();
        assert!(e.to_string().contains("shape error"));
        let e: ConvError = MatrixError::Unsupported { m: 9, r: 3 }.into();
        assert!(e.to_string().contains("F(9,3)"));
        assert!(ConvError::Unsupported("x".into()).to_string().contains("x"));
    }
}
