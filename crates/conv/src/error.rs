//! Error types for convolution planning and execution.
//!
//! [`ConvError`] covers planning/construction-time failures; [`ExecError`]
//! covers *runtime* failures of a prepared executor's `execute` call —
//! conditions a long-lived inference process must recover from (retry,
//! demote to a sturdier algorithm) rather than abort on.

use lowino_tensor::ShapeError;
use lowino_winograd::matrices::MatrixError;

/// Errors surfaced when constructing or running a convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// Invalid layer shape.
    Shape(ShapeError),
    /// Unsupported Winograd algorithm.
    Matrix(MatrixError),
    /// Weight tensor dimensions don't match the layer spec.
    WeightShape {
        /// Expected (K, C, r, r).
        expected: (usize, usize, usize, usize),
        /// What was provided.
        got: (usize, usize, usize, usize),
    },
    /// The algorithm can't support this configuration (with reason).
    Unsupported(String),
    /// Calibration failed (e.g. empty sample set).
    Calibration(String),
    /// A prepared executor failed at runtime.
    Exec(ExecError),
}

impl core::fmt::Display for ConvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConvError::Shape(e) => write!(f, "shape error: {e}"),
            ConvError::Matrix(e) => write!(f, "matrix error: {e}"),
            ConvError::WeightShape { expected, got } => {
                write!(f, "weight shape mismatch: expected {expected:?}, got {got:?}")
            }
            ConvError::Unsupported(s) => write!(f, "unsupported configuration: {s}"),
            ConvError::Calibration(s) => write!(f, "calibration error: {s}"),
            ConvError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ConvError {}

/// Runtime failure of a prepared executor's `execute` call.
///
/// Every variant is recoverable: the executor and its context (pool,
/// scratch) remain usable, so a caller may retry with fixed inputs or
/// demote to another algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An input or output tensor doesn't match the planned spec.
    IoShape {
        /// Which tensor mismatched (`"input"` / `"output"`).
        which: &'static str,
        /// Dims the spec requires, `(B, C, H, W)`.
        expected: (usize, usize, usize, usize),
        /// Dims that were provided.
        got: (usize, usize, usize, usize),
    },
    /// The input contained NaN/±inf values and the context's
    /// [`NonFinitePolicy`](crate::NonFinitePolicy) is `Reject`.
    NonFiniteInput {
        /// Number of non-finite input values found.
        count: u64,
    },
    /// A worker panicked inside the fork-join; the pool recovered and
    /// stays usable, the output buffer contents are unspecified.
    WorkerPanic {
        /// The captured panic message.
        message: String,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::IoShape {
                which,
                expected,
                got,
            } => write!(
                f,
                "{which} dims don't match spec: expected {expected:?}, got {got:?}"
            ),
            ExecError::NonFiniteInput { count } => {
                write!(f, "input contains {count} non-finite value(s)")
            }
            ExecError::WorkerPanic { message } => write!(f, "worker panic: {message}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ExecError> for ConvError {
    fn from(e: ExecError) -> Self {
        ConvError::Exec(e)
    }
}

impl From<lowino_parallel::JobPanic> for ExecError {
    fn from(p: lowino_parallel::JobPanic) -> Self {
        ExecError::WorkerPanic { message: p.message }
    }
}

impl From<ShapeError> for ConvError {
    fn from(e: ShapeError) -> Self {
        ConvError::Shape(e)
    }
}

impl From<MatrixError> for ConvError {
    fn from(e: MatrixError) -> Self {
        ConvError::Matrix(e)
    }
}

/// Validate a weight tensor against a spec; shared by all constructors.
pub(crate) fn check_weights(
    spec: &lowino_tensor::ConvShape,
    weights: &lowino_tensor::Tensor4,
) -> Result<(), ConvError> {
    let got = weights.dims();
    let expected = (spec.out_c, spec.in_c, spec.r, spec.r);
    if got != expected {
        return Err(ConvError::WeightShape { expected, got });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_tensor::{ConvShape, Tensor4};

    #[test]
    fn weight_check() {
        let spec = ConvShape::same(1, 4, 8, 6, 3);
        assert!(check_weights(&spec, &Tensor4::zeros(8, 4, 3, 3)).is_ok());
        let err = check_weights(&spec, &Tensor4::zeros(4, 8, 3, 3)).unwrap_err();
        assert!(matches!(err, ConvError::WeightShape { .. }));
        assert!(err.to_string().contains("weight shape mismatch"));
    }

    #[test]
    fn error_conversions_and_display() {
        let e: ConvError = ShapeError::ZeroDim("h").into();
        assert!(e.to_string().contains("shape error"));
        let e: ConvError = MatrixError::Unsupported { m: 9, r: 3 }.into();
        assert!(e.to_string().contains("F(9,3)"));
        assert!(ConvError::Unsupported("x".into()).to_string().contains("x"));
    }
}
