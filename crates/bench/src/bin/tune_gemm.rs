//! §4.3.4: auto-tunes the GEMM blocking parameters for representative
//! Winograd GEMM shapes and writes the wisdom file.
//!
//! ```text
//! cargo run -p lowino-bench --release --bin tune_gemm -- \
//!     [--reps 3] [--threads 1] [--wisdom lowino_wisdom.txt] [--top 5] [--full 0|1]
//! ```
//!
//! By default only the cost model's top-K candidates are measured
//! (Autotuner 2.0); `--full 1` sweeps the whole candidate lattice.

use lowino_bench::runner::arg;
use lowino_bench::Table;
use lowino_gemm::{tune_blocking, tune_blocking_full, GemmShape, Wisdom};
use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = arg(&args, "--reps", 3);
    let threads: usize = arg(&args, "--threads", 1);
    let top: usize = arg(&args, "--top", 5);
    let full: usize = arg(&args, "--full", 0);
    let wisdom_path: String = arg(&args, "--wisdom", "lowino_wisdom.txt".to_string());

    // Representative stage-② shapes: (VGG16_b, ResNet-50_c, YOLOv3_c) under
    // F(2,3) and F(4,3), batch scaled to 4.
    let shapes = vec![
        ("VGG16_b F(2,3)", GemmShape { t: 16, n: 4 * 15 * 15, c: 512, k: 512 }),
        ("VGG16_b F(4,3)", GemmShape { t: 36, n: 4 * 8 * 8, c: 512, k: 512 }),
        ("ResNet-50_c F(4,3)", GemmShape { t: 36, n: 4 * 2 * 2, c: 512, k: 512 }),
        ("YOLOv3_c F(4,3)", GemmShape { t: 36, n: 4 * 4, c: 256, k: 512 }),
    ];

    let tier = SimdTier::detect();
    let mut pool = StaticPool::new(threads);
    let mut wisdom = Wisdom::load(std::path::Path::new(&wisdom_path)).unwrap_or_default();

    println!("== §4.3.4 auto-tuning (tier {tier}, {threads} thread(s)) ==\n");
    for (name, shape) in shapes {
        println!("{name}: T={} N={} C={} K={}", shape.t, shape.n, shape.c, shape.k);
        let (best, mut log) = if full != 0 {
            tune_blocking_full(tier, &shape, &mut pool, reps)
        } else {
            tune_blocking(tier, &shape, &mut pool, reps)
        };
        log.sort_by_key(|m| m.time);
        let mut table = Table::new(vec!["rank", "blocking", "time", "GMAC/s"]);
        for (i, m) in log.iter().take(top).enumerate() {
            let gmacs = shape.macs() as f64 / m.time.as_secs_f64() / 1e9;
            table.row(vec![
                format!("{}", i + 1),
                format!(
                    "N{} C{} K{} r{}xc{}",
                    m.blocking.n_blk, m.blocking.c_blk, m.blocking.k_blk,
                    m.blocking.row_blk, m.blocking.col_blk
                ),
                lowino_bench::report::fmt_duration(m.time),
                format!("{gmacs:.1}"),
            ]);
        }
        let worst = log.last().unwrap();
        let ratio = worst.time.as_secs_f64() / log[0].time.as_secs_f64();
        print!("{}", table.render());
        println!(
            "  best {:?}; worst candidate is {ratio:.2}x slower\n",
            best
        );
        wisdom.insert(tier, &shape, best);
    }
    wisdom
        .save(std::path::Path::new(&wisdom_path))
        .expect("save wisdom");
    println!("wisdom saved to {wisdom_path} ({} entries)", wisdom.len());
}
