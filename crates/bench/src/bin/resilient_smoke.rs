//! CI fault-injection smoke: prove the robustness machinery end to end.
//!
//! Run once with `LOWINO_FAULT=pool/phase,wisdom/save` and once with no
//! fault armed (see `ci/check.sh`). In both modes the binary asserts:
//!
//! * the resilient layer produces finite output within direct-f32
//!   tolerance — demoted exactly when a fault was armed, undemoted when
//!   not;
//! * the wisdom file on disk stays loadable and keeps its entry — the
//!   armed `wisdom/save` crash mid-write must not clobber the previous
//!   save (tmp-file + atomic-rename).
//!
//! Exits non-zero (via panic) on any violated expectation, so the CI step
//! fails loudly.

use lowino::prelude::*;
use lowino::{Blocking, ConvContext, DirectF32Conv, GemmShape, ResilientConv, SimdTier, Wisdom};

fn main() {
    let faulted = std::env::var("LOWINO_FAULT").map(|s| !s.is_empty()).unwrap_or(false);
    let mode = if faulted { "faulted" } else { "clean" };
    println!("resilient_smoke: mode = {mode}");

    // Injected worker panics are expected and caught by the pool; keep the
    // default hook from spraying their backtraces over the CI log while
    // still reporting any *unexpected* panic in full.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));

    // -- Wisdom crash-safety. Save once cleanly, then arm the env-specified
    // faults; the second save crashes mid-write when `wisdom/save` is armed.
    let dir = std::env::temp_dir().join(format!("lowino_resilient_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    let path = dir.join("wisdom.txt");
    let shape = GemmShape { t: 16, n: 100, c: 64, k: 64 };
    let mut wisdom = Wisdom::new();
    wisdom.insert(SimdTier::detect(), &shape, Blocking::default_for(&shape));
    wisdom.save(&path).expect("clean save before faults are armed");

    lowino_testkit::faults::init_from_env();

    match wisdom.save(&path) {
        Ok(()) => assert!(
            !faulted || !lowino_testkit::faults::WISDOM_SAVE.is_armed(),
            "armed wisdom/save fault did not fire"
        ),
        Err(e) => {
            assert!(faulted, "unexpected save failure with no fault armed: {e}");
            assert!(e.contains("injected fault: wisdom/save"), "{e}");
            println!("resilient_smoke: wisdom save failed as injected ({e})");
        }
    }
    let loaded = Wisdom::load(&path).expect("wisdom file must stay loadable");
    assert!(
        loaded.get(SimdTier::detect(), &shape).is_some(),
        "wisdom entry lost after {} save",
        if faulted { "crashed" } else { "clean" }
    );

    // -- Resilient layer under (possibly) armed pool/phase fault.
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().expect("spec");
    let weights = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
        ((k + c + y + x) as f32 * 0.3).sin() * 0.2
    });
    let input = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
        ((c * 5 + y * 3 + x) as f32 * 0.17).cos()
    });
    let img = BlockedImage::from_nchw(&input);

    // The resilient layer executes FIRST so an armed pool/phase fault
    // fires inside it (the one-shot site would otherwise be consumed by
    // the reference run below).
    let mut ctx = ConvContext::new(2);
    let mut conv = ResilientConv::new(spec, 4, &weights, vec![img.clone()]).expect("plan");
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).expect("resilient execute");

    assert!(
        !lowino_testkit::faults::POOL_PHASE.is_armed(),
        "armed pool/phase fault never fired"
    );
    if faulted {
        assert!(
            !conv.demotions().is_empty(),
            "faulted run must demote at least once"
        );
        println!(
            "resilient_smoke: demoted to {} ({})",
            conv.algorithm(),
            conv.demotions().last().expect("non-empty").reason
        );
    } else {
        assert!(
            conv.demotions().is_empty(),
            "clean run must not demote, but: {:?}",
            conv.demotions()
        );
        assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    }

    let mut reference = DirectF32Conv::new(spec, &weights).expect("reference");
    let mut want = BlockedImage::zeros(1, 8, 10, 10);
    reference.execute(&img, &mut want, &mut ctx).expect("reference");

    assert!(
        out.to_nchw().data().iter().all(|v| v.is_finite()),
        "output contains non-finite values"
    );
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < 0.30, "rel error vs direct-f32: {err}");
    println!("resilient_smoke: rel error vs direct-f32 = {err:.4}");

    std::fs::remove_dir_all(&dir).ok();
    println!("resilient_smoke: OK ({mode})");
}
