//! Regenerates paper **Figure 10**: execution-time breakdown of the
//! low-precision Winograd pipelines into *transformation* (memory-bound,
//! stages ①+③) and *multiplication* (compute-bound, stage ②) for
//! VGG16_b, ResNet-50_c, YOLOv3_c and U-Net_b, comparing the oneDNN-style
//! down-scaling implementation with LoWino `F(2,3)`.
//!
//! Expected shape (paper §5.3): LoWino's transformation share is *larger*
//! (it loads 4× the input bytes — FP32 instead of INT8), while its
//! multiplication time is equal (cache-sized matrices) or smaller (large
//! matrices: YOLOv3_c, U-Net_b).
//!
//! ```text
//! cargo run -p lowino-bench --release --bin fig10_breakdown -- \
//!     [--reps 5] [--threads 1] [--batch-div 16] [--hw-div 1]
//! ```

use lowino::prelude::*;
use lowino_bench::layers::layer_by_name;
use lowino_bench::report::fmt_duration;
use lowino_bench::runner::arg;
use lowino_bench::{build_executor, run_timed, synth_input, synth_weights, BenchAlgo, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: u32 = arg(&args, "--reps", 3);
    let threads: usize = arg(&args, "--threads", 1);
    let batch_div: usize = arg(&args, "--batch-div", 16);
    let hw_div: usize = arg(&args, "--hw-div", 1);

    println!("== Figure 10: transformation vs multiplication breakdown ==");
    println!("(normalized to the oneDNN-like total per layer)\n");

    let mut table = Table::new(vec![
        "layer",
        "impl",
        "multiplication",
        "transformation",
        "total (norm)",
    ]);

    for name in ["VGG16_b", "ResNet-50_c", "YOLOv3_c", "U-Net_b"] {
        let layer = layer_by_name(name).expect("Table 2 layer");
        let spec = layer.shape(batch_div, hw_div);
        let weights = synth_weights(&spec, 42);
        let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
        let mut engine = Engine::new(threads);
        let mut out = engine.alloc_output(&spec);

        let mut results = Vec::new();
        for algo in [BenchAlgo::DownScale(2), BenchAlgo::LoWino(2)] {
            let mut l = build_executor(algo, &spec, &weights, &input, &engine)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let t = run_timed(&mut l, &input, &mut out, engine.context_mut(), reps);
            results.push((algo, t));
        }
        let base = results[0].1.total().as_secs_f64();
        for (algo, t) in results {
            table.row(vec![
                name.to_string(),
                algo.label(),
                format!(
                    "{:.2} ({})",
                    t.gemm.as_secs_f64() / base,
                    fmt_duration(t.gemm)
                ),
                format!(
                    "{:.2} ({})",
                    t.transform().as_secs_f64() / base,
                    fmt_duration(t.transform())
                ),
                format!("{:.2}", t.total().as_secs_f64() / base),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\n(paper §5.3: LoWino's transformation is costlier — FP32 loads are 4x the bytes —\n\
         while its multiplication matches oneDNN on cache-sized layers and wins on\n\
         large-matrix layers like YOLOv3_c / U-Net_b thanks to bigger GEMM blocks.)"
    );
}
