//! Regenerates paper **Figure 8**: normalized execution time of the four
//! low-precision implementations over the 20 Table 2 layers, the speedup of
//! LoWino `F(4,3)` over the oneDNN-style Winograd, and the §5.1 comparison
//! against the best FP32 implementation.
//!
//! ```text
//! cargo run -p lowino-bench --release --bin fig8_layers -- \
//!     [--reps 5] [--threads 1] [--batch-div 16] [--hw-div 1] \
//!     [--layer VGG16_b] [--fp32] [--m6]
//! ```
//!
//! Defaults divide the paper's batch-64 classification layers by
//! `--batch-div` (the harness host is a single core; the per-layer *shape*
//! of the comparison is batch-invariant because every implementation
//! processes the same tiles). Absolute times are reported alongside the
//! normalized ones.

use lowino::prelude::*;
use lowino_bench::report::fmt_duration;
use lowino_bench::runner::{arg, has_flag};
use lowino_bench::{build_executor, paper_layers, run_timed, synth_input, synth_weights, BenchAlgo, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: u32 = arg(&args, "--reps", 3);
    let threads: usize = arg(&args, "--threads", 1);
    let batch_div: usize = arg(&args, "--batch-div", 16);
    let hw_div: usize = arg(&args, "--hw-div", 1);
    let only: String = arg(&args, "--layer", String::new());
    let with_fp32 = has_flag(&args, "--fp32");
    let with_m6 = has_flag(&args, "--m6");

    let mut algos = vec![
        BenchAlgo::DirectInt8,
        BenchAlgo::DownScale(2),
        BenchAlgo::LoWino(2),
        BenchAlgo::LoWino(4),
    ];
    if with_m6 {
        algos.push(BenchAlgo::LoWino(6));
    }
    if with_fp32 {
        // The paper compares against "the best full-precision implementation
        // in oneDNN"; our best FP32 implementations are the blocked Winograd
        // paths (the naive FP32 direct reference is for correctness only).
        algos.push(BenchAlgo::WinogradF32(2));
        algos.push(BenchAlgo::WinogradF32(4));
    }

    println!("== Figure 8: normalized execution time per layer ==");
    println!(
        "(scaled: batch/{batch_div}, spatial/{hw_div}; {reps} reps; {threads} thread(s); \
         normalized to the oneDNN-like INT8 Winograd F(2x2))\n"
    );

    let mut header: Vec<String> = vec!["layer".into()];
    header.extend(algos.iter().map(|a| a.label()));
    header.push("LoWino F4 speedup".into());
    let mut table = Table::new(header);

    let mut speedups = Vec::new();
    let mut fp32_ratio_f2 = Vec::new();
    let mut fp32_ratio_f4 = Vec::new();

    for layer in paper_layers() {
        if !only.is_empty() && layer.name != only {
            continue;
        }
        let spec = layer.shape(batch_div, hw_div);
        let weights = synth_weights(&spec, 42);
        let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
        let mut engine = Engine::new(threads);
        let mut out = engine.alloc_output(&spec);

        let mut times = Vec::new();
        for &algo in &algos {
            let mut l = match build_executor(algo, &spec, &weights, &input, &engine) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{}: {}: {e}", layer.name, algo.label());
                    times.push(f64::NAN);
                    continue;
                }
            };
            let t = run_timed(&mut l, &input, &mut out, engine.context_mut(), reps);
            times.push(t.total().as_secs_f64());
        }

        // Normalize to the oneDNN-like Winograd F(2,3) (index 1), like the
        // paper's Fig. 8 bars.
        let base = times[1];
        let mut row: Vec<String> = vec![layer.name.into()];
        for (&t, &algo) in times.iter().zip(&algos) {
            if t.is_nan() {
                row.push("n/a".into());
            } else {
                row.push(format!(
                    "{:.2} ({})",
                    t / base,
                    fmt_duration(std::time::Duration::from_secs_f64(t)),
                ));
                let _ = algo;
            }
        }
        let f4 = times[3];
        let speedup = base / f4;
        speedups.push(speedup);
        row.push(format!("{speedup:.2}x"));
        if with_fp32 {
            let fp32 = times[times.len() - 2].min(times[times.len() - 1]);
            fp32_ratio_f2.push(fp32 / times[2]);
            fp32_ratio_f4.push(fp32 / f4);
        }
        table.row(row);
    }

    print!("{}", table.render());

    if !speedups.is_empty() {
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "\nLoWino F(4x4) over oneDNN-like Winograd: average {avg:.2}x, up to {max:.2}x"
        );
        println!("(paper reports: average 1.26x, up to 2.04x on 8-core CLX)");
    }
    if with_fp32 && !fp32_ratio_f2.is_empty() {
        let a2 = fp32_ratio_f2.iter().sum::<f64>() / fp32_ratio_f2.len() as f64;
        let a4 = fp32_ratio_f4.iter().sum::<f64>() / fp32_ratio_f4.len() as f64;
        println!(
            "LoWino vs best FP32: F(2x2) {a2:.2}x, F(4x4) {a4:.2}x  (paper: 1.9x / 2.6x)"
        );
    }
}
