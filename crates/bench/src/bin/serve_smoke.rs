//! CI smoke for the inference server over **real TCP**: bind a loopback
//! port, drive batched inference from concurrent clients, poke the error
//! paths with a malformed request and a wrong-shape body, read `/stats`
//! and `/healthz`, then shut down and assert the accounting closed.
//!
//! The hermetic test batteries cover the same logic over in-memory
//! duplex streams; this binary is the one place the acceptor thread,
//! real sockets and port binding are exercised end to end. It also
//! drives the supervision story over real sockets: a worker is wedged
//! mid-batch (`shard/wedge` fault) and must be detected, stolen from
//! and respawned while the client still gets its 200; an
//! already-expired request (`X-Lowino-Deadline-Us: 0`) must be shed
//! with a 504 before costing shard work. With `LOWINO_TRACE=<path>` the
//! run emits the `serve/request`, `serve/batch`, `serve/queue_depth`,
//! `serve/shard_restart`, `serve/deadline_shed` and `serve/brownout`
//! events that ci/check.sh greps and validates with `trace_check`.
//!
//! The bind address comes from `LOWINO_SERVE_ADDR` (default
//! `127.0.0.1:0` — an OS-assigned free port, so parallel CI runs never
//! collide).

use std::io::{BufReader, Write};
use std::net::TcpStream;

use lowino::prelude::HealthPolicy;
use lowino::Tensor4;
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec};
use lowino_serve::http::read_response;
use lowino_serve::{GraphModel, ServeConfig, Server};
use lowino_testkit::faults;
use lowino_testkit::Rng;

const IN_C: usize = 3;
const HW: usize = 8;
const CLASSES: usize = 3;
const BATCH: usize = 2;

fn build_model(shard: usize) -> GraphModel {
    let mut model = mini_vgg(IN_C, 8, CLASSES, 41 + shard as u64);
    let calib = Tensor4::from_fn(2, IN_C, HW, HW, |b, c, y, x| {
        ((b * 29 + c * 5 + y * 3 + x) as f32 * 0.41).sin()
    });
    let spec = GraphSpec { m: 2, batch: BATCH, threads: 1 };
    let graph =
        CompiledGraph::compile_with_health(&mut model, &calib, &spec, HealthPolicy::default())
            .expect("smoke graph compiles");
    GraphModel::new(graph)
}

fn infer_request(il: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut input = vec![0.0f32; il];
    rng.fill_f32(&mut input, -1.0, 1.0);
    let body: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut wire =
        format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).into_bytes();
    wire.extend_from_slice(&body);
    wire
}

fn main() {
    lowino_trace::init_from_env();
    let addr = std::env::var("LOWINO_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let cfg = ServeConfig {
        shards: 1,
        max_batch: BATCH,
        max_delay_ns: 500_000,
        queue_cap: 32,
        wedge_timeout_ns: 25_000_000, // 25 ms: the wedge phase stays quick
        restart_backoff_ns: 1_000_000,
        ..ServeConfig::default()
    };
    let mut server = Server::start(cfg, build_model).expect("server starts");
    let bound = server.bind(&addr).expect("bind loopback");
    println!("serve_smoke: listening on {bound}");
    let (il, ol) = server.dims();

    // Batched inference: concurrent clients so the coalescer sees real
    // multi-connection traffic, each validating shape and finiteness.
    let per_client = 6usize;
    let clients = 3usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(bound).expect("connect");
                let mut conn = BufReader::new(stream);
                for i in 0..per_client {
                    let wire = infer_request(il, (c * 100 + i) as u64);
                    conn.get_mut().write_all(&wire).expect("send");
                    let resp = read_response(&mut conn).expect("response");
                    assert_eq!(resp.status, 200, "client {c} request {i}");
                    assert_eq!(resp.body.len(), ol * 4, "payload shape");
                    for chunk in resp.body.chunks_exact(4) {
                        let v = f32::from_le_bytes(chunk.try_into().unwrap());
                        assert!(v.is_finite(), "non-finite logit");
                    }
                }
            });
        }
    });

    // Malformed request line: the server must answer 4xx and close.
    {
        let stream = TcpStream::connect(bound).expect("connect");
        let mut conn = BufReader::new(stream);
        conn.get_mut().write_all(b"NONSENSE\r\n\r\n").expect("send garbage");
        let resp = read_response(&mut conn).expect("error response");
        assert!(
            (400..=505).contains(&resp.status),
            "garbage got status {}",
            resp.status
        );
    }

    // Wrong-shape body: app-level 400, connection stays usable.
    {
        let stream = TcpStream::connect(bound).expect("connect");
        let mut conn = BufReader::new(stream);
        conn.get_mut()
            .write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc")
            .expect("send short body");
        let resp = read_response(&mut conn).expect("response");
        assert_eq!(resp.status, 400, "wrong-shape body");
        let wire = infer_request(il, 7777);
        conn.get_mut().write_all(&wire).expect("send valid after 400");
        let resp = read_response(&mut conn).expect("response after 400");
        assert_eq!(resp.status, 200, "keep-alive after app-level 400");
    }

    // Observability endpoints.
    {
        let stream = TcpStream::connect(bound).expect("connect");
        let mut conn = BufReader::new(stream);
        conn.get_mut()
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n")
            .expect("send pipelined gets");
        let health = read_response(&mut conn).expect("healthz");
        assert_eq!(health.status, 200);
        let stats = read_response(&mut conn).expect("stats");
        assert_eq!(stats.status, 200);
        let body = String::from_utf8(stats.body).expect("stats utf-8");
        lowino_testkit::validate_json(&body).expect("stats is valid JSON");
        assert!(body.contains("\"per_shard\""), "stats shape: {body}");
    }

    // Self-healing over real TCP: wedge the only worker mid-batch. The
    // supervisor must abandon it, steal the in-flight batch, respawn the
    // shard and replay — the client's connection just sees a slow 200.
    {
        faults::SHARD_WEDGE.arm();
        let stream = TcpStream::connect(bound).expect("connect");
        let mut conn = BufReader::new(stream);
        let wire = infer_request(il, 8888);
        conn.get_mut().write_all(&wire).expect("send into the wedge");
        let resp = read_response(&mut conn).expect("replayed response");
        assert_eq!(resp.status, 200, "wedged request not replayed");
        assert_eq!(resp.body.len(), ol * 4, "replayed payload shape");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.stats().per_shard[0].restarts == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no shard restart after the wedge: {:?}",
                server.stats()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        faults::disarm_all();
    }

    // Per-request deadline: already expired on arrival → 504 at
    // admission, before any queue or shard work; the connection stays
    // usable and a fresh request still completes.
    {
        let stream = TcpStream::connect(bound).expect("connect");
        let mut conn = BufReader::new(stream);
        let mut rng = Rng::seed_from_u64(9999);
        let mut input = vec![0.0f32; il];
        rng.fill_f32(&mut input, -1.0, 1.0);
        let body: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
        let head = format!(
            "POST /infer HTTP/1.1\r\nX-Lowino-Deadline-Us: 0\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.get_mut().write_all(head.as_bytes()).expect("send expired request");
        conn.get_mut().write_all(&body).expect("send expired body");
        let resp = read_response(&mut conn).expect("504 response");
        assert_eq!(resp.status, 504, "expired-on-arrival must be shed with 504");
        let wire = infer_request(il, 10_000);
        conn.get_mut().write_all(&wire).expect("send valid after 504");
        let resp = read_response(&mut conn).expect("response after 504");
        assert_eq!(resp.status, 200, "keep-alive after deadline shed");
    }

    let snap = server.shutdown();
    let expect = (clients * per_client + 1 + 2) as u64; // + wedge + post-504
    assert_eq!(snap.completed, expect, "completed: {snap:?}");
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable,
        "accounting: {snap:?}"
    );
    assert_eq!(snap.failed, 0, "failures: {snap:?}");
    assert_eq!(snap.conn_panics, 0, "panics: {snap:?}");
    assert_eq!(snap.deadline_rejects, 1, "admission shed not counted: {snap:?}");
    assert!(snap.http_errors >= 2, "error paths unexercised: {snap:?}");
    assert!(snap.batches >= 1, "no batches dispatched: {snap:?}");
    assert!(
        snap.per_shard[0].restarts >= 1,
        "supervisor never restarted the wedged shard: {snap:?}"
    );
    println!(
        "serve_smoke: ok ({} completed, {} batches, mean occupancy {:.2}, {} http errors, \
         {} restarts, {} deadline sheds)",
        snap.completed,
        snap.batches,
        snap.mean_occupancy,
        snap.http_errors,
        snap.per_shard[0].restarts,
        snap.deadline_rejects
    );
    lowino_trace::flush_to_env();
}
