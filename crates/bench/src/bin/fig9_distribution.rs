//! Regenerates paper **Figure 9**: the distribution of transformed-input
//! INT8 values under the down-scaling approach vs LoWino, for a VGG16_a
//! `F(4×4, 3×3)` layer.
//!
//! The down-scaling path quantizes in the spatial domain, transforms in
//! integers (range grows ~100×) and multiplies by `α = 1/100` with
//! rounding — so the surviving INT8 values huddle in a narrow band around
//! zero. LoWino transforms in FP32 and quantizes *after* amplification, so
//! the full `[-127, 127]` range is used. The harness prints the histogram
//! (log-scale sketch) plus summary statistics for both.
//!
//! ```text
//! cargo run -p lowino-bench --release --bin fig9_distribution -- \
//!     [--hw-div 2] [--m 4]
//! ```

use lowino::prelude::*;
use lowino::{calibrate_spatial, calibrate_winograd_domain};
use lowino_bench::layers::layer_by_name;
use lowino_bench::runner::arg;
use lowino_bench::synth_input;
use lowino_tensor::LANES;
use lowino_winograd::{range_growth_2d, TileTransformer};

fn sketch(counts: &[u64; 256]) -> String {
    // 32 buckets of 8 values, log-scale bar heights 0..8.
    let mut out = String::new();
    let max = *counts.iter().max().unwrap() as f64;
    for bucket in 0..32 {
        let s: u64 = counts[bucket * 8..(bucket + 1) * 8].iter().sum();
        let h = if s == 0 {
            0
        } else {
            (((s as f64).ln() / max.ln().max(1.0)) * 8.0).ceil() as usize
        };
        out.push_str(&format!(
            "{:>4} {}\n",
            bucket as i32 * 8 - 128,
            "#".repeat(h.max(usize::from(s > 0)))
        ));
    }
    out
}

fn stats(counts: &[u64; 256]) -> (usize, f64, i32, i32) {
    let total: u64 = counts.iter().sum();
    let distinct = counts.iter().filter(|&&c| c > 0).count();
    let zero_frac = counts[128] as f64 / total as f64;
    let lo = counts.iter().position(|&c| c > 0).unwrap() as i32 - 128;
    let hi = counts.iter().rposition(|&c| c > 0).unwrap() as i32 - 128;
    (distinct, zero_frac, lo, hi)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hw_div: usize = arg(&args, "--hw-div", 2);
    let m: usize = arg(&args, "--m", 4);

    let layer = layer_by_name("VGG16_a").unwrap();
    let spec = {
        let mut s = layer.shape(64, hw_div); // batch 1
        s.batch = 1;
        s
    };
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let tt = TileTransformer::new(m, spec.r).expect("transformer");
    let geom = spec.tiles(m).expect("tiles");
    let n = geom.n;
    let growth = range_growth_2d(m, spec.r).unwrap() as f32;

    let spatial = calibrate_spatial(std::slice::from_ref(&input)).unwrap();
    let wd = calibrate_winograd_domain(&spec, m, std::slice::from_ref(&input)).unwrap();

    let mut down = [0u64; 256];
    let mut lowino_hist = [0u64; 256];
    let mut scratch = tt.make_scratch(LANES);
    let mut patch = vec![0f32; n * n * LANES];
    let mut patch_q = vec![0i32; n * n * LANES];
    let mut v_int = vec![0i32; n * n * LANES];
    let mut v_f32 = vec![0f32; n * n * LANES];

    for tile in 0..geom.total {
        let (b, ty, tx) = lowino_conv::tiles::tile_coords(&geom, tile);
        let (y0, x0) = lowino_conv::tiles::tile_origin(&spec, &geom, ty, tx);
        for cb in 0..input.c_blocks() {
            lowino_conv::tiles::gather_patch(&input, b, cb, y0, x0, n, &mut patch);
            // Down-scaling: spatial INT8 -> integer transform -> α·round.
            for (q, &s) in patch_q.iter_mut().zip(patch.iter()) {
                *q = i32::from(lowino_simd::saturate_to_i8(s * spatial.alpha));
            }
            tt.input_tile_i32(&patch_q, &mut v_int, &mut scratch);
            for &v in v_int.iter() {
                let q = lowino_simd::saturate_to_i8((v as f32 / growth).round());
                down[(i32::from(q) + 128) as usize] += 1;
            }
            // LoWino: FP32 transform -> Winograd-domain quantization.
            tt.input_tile_f32(&patch, &mut v_f32, &mut scratch);
            for &v in v_f32.iter() {
                let q = lowino_simd::saturate_to_i8(v * wd.alpha);
                lowino_hist[(i32::from(q) + 128) as usize] += 1;
            }
        }
    }

    println!("== Figure 9: transformed-input INT8 value distribution ==");
    println!(
        "layer VGG16_a (scaled hw/{hw_div}), F({m}x{m},3x3); growth = {growth:.0}x, \
         down-scale α = 1/{growth:.0}\n"
    );
    for (name, h) in [("down-scaling", &down), ("LoWino", &lowino_hist)] {
        let (distinct, zf, lo, hi) = stats(h);
        println!(
            "{name}: {distinct}/255 distinct INT8 values used, {:.1}% exactly 0, range [{lo}, {hi}]",
            zf * 100.0
        );
    }
    println!("\ndown-scaling histogram (log scale):");
    print!("{}", sketch(&down));
    println!("\nLoWino histogram (log scale):");
    print!("{}", sketch(&lowino_hist));
    println!(
        "\n(paper Fig. 9: the down-scaled values survive only in a narrow integer band\n\
         around zero, while LoWino uses the full [-128, 127] range.)"
    );
}
