//! CI smoke for Autotuner 2.0: prove the seed → execute → retune → swap
//! → shutdown cycle end to end (see `ci/check.sh`).
//!
//! Phase 1 builds a seed-only engine and a layer: compile-time seeding
//! must emit `tune/seeded` instants into the trace and the forward pass
//! must work without any measurement sweep.
//!
//! Phase 2 builds a `Background` engine with a millisecond retune
//! interval and a throwaway wisdom file, then keeps executing until the
//! retuner publishes a winner (`tune/swap` in the trace, generation > 0).
//! It asserts the retune thread shuts down cleanly (`stop_retuner()`
//! returns true exactly once), the engine still executes afterwards, and
//! the wisdom file on disk ends up non-empty.
//!
//! Run with `LOWINO_TRACE=<path>`; the CI step validates the flushed
//! chrome JSON with `trace_check` and greps it for `tune/seeded` and
//! `tune/swap`. Exits non-zero (via panic) on any violated expectation.

use std::time::{Duration, Instant};

use lowino::prelude::*;
use lowino::{ConvShape, Tensor4, TunePolicy, Wisdom};

fn test_layer(engine: &Engine, spec: ConvShape, weights: &Tensor4, img: &BlockedImage) -> Layer {
    LayerBuilder::new(spec, weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
        .calibration_samples(vec![img.clone()])
        .build(engine)
        .expect("plan layer")
}

fn main() {
    lowino_trace::init_from_env();

    let spec = ConvShape::same(1, 32, 32, 12, 3).validate().expect("spec");
    let weights = Tensor4::from_fn(32, 32, 3, 3, |k, c, y, x| {
        ((k * 11 + c * 7 + y * 3 + x) as f32 * 0.37).cos() * 0.3
    });
    let input = Tensor4::from_fn(1, 32, 12, 12, |_, c, y, x| {
        ((c * 17 + y * 5 + x * 3) as f32 * 0.23).sin()
    });
    let img = BlockedImage::from_nchw(&input);

    // ── Phase 1: seed-only engine — zero-stall first request ──────────
    let mut engine = Engine::builder(2).tune_policy(TunePolicy::SeedOnly).build();
    let mut layer = test_layer(&engine, spec, &weights, &img);
    let mut out = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out).expect("seed-only execute");
    assert!(
        out.to_nchw().data().iter().all(|v| v.is_finite()),
        "seed-only output contains non-finite values"
    );
    println!("tune_smoke: seed-only engine executed (max_abs = {:.4})", out.max_abs());

    // ── Phase 2: background retune — measure, publish, shut down ──────
    let dir = std::env::temp_dir().join(format!("lowino_tune_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let wisdom_path = dir.join("wisdom.txt");

    let mut engine = Engine::builder(2)
        .tune_policy(TunePolicy::Background)
        .retune_interval(Duration::from_millis(2))
        .wisdom_path(&wisdom_path)
        .build();
    assert!(engine.context().tune.is_retuning(), "background engine must start a retuner");
    let mut layer = test_layer(&engine, spec, &weights, &img);
    let mut out = engine.alloc_output(&spec);

    // Keep the shape hot until the retuner publishes a winner for it.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut iterations = 0u32;
    while engine.context().tune.shared().generation() == 0 {
        assert!(
            Instant::now() < deadline,
            "retuner never published a winner (after {iterations} executes)"
        );
        engine.execute(&mut layer, &img, &mut out).expect("background execute");
        iterations += 1;
    }
    println!(
        "tune_smoke: retuner published generation {} after {iterations} executes",
        engine.context().tune.shared().generation()
    );

    // Clean shutdown: the first stop joins the thread, the second is a no-op.
    assert!(engine.context_mut().tune.stop_retuner(), "stop_retuner must join the thread");
    assert!(!engine.context_mut().tune.stop_retuner(), "second stop must be a no-op");
    assert!(!engine.context().tune.is_retuning());

    // The engine stays usable after shutdown (published winners persist).
    engine.execute(&mut layer, &img, &mut out).expect("post-shutdown execute");
    assert!(
        out.to_nchw().data().iter().all(|v| v.is_finite()),
        "post-shutdown output contains non-finite values"
    );

    // The retuner merged its winners into the wisdom file.
    let wisdom = Wisdom::load(&wisdom_path).expect("retuned wisdom file loads");
    assert!(!wisdom.is_empty(), "retuned wisdom file has no entries");
    println!("tune_smoke: wisdom file holds {} entries", wisdom.len());
    std::fs::remove_dir_all(&dir).ok();

    if let Some(path) = lowino_trace::flush_to_env() {
        println!("tune_smoke: trace written to {}", path.display());
    }
    println!("tune_smoke: ok");
}
