//! Regenerates paper **Table 3**: end-to-end top-1 accuracy of two CNNs
//! under every post-training-quantization scheme.
//!
//! ImageNet and the pre-trained VGG16/ResNet-50 are not available offline;
//! per DESIGN.md the experiment runs on trained-from-scratch MiniVGG /
//! MiniResNet over a synthetic dataset. The *phenomenon* being reproduced
//! is Table 3's ordering:
//!
//! * non-Winograd INT8 (KLD) ≈ FP32,
//! * LoWino F(2,3) ≈ FP32 (and ≥ down-scaling F(2,3)),
//! * **down-scaling F(4,3) collapses to chance** (the paper's 00.00 row),
//! * LoWino F(4,3) stays near FP32.
//!
//! ```text
//! cargo run -p lowino-bench --release --bin table3_accuracy -- \
//!     [--classes 8] [--width 32] [--size 16] [--train 60] [--test 25] \
//!     [--epochs 10] [--threads 1] [--per-position] [--extended]
//! ```

use lowino::prelude::*;
use lowino_bench::runner::{arg, has_flag};
use lowino_bench::Table;
use lowino_nn::{
    evaluate_top1, mini_resnet, mini_vgg, train, Dataset, Model, QuantizedModel, QuantizedSpec,
    SyntheticSpec, TrainConfig,
};

struct Row {
    group: &'static str,
    method: String,
    algo: Algorithm,
    per_position: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let classes: usize = arg(&args, "--classes", 8);
    let width: usize = arg(&args, "--width", 32);
    let size: usize = arg(&args, "--size", 16);
    let train_pc: usize = arg(&args, "--train", 60);
    let test_pc: usize = arg(&args, "--test", 25);
    let epochs: usize = arg(&args, "--epochs", 12);
    let threads: usize = arg(&args, "--threads", 1);
    let extended = has_flag(&args, "--extended");

    let data = Dataset::generate(&SyntheticSpec {
        classes,
        channels: 3,
        size,
        train_per_class: train_pc,
        test_per_class: test_pc,
        noise: 0.15,
        seed: 20260704,
    });

    let mut rows = vec![
        Row {
            group: "Non-Winograd",
            method: "KLD INT8 direct".into(),
            algo: Algorithm::DirectInt8,
            per_position: false,
        },
        Row {
            group: "F(2x2,3x3)",
            method: "Down-Scaling (oneDNN-like)".into(),
            algo: Algorithm::DownScale { m: 2 },
            per_position: false,
        },
        Row {
            group: "F(2x2,3x3)",
            method: "LoWino (ours)".into(),
            algo: Algorithm::LoWino { m: 2 },
            per_position: false,
        },
        Row {
            group: "F(4x4,3x3)",
            method: "Down-Scaling Impl.".into(),
            algo: Algorithm::DownScale { m: 4 },
            per_position: false,
        },
        Row {
            group: "F(4x4,3x3)",
            method: "LoWino (ours)".into(),
            algo: Algorithm::LoWino { m: 4 },
            per_position: false,
        },
    ];
    if extended {
        rows.push(Row {
            group: "F(2x2,3x3)",
            method: "Up-Casting (ncnn-like)".into(),
            algo: Algorithm::UpCast { m: 2 },
            per_position: false,
        });
        rows.push(Row {
            group: "F(4x4,3x3)",
            method: "LoWino per-position".into(),
            algo: Algorithm::LoWino { m: 4 },
            per_position: true,
        });
        rows.push(Row {
            group: "F(6x6,3x3)",
            method: "LoWino per-position".into(),
            algo: Algorithm::LoWino { m: 6 },
            per_position: true,
        });
    }

    println!("== Table 3: end-to-end top-1 accuracy (synthetic substitute) ==");
    println!(
        "dataset: {classes} classes, 3x{size}x{size}, {} train / {} test images; \
         models trained from scratch\n",
        classes * train_pc,
        classes * test_pc
    );

    let mut table = Table::new(vec!["model", "method", "FP32 acc (%)", "INT8 acc (%)"]);

    for model_name in ["MiniVGG", "MiniResNet"] {
        let mut model: Model = if model_name == "MiniVGG" {
            mini_vgg(3, width, classes, 11)
        } else {
            mini_resnet(3, width, classes, 13)
        };
        let cfg = TrainConfig {
            epochs,
            batch_size: 16,
            lr: 0.02,
            momentum: 0.9,
            seed: 5,
        };
        eprintln!("training {model_name}...");
        let losses = train(&mut model, &data, &cfg);
        eprintln!("  losses: first {:.3} last {:.3}", losses[0], losses[losses.len() - 1]);
        let fp32_acc = evaluate_top1(&mut model, data.test_x(), data.test_y());

        // ~min(500, all) calibration images, per the paper's §3.
        let calib_n = (data.train_y().len()).min(500);
        let calib = data.gather_batch(&(0..calib_n).collect::<Vec<_>>()).0;

        for row in &rows {
            eprintln!("  quantizing with {} ({})...", row.method, row.group);
            let acc = match QuantizedModel::from_model(
                &mut model,
                &calib,
                &QuantizedSpec {
                    algorithm: row.algo,
                    per_position: row.per_position,
                    batch: 25,
                    threads,
                },
            ) {
                Ok(mut q) => format!("{:.2}", 100.0 * q.evaluate_top1(data.test_x(), data.test_y())),
                Err(e) => format!("n/a ({e})"),
            };
            table.row(vec![
                model_name.to_string(),
                format!("{} {}", row.group, row.method),
                format!("{:.2}", 100.0 * fp32_acc),
                acc,
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nchance level: {:.2}%\n\
         (paper Table 3: LoWino within ~0.6% of FP32 at both tile sizes;\n\
         the down-scaling implementation drops to 0.00% at F(4x4,3x3).)",
        100.0 / classes as f64
    );
}
