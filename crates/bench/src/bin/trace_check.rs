//! CI helper: validate a chrome trace file produced via `LOWINO_TRACE`.
//!
//! Usage: `trace_check <trace.json>`. Exits non-zero (with a message on
//! stderr) if the file is missing, empty, not valid JSON per the in-tree
//! validator, or contains no begin events — any of which would mean the
//! recorder silently failed during the traced bench run.

use lowino_testkit::validate_json;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        fail("usage: trace_check <trace.json>");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    if text.trim().is_empty() {
        fail(&format!("{path} is empty"));
    }
    if let Err(e) = validate_json(&text) {
        fail(&format!("{path} is not valid JSON: {e}"));
    }
    if !text.contains("\"traceEvents\"") {
        fail(&format!("{path} has no traceEvents array"));
    }
    if !text.contains("\"ph\":\"B\"") {
        fail(&format!("{path} contains no span begin events"));
    }
    if !text.contains("pool/phase") {
        fail(&format!("{path} contains no pool phase spans"));
    }
    println!(
        "trace_check: {path} ok ({} bytes, {} begin events)",
        text.len(),
        text.matches("\"ph\":\"B\"").count()
    );
}
