//! # lowino-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5). See DESIGN.md for the experiment index.
//!
//! Binaries (all accept `--help`):
//!
//! * `fig8_layers` — Fig. 8: normalized execution time of INT8 direct,
//!   oneDNN-style Winograd `F(2,3)`, LoWino `F(2,3)`/`F(4,3)` over the
//!   Table 2 layers, plus the §5.1 FP32 comparison;
//! * `fig10_breakdown` — Fig. 10: transformation-vs-multiplication time
//!   split for VGG16_b / ResNet-50_c / YOLOv3_c / U-Net_b;
//! * `fig9_distribution` — Fig. 9: INT8-value distributions of the
//!   transformed input under down-scaling vs LoWino;
//! * `table3_accuracy` — Table 3: FP32 vs INT8 top-1 accuracy of
//!   MiniVGG/MiniResNet under every quantization scheme;
//! * `tune_gemm` — §4.3.4: blocking auto-tuning and the wisdom file.
//!
//! Criterion benches: `kernels` (vpdpbusd tiers, transforms), `layers`
//! (per-layer wall time), `ablations` (tile size, blocking, threads).

pub mod layers;
pub mod report;
pub mod runner;

pub use layers::{paper_layers, LayerSpec};
pub use report::Table;
pub use runner::{build_executor, run_timed, synth_input, synth_weights, BenchAlgo};
