//! Shared execution machinery for the harness binaries and benches.

use lowino::prelude::*;
use lowino::{ConvContext, ConvError};
use lowino_testkit::Rng;

/// The algorithm set compared in the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchAlgo {
    /// FP32 direct convolution (§5.1 full-precision reference).
    DirectF32,
    /// FP32 Winograd.
    WinogradF32(usize),
    /// INT8 direct ("INT8 Direct Convolution – oneDNN").
    DirectInt8,
    /// Down-scaling INT8 Winograd ("INT8 Winograd F(2x2,3x3) – oneDNN").
    DownScale(usize),
    /// LoWino.
    LoWino(usize),
    /// Up-casting INT16 Winograd (ncnn-style).
    UpCast(usize),
}

impl BenchAlgo {
    /// Column label used in the reports (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            BenchAlgo::DirectF32 => "FP32 Direct".into(),
            BenchAlgo::WinogradF32(m) => format!("FP32 Winograd F({m}x{m})"),
            BenchAlgo::DirectInt8 => "INT8 Direct (oneDNN-like)".into(),
            BenchAlgo::DownScale(m) => format!("INT8 Winograd F({m}x{m}) (oneDNN-like)"),
            BenchAlgo::LoWino(m) => format!("INT8 Winograd F({m}x{m}) LoWino"),
            BenchAlgo::UpCast(m) => format!("INT16 Winograd F({m}x{m}) (ncnn-like)"),
        }
    }

    /// The underlying algorithm enum.
    pub fn algorithm(&self) -> Algorithm {
        match *self {
            BenchAlgo::DirectF32 => Algorithm::DirectF32,
            BenchAlgo::WinogradF32(m) => Algorithm::WinogradF32 { m },
            BenchAlgo::DirectInt8 => Algorithm::DirectInt8,
            BenchAlgo::DownScale(m) => Algorithm::DownScale { m },
            BenchAlgo::LoWino(m) => Algorithm::LoWino { m },
            BenchAlgo::UpCast(m) => Algorithm::UpCast { m },
        }
    }
}

/// Deterministic synthetic activations with a bell-ish distribution.
pub fn synth_input(spec: &ConvShape, seed: u64) -> Tensor4 {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Tensor4::zeros(spec.batch, spec.in_c, spec.h, spec.w);
    for v in t.data_mut() {
        *v = rng.bellish(1.0);
    }
    t
}

/// Deterministic synthetic weights.
pub fn synth_weights(spec: &ConvShape, seed: u64) -> Tensor4 {
    let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let scale = (2.0 / (spec.in_c * spec.r * spec.r) as f32).sqrt();
    let mut t = Tensor4::zeros(spec.out_c, spec.in_c, spec.r, spec.r);
    for v in t.data_mut() {
        *v = rng.f32_range(-1.0, 1.0) * scale;
    }
    t
}

/// Plan an executor for one benchmark algorithm (calibrating on the given
/// input, which the figures also use as the measured workload).
pub fn build_executor(
    algo: BenchAlgo,
    spec: &ConvShape,
    weights: &Tensor4,
    input: &BlockedImage,
    engine: &Engine,
) -> Result<Layer, ConvError> {
    LayerBuilder::new(*spec, weights)
        .algorithm(AlgoChoice::Fixed(algo.algorithm()))
        .calibration_samples(vec![input.clone()])
        .build(engine)
}

/// Run `reps` timed executions (after one warm-up) and return the
/// best-of-reps timings (the rep with the smallest total — standard
/// practice on noisy shared hosts).
pub fn run_timed(
    layer: &mut Layer,
    input: &BlockedImage,
    output: &mut BlockedImage,
    ctx: &mut ConvContext,
    reps: u32,
) -> StageTimings {
    let exec = layer.executor_mut();
    exec.execute(input, output, ctx).expect("warm-up rep");
    let mut best: Option<StageTimings> = None;
    for _ in 0..reps.max(1) {
        let t = exec.execute(input, output, ctx).expect("timed rep");
        if best.as_ref().is_none_or(|b| t.total() < b.total()) {
            best = Some(t);
        }
    }
    best.expect("reps >= 1")
}

/// Testable core of [`arg`]: `Ok(None)` when the key is absent,
/// `Ok(Some(v))` when present and parseable, and `Err` (naming the key
/// and the offending value) when a value is present but does not parse —
/// a typo like `--reps abc` must never silently become the default.
pub fn parse_arg<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == key) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{key} expects a value but none was given"));
    };
    raw.parse().map(Some).map_err(|_| {
        format!(
            "invalid value {raw:?} for {key} (expected a {})",
            std::any::type_name::<T>()
        )
    })
}

/// Tiny argv parser for the harness binaries: `--key value` pairs.
/// Missing keys fall back to `default`; a present-but-unparseable value
/// aborts the process with a clear message instead of being ignored.
pub fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    match parse_arg(args, key) {
        Ok(v) => v.unwrap_or(default),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Flag presence.
pub fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(BenchAlgo::LoWino(4).label(), "INT8 Winograd F(4x4) LoWino");
        assert_eq!(
            BenchAlgo::DownScale(2).algorithm(),
            Algorithm::DownScale { m: 2 }
        );
    }

    #[test]
    fn synth_data_is_deterministic() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        assert_eq!(
            synth_input(&spec, 5).max_abs_diff(&synth_input(&spec, 5)),
            0.0
        );
        assert!(synth_input(&spec, 5).max_abs_diff(&synth_input(&spec, 6)) > 0.0);
        assert!(synth_weights(&spec, 1).max_abs() > 0.0);
    }

    #[test]
    fn run_timed_executes() {
        let spec = ConvShape::same(1, 8, 8, 8, 3).validate().unwrap();
        let w = synth_weights(&spec, 1);
        let input = BlockedImage::from_nchw(&synth_input(&spec, 2));
        let mut engine = Engine::new(1);
        let mut layer = build_executor(BenchAlgo::LoWino(2), &spec, &w, &input, &engine).unwrap();
        let mut out = engine.alloc_output(&spec);
        let ctx = engine.context_mut();
        let t = run_timed(&mut layer, &input, &mut out, ctx, 2);
        assert!(t.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--reps", "7", "--flag"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg(&args, "--reps", 3u32), 7);
        assert_eq!(arg(&args, "--missing", 3u32), 3);
        assert!(has_flag(&args, "--flag"));
        assert!(!has_flag(&args, "--other"));
    }

    #[test]
    fn bad_arg_values_are_errors_not_defaults() {
        let args: Vec<String> = ["--reps", "abc", "--tail"].iter().map(|s| s.to_string()).collect();
        let err = parse_arg::<u32>(&args, "--reps").unwrap_err();
        assert!(err.contains("--reps"), "message names the key: {err}");
        assert!(err.contains("abc"), "message names the value: {err}");
        // A key at the end of argv with no value is also an error.
        let err = parse_arg::<u32>(&args, "--tail").unwrap_err();
        assert!(err.contains("--tail"), "{err}");
        // Present-and-valid / absent keys still behave as before.
        assert_eq!(parse_arg::<String>(&args, "--reps").unwrap().as_deref(), Some("abc"));
        assert_eq!(parse_arg::<u32>(&args, "--missing").unwrap(), None);
    }
}
