//! The benchmarked convolutional layers of paper Table 2.

use lowino::ConvShape;

/// One Table 2 row.
#[derive(Debug, Clone, Copy)]
pub struct LayerSpec {
    /// Paper name (e.g. `VGG16_b`).
    pub name: &'static str,
    /// Batch size `B`.
    pub batch: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Spatial size `H = W`.
    pub hw: usize,
    /// Filter size `r`.
    pub r: usize,
}

impl LayerSpec {
    /// The layer as a validated [`ConvShape`] ("same" padding, stride 1 —
    /// the Table 2 configuration), optionally scaled down for small hosts:
    /// `batch_div` divides the batch, `hw_div` divides the spatial size
    /// (both clamped so dimensions stay legal).
    pub fn shape(&self, batch_div: usize, hw_div: usize) -> ConvShape {
        let batch = (self.batch / batch_div.max(1)).max(1);
        let hw = (self.hw / hw_div.max(1)).max(self.r + 1);
        ConvShape::same(batch, self.c, self.k, hw, self.r)
            .validate()
            .expect("Table 2 layer is valid")
    }
}

/// All 20 layers of paper Table 2, verbatim.
pub fn paper_layers() -> Vec<LayerSpec> {
    let l = |name, batch, c, k, hw| LayerSpec {
        name,
        batch,
        c,
        k,
        hw,
        r: 3,
    };
    vec![
        l("AlexNet_a", 64, 384, 384, 13),
        l("AlexNet_b", 64, 384, 256, 13),
        l("VGG16_a", 64, 256, 256, 58),
        l("VGG16_b", 64, 512, 512, 30),
        l("VGG16_c", 64, 512, 512, 16),
        l("ResNet-50_a", 64, 128, 128, 28),
        l("ResNet-50_b", 64, 256, 256, 14),
        l("ResNet-50_c", 64, 512, 512, 7),
        l("GoogLeNet_a", 64, 128, 192, 28),
        l("GoogLeNet_b", 64, 128, 256, 14),
        l("GoogLeNet_c", 64, 192, 384, 7),
        l("YOLOv3_a", 1, 64, 128, 64),
        l("YOLOv3_b", 1, 128, 256, 32),
        l("YOLOv3_c", 1, 256, 512, 16),
        l("FusionNet_a", 1, 128, 128, 320),
        l("FusionNet_b", 1, 256, 256, 160),
        l("FusionNet_c", 1, 512, 512, 80),
        l("U-Net_a", 1, 128, 128, 282),
        l("U-Net_b", 1, 256, 256, 138),
        l("U-Net_c", 1, 512, 512, 66),
    ]
}

/// Look up a Table 2 layer by name.
pub fn layer_by_name(name: &str) -> Option<LayerSpec> {
    paper_layers().into_iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_twenty_layers() {
        let ls = paper_layers();
        assert_eq!(ls.len(), 20);
        assert!(ls.iter().all(|l| l.r == 3));
        // Classification nets use batch 64, detection/segmentation batch 1
        // (paper §5.1 convention).
        assert!(ls.iter().filter(|l| l.batch == 64).count() == 11);
        assert!(ls.iter().filter(|l| l.batch == 1).count() == 9);
    }

    #[test]
    fn shapes_validate_and_scale() {
        for l in paper_layers() {
            let full = l.shape(1, 1);
            assert_eq!(full.h, l.hw);
            assert_eq!(full.batch, l.batch);
            let scaled = l.shape(16, 2);
            assert!(scaled.batch >= 1);
            assert!(scaled.h >= 4);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(layer_by_name("VGG16_b").unwrap().k, 512);
        assert!(layer_by_name("nope").is_none());
    }
}
