//! Plain-text table rendering for the harness binaries.

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "table arity");
        self.rows.push(cells);
    }

    /// Render with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{c:<w$}", w = width[i])
                    } else {
                        format!("{c:>w$}", w = width[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1e6 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["layer", "time", "speedup"]);
        t.row(vec!["VGG16_b", "1.23ms", "1.50x"]);
        t.row(vec!["Y", "999.1us", "0.90x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("layer"));
        assert!(lines[2].starts_with("VGG16_b"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "table arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
