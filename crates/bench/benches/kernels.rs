//! Micro-benchmarks of the computational primitives: the `vpdpbusd` tiers
//! (the SIMD-tier ablation at instruction level), the INT16 sibling, the
//! Winograd transform codelets and the quantization kernels.
//!
//! Run with `cargo bench --bench kernels`; set
//! `LOWINO_BENCH_JSON=BENCH_kernels.json` to accumulate a JSON-line log.

use lowino_simd::{dpbusd, dpwssd, quantize_f32_lanes_i8, SimdTier};
use lowino_testkit::{black_box, BenchGroup};
use lowino_winograd::TileTransformer;
use std::time::Duration;

fn group(name: &str) -> BenchGroup {
    let mut g = BenchGroup::new(name);
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    g
}

fn bench_dpbusd_tiers() {
    let mut group = group("dpbusd");
    let a = [77u8; 64];
    let b = [-13i8; 64];
    // 64 MACs per call.
    group.throughput_elements(64);
    for tier in SimdTier::available() {
        let mut acc = [0i32; 16];
        group.bench_function(tier, || {
            dpbusd(tier, &mut acc, &a, &b);
            black_box(acc[0]);
        });
    }
}

fn bench_dpwssd() {
    let mut group = group("dpwssd");
    let a = [1234i16; 32];
    let b = [-567i16; 32];
    // 32 MACs per call — half of dpbusd: the up-casting penalty.
    group.throughput_elements(32);
    for tier in SimdTier::available() {
        let mut acc = [0i32; 16];
        group.bench_function(tier, || {
            dpwssd(tier, &mut acc, &a, &b);
            black_box(acc[0]);
        });
    }
}

fn bench_transform_codelets() {
    let mut group = group("input_transform_64lanes");
    for m in [2usize, 4, 6] {
        let tt = TileTransformer::new(m, 3).unwrap();
        let n = tt.n();
        let lanes = 64;
        let d = vec![0.5f32; n * n * lanes];
        let mut v = vec![0f32; n * n * lanes];
        let mut scratch = tt.make_scratch(lanes);
        group.throughput_elements((n * n * lanes) as u64);
        group.bench_function(format!("F({m},3)"), || {
            tt.input_tile_f32(&d, &mut v, &mut scratch);
            black_box(v[0]);
        });
    }
}

fn bench_quantize() {
    let mut group = group("quantize_64lanes");
    let src = vec![0.37f32; 64];
    let mut dst = vec![0u8; 64];
    group.throughput_elements(64);
    group.bench_function("f32_to_u8_compensated", || {
        quantize_f32_lanes_i8(&src, 42.3, true, &mut dst);
        black_box(dst[0]);
    });
}

fn main() {
    bench_dpbusd_tiers();
    bench_dpwssd();
    bench_transform_codelets();
    bench_quantize();
}
