//! Micro-benchmarks of the computational primitives: the `vpdpbusd` tiers
//! (the SIMD-tier ablation at instruction level), the INT16 sibling, the
//! Winograd transform codelets and the quantization kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lowino_simd::{dpbusd, dpwssd, quantize_f32_lanes_i8, SimdTier};
use lowino_winograd::TileTransformer;

fn bench_dpbusd_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpbusd");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(1));
    let a = [77u8; 64];
    let b = [-13i8; 64];
    // 64 MACs per call.
    group.throughput(Throughput::Elements(64));
    for tier in SimdTier::available() {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |bench, &tier| {
            let mut acc = [0i32; 16];
            bench.iter(|| {
                dpbusd(tier, &mut acc, &a, &b);
                std::hint::black_box(acc[0])
            });
        });
    }
    group.finish();
}

fn bench_dpwssd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpwssd");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(1));
    let a = [1234i16; 32];
    let b = [-567i16; 32];
    // 32 MACs per call — half of dpbusd: the up-casting penalty.
    group.throughput(Throughput::Elements(32));
    for tier in SimdTier::available() {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |bench, &tier| {
            let mut acc = [0i32; 16];
            bench.iter(|| {
                dpwssd(tier, &mut acc, &a, &b);
                std::hint::black_box(acc[0])
            });
        });
    }
    group.finish();
}

fn bench_transform_codelets(c: &mut Criterion) {
    let mut group = c.benchmark_group("input_transform_64lanes");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(1));
    for m in [2usize, 4, 6] {
        let tt = TileTransformer::new(m, 3).unwrap();
        let n = tt.n();
        let lanes = 64;
        let d = vec![0.5f32; n * n * lanes];
        let mut v = vec![0f32; n * n * lanes];
        let mut scratch = tt.make_scratch(lanes);
        group.throughput(Throughput::Elements((n * n * lanes) as u64));
        group.bench_with_input(BenchmarkId::new("F(m,3)", m), &m, |bench, _| {
            bench.iter(|| {
                tt.input_tile_f32(&d, &mut v, &mut scratch);
                std::hint::black_box(v[0])
            });
        });
    }
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_64lanes");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(1));
    let src = vec![0.37f32; 64];
    let mut dst = vec![0u8; 64];
    group.throughput(Throughput::Elements(64));
    group.bench_function("f32_to_u8_compensated", |bench| {
        bench.iter(|| {
            quantize_f32_lanes_i8(&src, 42.3, true, &mut dst);
            std::hint::black_box(dst[0])
        });
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_dpbusd_tiers,
    bench_dpwssd,
    bench_transform_codelets,
    bench_quantize
);
criterion_main!(kernels);
