//! Transform codelet bench backing the compiled-tape PR: per-tile cost of
//! the interpreted codelet executor (the reference oracle retained in
//! `lowino_winograd::codelet`) against the compiled instruction tape
//! (`lowino_winograd::tape`) executed at the host's native vector tier,
//! for every supported `F(m, 3)` input / filter / output transform at the
//! production lane count (`LANES = 64`, one channel block).
//!
//! Two extra pairs measure the fused epilogues against their two-pass
//! spellings:
//!
//! * `input_quant`: interpreted transform + scalar per-`t` quantize vs. the
//!   fused row pass that quantizes while the tile is register-resident;
//! * `output_dequant`: scalar de-quantize + interpreted transform vs. the
//!   fused column pass with the scale folded into the i32→f32 loads.
//!
//! Run with `cargo bench --bench transforms`; set
//! `LOWINO_BENCH_JSON=BENCH_PR3.json` to accumulate the JSON-line log and
//! `LOWINO_BENCH_SMOKE=1` for a seconds-long CI smoke configuration.

use lowino_simd::vecf32::VecTier;
use lowino_simd::{dequantize_i32_lanes, quantize_f32_lanes_i8};
use lowino_tensor::LANES;
use lowino_testkit::{black_box, BenchGroup, Rng};
use lowino_winograd::TileTransformer;
use std::time::Duration;

struct Config {
    smoke: bool,
    vt: VecTier,
}

impl Config {
    fn from_env() -> Self {
        Self {
            smoke: std::env::var("LOWINO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
            vt: VecTier::detect(),
        }
    }

    fn tune(&self, group: &mut BenchGroup) {
        if self.smoke {
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(40))
                .warm_up_time(Duration::from_millis(10));
        } else {
            group
                .sample_size(15)
                .measurement_time(Duration::from_millis(900))
                .warm_up_time(Duration::from_millis(150));
        }
    }
}

fn bench_tile(m: usize, cfg: &Config) {
    let tt = TileTransformer::new(m, 3).expect("supported tile");
    let n = tt.n();
    let vt = cfg.vt;
    let mut rng = Rng::seed_from_u64(0x9E3779B97F4A7C15 ^ m as u64);

    let mut d = vec![0f32; n * n * LANES];
    rng.fill_f32(&mut d, -6.0, 6.0);
    let mut g = vec![0f32; 3 * 3 * LANES];
    rng.fill_f32(&mut g, -2.0, 2.0);
    let z_i32: Vec<i32> = {
        let mut buf = vec![0f32; n * n * LANES];
        rng.fill_f32(&mut buf, -2e6, 2e6);
        buf.iter().map(|&x| x as i32).collect()
    };
    let mut alphas = vec![0f32; n * n];
    rng.fill_f32(&mut alphas, 0.5, 8.0);
    let inv = 1.7e-4f32;

    let mut s = tt.make_scratch(LANES);
    let mut v = vec![0f32; n * n * LANES];
    let mut u = vec![0f32; n * n * LANES];
    let mut y = vec![0f32; m * m * LANES];
    let mut q = vec![0u8; n * n * LANES];
    let mut zf = vec![0f32; n * n * LANES];

    // -- Input transform: interpreted vs compiled.
    let mut group = BenchGroup::new(format!("transforms/F{m}x3/input/{vt}"));
    cfg.tune(&mut group);
    group.throughput_elements((n * n * LANES) as u64);
    group.bench_function("interpreted", || {
        tt.input_tile_f32(black_box(&d), &mut v, &mut s);
        black_box(v[0]);
    });
    group.bench_function("compiled", || {
        tt.input_tile_f32_compiled(vt, black_box(&d), &mut v, &mut s);
        black_box(v[0]);
    });

    // -- Filter transform: interpreted vs compiled.
    let mut group = BenchGroup::new(format!("transforms/F{m}x3/filter/{vt}"));
    cfg.tune(&mut group);
    group.throughput_elements((n * n * LANES) as u64);
    group.bench_function("interpreted", || {
        tt.filter_tile_f32(black_box(&g), &mut u, &mut s);
        black_box(u[0]);
    });
    group.bench_function("compiled", || {
        tt.filter_tile_f32_compiled(vt, black_box(&g), &mut u, &mut s);
        black_box(u[0]);
    });

    // -- Output transform: interpreted vs compiled.
    let mut group = BenchGroup::new(format!("transforms/F{m}x3/output/{vt}"));
    cfg.tune(&mut group);
    group.throughput_elements((m * m * LANES) as u64);
    group.bench_function("interpreted", || {
        tt.output_tile_f32(black_box(&v), &mut y, &mut s);
        black_box(y[0]);
    });
    group.bench_function("compiled", || {
        tt.output_tile_f32_compiled(vt, black_box(&v), &mut y, &mut s);
        black_box(y[0]);
    });

    // -- Fused input-quantize epilogue vs the two-pass spelling.
    let mut group = BenchGroup::new(format!("transforms/F{m}x3/input_quant/{vt}"));
    cfg.tune(&mut group);
    group.throughput_elements((n * n * LANES) as u64);
    group.bench_function("two_pass", || {
        tt.input_tile_f32(black_box(&d), &mut v, &mut s);
        for t in 0..n * n {
            quantize_f32_lanes_i8(
                &v[t * LANES..(t + 1) * LANES],
                alphas[t],
                true,
                &mut q[t * LANES..(t + 1) * LANES],
            );
        }
        black_box(q[0]);
    });
    group.bench_function("fused", || {
        tt.input_tile_quantized(vt, black_box(&d), &alphas, true, &mut q, &mut s);
        black_box(q[0]);
    });

    // -- Fused output-dequantize prologue vs the two-pass spelling.
    let mut group = BenchGroup::new(format!("transforms/F{m}x3/output_dequant/{vt}"));
    cfg.tune(&mut group);
    group.throughput_elements((m * m * LANES) as u64);
    group.bench_function("two_pass", || {
        dequantize_i32_lanes(black_box(&z_i32), inv, &mut zf);
        tt.output_tile_f32(&zf, &mut y, &mut s);
        black_box(y[0]);
    });
    group.bench_function("fused", || {
        tt.output_tile_dequantized(
            vt,
            black_box(&z_i32),
            core::slice::from_ref(&inv),
            0,
            &mut y,
            &mut s,
        );
        black_box(y[0]);
    });
}

fn main() {
    lowino_trace::init_from_env();
    let cfg = Config::from_env();
    if cfg.smoke {
        // One tile size, enough to prove both paths build and run.
        bench_tile(4, &cfg);
        lowino_trace::flush_to_env();
        return;
    }
    for m in [2, 4, 6] {
        bench_tile(m, &cfg);
    }
    lowino_trace::flush_to_env();
}
