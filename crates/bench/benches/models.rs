//! Whole-model bench for the graph engine: MiniResNet and MiniVGG driven
//! end-to-end through [`lowino_nn::CompiledGraph::execute`] (liveness-
//! planned arena, fused conv epilogues) against the per-layer
//! [`lowino_nn::QuantizedModel`] interpreter. `throughput_elements` is the
//! multiply-accumulate count of one forward pass (computed by walking the
//! layer list with a shape tracker), so `gelems_per_s` reads as GMAC/s —
//! comparable across batch sizes and architectures. The old report used
//! `elements = batch`, which rounded every model's rate down to
//! `"gelems_per_s":0.0000`.
//!
//! Run with `cargo bench --bench models`; set
//! `LOWINO_BENCH_JSON=BENCH_PR7.json` to accumulate the JSON-line log and
//! `LOWINO_BENCH_SMOKE=1` for a seconds-long CI smoke configuration (one
//! MiniResNet cell). With `LOWINO_TRACE=<path>` the smoke run also emits
//! whole-model `graph/execute` + `graph/layer` spans for `trace_check`.

use lowino::{Algorithm, Tensor4};
use lowino_nn::{
    mini_resnet, mini_vgg, CompiledGraph, GraphSpec, Layer, Model, QuantizedModel, QuantizedSpec,
};
use lowino_testkit::{black_box, BenchGroup, Rng};
use std::time::Duration;

struct Config {
    smoke: bool,
}

impl Config {
    fn from_env() -> Self {
        Self {
            smoke: std::env::var("LOWINO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
        }
    }
}

/// Multiply-accumulate count of one forward pass at an `(batch, ·, h, w)`
/// input. The shape tracker mirrors each layer's forward: same-padding
/// stride-1 convs preserve `H×W`, max-pool halves it, GAP collapses it to
/// `1×1`, and a residual body preserves shape. Element-wise layers (ReLU,
/// the residual add) contribute no MACs.
fn model_macs(layers: &[Layer], batch: usize, mut h: usize, mut w: usize) -> u64 {
    let mut macs = 0u64;
    for l in layers {
        match l {
            Layer::Conv(c) => {
                macs += (batch * c.out_channels() * c.in_channels() * h * w) as u64
                    * (c.filter() * c.filter()) as u64;
            }
            Layer::MaxPool(_) => {
                h /= 2;
                w /= 2;
            }
            Layer::Gap(_) => {
                h = 1;
                w = 1;
            }
            Layer::Linear(lin) => macs += (batch * lin.weights.len()) as u64,
            Layer::Residual(r) => macs += model_macs(&r.body, batch, h, w),
            Layer::ReLU(_) => {}
        }
    }
    macs
}

fn input(batch: usize, seed: u64) -> Tensor4 {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Tensor4::zeros(batch, 3, 8, 8);
    rng.fill_f32(t.data_mut(), -1.0, 1.0);
    t
}

fn bench_model(
    name: &str,
    build: fn(usize, usize, usize, u64) -> Model,
    batch: usize,
    threads: usize,
    cfg: &Config,
) {
    let x = input(batch, 11);
    let calib = input(batch, 5);
    let spec = GraphSpec { m: 2, batch, threads };

    let mut model = build(3, 8, 3, 31);
    let mut graph = CompiledGraph::compile(&mut model, &calib, &spec).expect("compile graph");
    let mut logits = Tensor4::zeros(batch, 3, 1, 1);
    // Warm-up outside the timed region: the first execute grows the
    // per-worker scratch arenas; afterwards execute is allocation-free.
    graph.execute(&x, &mut logits).expect("warm-up");

    let mut model = build(3, 8, 3, 31);
    let mut per_layer = QuantizedModel::from_model(
        &mut model,
        &calib,
        &QuantizedSpec {
            algorithm: Algorithm::LoWino { m: 2 },
            per_position: false,
            batch,
            threads,
        },
    )
    .expect("convert per-layer model");

    let mut group = BenchGroup::new(format!("models/{name}/b{batch}/t{threads}"));
    if cfg.smoke {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(60))
            .warm_up_time(Duration::from_millis(20));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
    }
    // One element = one multiply-accumulate: `gelems_per_s` is GMAC/s.
    // (Both the graph engine and the per-layer interpreter run the same
    // layer list, so one MAC count serves both bench functions.)
    group.throughput_elements(model_macs(&model.layers, batch, 8, 8));

    group.bench_function("graph", || {
        graph.execute(&x, &mut logits).expect("bench rep");
        black_box(logits.data()[0]);
    });
    group.bench_function("per_layer", || {
        let out = per_layer.logits(&x);
        black_box(out.data()[0]);
    });
}

fn main() {
    lowino_trace::init_from_env();
    let cfg = Config::from_env();
    if cfg.smoke {
        // One MiniResNet cell: proves compile + arena execute + trace spans.
        bench_model("miniresnet", mini_resnet, 2, 2, &cfg);
        lowino_trace::flush_to_env();
        return;
    }
    for &(batch, threads) in &[(4usize, 1usize), (4, 2), (8, 4)] {
        bench_model("miniresnet", mini_resnet, batch, threads, &cfg);
        bench_model("minivgg", mini_vgg, batch, threads, &cfg);
    }
    lowino_trace::flush_to_env();
}
