//! Layer-level benches backing paper Fig. 8 and Fig. 10: whole-layer wall
//! time of the compared implementations on representative Table 2 layers
//! (scaled for CI-sized machines; the `fig8_layers`/`fig10_breakdown`
//! binaries run the full sweep and print the paper-style tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lowino::prelude::*;
use lowino_bench::layers::layer_by_name;
use lowino_bench::{build_executor, synth_input, synth_weights, BenchAlgo};

fn bench_layer(c: &mut Criterion, name: &str, batch_div: usize, hw_div: usize) {
    let layer = layer_by_name(name).expect("Table 2 layer");
    let spec = layer.shape(batch_div, hw_div);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);

    let mut group = c.benchmark_group(format!("fig8/{name}"));
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(spec.direct_macs()));
    for algo in [
        BenchAlgo::DirectInt8,
        BenchAlgo::DownScale(2),
        BenchAlgo::LoWino(2),
        BenchAlgo::LoWino(4),
    ] {
        let mut l = build_executor(algo, &spec, &weights, &input, &engine).expect("plan");
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |bench, _| {
                bench.iter(|| {
                    let t = engine.execute(&mut l, &input, &mut out);
                    std::hint::black_box(t.total())
                });
            },
        );
    }
    group.finish();
}

fn fig8_representatives(c: &mut Criterion) {
    // One compute-heavy classification layer, one small-spatial, one
    // batch-1 detection layer, one batch-1 segmentation layer.
    bench_layer(c, "VGG16_c", 32, 1);
    bench_layer(c, "ResNet-50_c", 32, 1);
    bench_layer(c, "YOLOv3_c", 1, 1);
    bench_layer(c, "U-Net_c", 1, 2);
}

criterion_group!(layers, fig8_representatives);
criterion_main!(layers);
