//! Layer-level benches backing paper Fig. 8 and Fig. 10: whole-layer wall
//! time of the compared implementations on representative Table 2 layers
//! (scaled for CI-sized machines; the `fig8_layers`/`fig10_breakdown`
//! binaries run the full sweep and print the paper-style tables).
//!
//! Run with `cargo bench --bench layers`; set
//! `LOWINO_BENCH_JSON=BENCH_layers.json` to accumulate a JSON-line log.

use lowino::prelude::*;
use lowino_bench::layers::layer_by_name;
use lowino_bench::{build_executor, synth_input, synth_weights, BenchAlgo};
use lowino_testkit::{black_box, BenchGroup};
use std::time::Duration;

fn bench_layer(name: &str, batch_div: usize, hw_div: usize) {
    let layer = layer_by_name(name).expect("Table 2 layer");
    let spec = layer.shape(batch_div, hw_div);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);

    let mut group = BenchGroup::new(format!("fig8/{name}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .throughput_elements(spec.direct_macs());
    for algo in [
        BenchAlgo::DirectInt8,
        BenchAlgo::DownScale(2),
        BenchAlgo::LoWino(2),
        BenchAlgo::LoWino(4),
    ] {
        let mut l = build_executor(algo, &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(algo.label(), || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn main() {
    // One compute-heavy classification layer, one small-spatial, one
    // batch-1 detection layer, one batch-1 segmentation layer.
    bench_layer("VGG16_c", 32, 1);
    bench_layer("ResNet-50_c", 32, 1);
    bench_layer("YOLOv3_c", 1, 1);
    bench_layer("U-Net_c", 1, 2);
}
