//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **tile size** — LoWino `F(2,3)` vs `F(4,3)` vs `F(6,3)` on one layer;
//! * **blocking** — tuned-ish default vs deliberately poor GEMM blocking;
//! * **SIMD tier** — the same LoWino layer on every available tier;
//! * **scheduling** — thread scaling of the static fork-join schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowino::prelude::*;
use lowino::{Blocking, SimdTier};
use lowino_bench::layers::layer_by_name;
use lowino_bench::{build_executor, synth_input, synth_weights, BenchAlgo};
use std::time::Duration;

fn common<'a>(c: &'a mut Criterion, group_name: &str) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn ablation_tile_size(c: &mut Criterion) {
    let layer = layer_by_name("VGG16_c").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let mut group = common(c, "ablation/tile_size");
    for m in [2usize, 4, 6] {
        let mut l = build_executor(BenchAlgo::LoWino(m), &spec, &weights, &input, &engine)
            .expect("plan");
        group.bench_with_input(BenchmarkId::new("lowino_m", m), &m, |bench, _| {
            bench.iter(|| {
                let t = engine.execute(&mut l, &input, &mut out);
                std::hint::black_box(t.total())
            });
        });
    }
    group.finish();
}

fn ablation_blocking(c: &mut Criterion) {
    let layer = layer_by_name("ResNet-50_c").unwrap();
    let spec = layer.shape(16, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let blockings = [
        (
            "default-6x4",
            None, // planner default
        ),
        (
            "degenerate-1x1",
            Some(Blocking {
                n_blk: 4,
                c_blk: 64,
                k_blk: 64,
                row_blk: 1,
                col_blk: 1,
            }),
        ),
        (
            "wide-8x2",
            Some(Blocking {
                n_blk: 96,
                c_blk: 512,
                k_blk: 256,
                row_blk: 8,
                col_blk: 2,
            }),
        ),
    ];
    let mut group = common(c, "ablation/blocking");
    for (name, blocking) in blockings {
        let mut l = build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine)
            .expect("plan");
        // Reach into the executor to override the blocking.
        if let Some(b) = blocking {
            use lowino::LoWinoConv;
            let any = l.executor_mut();
            // Rebuild instead of downcasting: plan a dedicated executor.
            let _ = any;
            let cal = lowino::calibrate_winograd_domain(&spec, 4, &[input.clone()]).unwrap();
            let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            conv.set_blocking(b);
            group.bench_function(BenchmarkId::new("blocking", name), |bench| {
                use lowino::ConvExecutor;
                bench.iter(|| {
                    let t = conv.execute(&input, &mut out, engine.context_mut());
                    std::hint::black_box(t.total())
                });
            });
        } else {
            group.bench_function(BenchmarkId::new("blocking", name), |bench| {
                bench.iter(|| {
                    let t = engine.execute(&mut l, &input, &mut out);
                    std::hint::black_box(t.total())
                });
            });
        }
    }
    group.finish();
}

fn ablation_simd_tier(c: &mut Criterion) {
    let layer = layer_by_name("GoogLeNet_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common(c, "ablation/simd_tier");
    for tier in SimdTier::available() {
        let mut engine = Engine::with_tier(1, tier);
        let mut out = engine.alloc_output(&spec);
        let mut l = build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine)
            .expect("plan");
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |bench, _| {
            bench.iter(|| {
                let t = engine.execute(&mut l, &input, &mut out);
                std::hint::black_box(t.total())
            });
        });
    }
    group.finish();
}

fn ablation_scheduling(c: &mut Criterion) {
    let layer = layer_by_name("ResNet-50_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common(c, "ablation/threads");
    for threads in [1usize, 2, 4] {
        let mut engine = Engine::new(threads);
        let mut out = engine.alloc_output(&spec);
        let mut l = build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine)
            .expect("plan");
        group.bench_with_input(BenchmarkId::new("static", threads), &threads, |bench, _| {
            bench.iter(|| {
                let t = engine.execute(&mut l, &input, &mut out);
                std::hint::black_box(t.total())
            });
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablation_tile_size,
    ablation_blocking,
    ablation_simd_tier,
    ablation_scheduling
);
criterion_main!(ablations);
