//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **tile size** — LoWino `F(2,3)` vs `F(4,3)` vs `F(6,3)` on one layer;
//! * **blocking** — tuned-ish default vs deliberately poor GEMM blocking;
//! * **SIMD tier** — the same LoWino layer on every available tier;
//! * **scheduling** — thread scaling of the static fork-join schedule;
//! * **tuned vs default** — Autotuner 2.0 seeding quality on one layer:
//!   planner default vs pure cost-model seed vs measured top-K winner vs
//!   full-lattice-sweep winner (PR 8 acceptance table in EXPERIMENTS.md);
//! * **graph overhead** — the graph engine with its default per-conv
//!   health policy vs health checks disabled vs the per-layer
//!   interpreter, isolating the ~3–6% graph-vs-per_layer gap seen in
//!   BENCH_PR7.json (diagnosis in EXPERIMENTS.md).
//!
//! Run with `cargo bench --bench ablations`; set
//! `LOWINO_BENCH_JSON=BENCH_ablations.json` to accumulate a JSON-line log.

use lowino::prelude::*;
use lowino::{Blocking, SimdTier};
use lowino_bench::layers::layer_by_name;
use lowino_bench::{build_executor, synth_input, synth_weights, BenchAlgo};
use lowino_testkit::{black_box, BenchGroup};
use std::time::Duration;

fn common(group_name: &str) -> BenchGroup {
    let mut g = BenchGroup::new(group_name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn ablation_tile_size() {
    let layer = layer_by_name("VGG16_c").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let mut group = common("ablation/tile_size");
    for m in [2usize, 4, 6] {
        let mut l =
            build_executor(BenchAlgo::LoWino(m), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(format!("lowino_m/{m}"), || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn ablation_blocking() {
    let layer = layer_by_name("ResNet-50_c").unwrap();
    let spec = layer.shape(16, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let blockings = [
        (
            "default-6x4",
            None, // planner default
        ),
        (
            "degenerate-1x1",
            Some(Blocking {
                n_blk: 4,
                c_blk: 64,
                k_blk: 64,
                row_blk: 1,
                col_blk: 1,
            }),
        ),
        (
            "wide-8x2",
            Some(Blocking {
                n_blk: 96,
                c_blk: 512,
                k_blk: 256,
                row_blk: 8,
                col_blk: 2,
            }),
        ),
    ];
    let mut group = common("ablation/blocking");
    for (name, blocking) in blockings {
        if let Some(b) = blocking {
            // Plan a dedicated executor so the blocking can be overridden.
            use lowino::{ConvExecutor, LoWinoConv};
            let cal = lowino::calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&input)).unwrap();
            let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            conv.set_blocking(b);
            group.bench_function(format!("blocking/{name}"), || {
                let t = conv.execute(&input, &mut out, engine.context_mut()).expect("bench rep");
                black_box(t.total());
            });
        } else {
            let mut l = build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine)
                .expect("plan");
            group.bench_function(format!("blocking/{name}"), || {
                let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
                black_box(t.total());
            });
        }
    }
}

fn ablation_simd_tier() {
    let layer = layer_by_name("GoogLeNet_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common("ablation/simd_tier");
    for tier in SimdTier::available() {
        let mut engine = Engine::with_tier(1, tier);
        let mut out = engine.alloc_output(&spec);
        let mut l =
            build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(tier, || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn ablation_scheduling() {
    let layer = layer_by_name("ResNet-50_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common("ablation/threads");
    for threads in [1usize, 2, 4] {
        let mut engine = Engine::new(threads);
        let mut out = engine.alloc_output(&spec);
        let mut l =
            build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(format!("static/{threads}"), || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

/// Autotuner 2.0 seeding quality: how close do the zero-cost seeds get
/// to the measured winners? Four blockings for the same layer GEMM —
/// planner default, pure cost-model seed (what an empty-wisdom engine
/// installs at compile time), the measured winner among the cost model's
/// top-K, and the measured winner of the full candidate lattice.
fn ablation_tuned_vs_default() {
    use lowino::{ConvExecutor, GemmCostModel, GemmShape, LoWinoConv};
    use lowino_gemm::{tune_blocking, tune_blocking_full};
    use lowino_parallel::StaticPool;

    let mut group = common("ablation/tuned_vs_default");
    for layer_name in ["ResNet-50_b", "ResNet-50_c", "VGG16_c"] {
        let layer = layer_by_name(layer_name).unwrap();
        let spec = layer.shape(16, 1);
        let weights = synth_weights(&spec, 42);
        let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
        let mut engine = Engine::new(1);
        let tier = engine.context().tier;
        let mut out = engine.alloc_output(&spec);

        let geom = spec.tiles(4).unwrap();
        let shape = GemmShape { t: geom.t(), n: geom.total, c: spec.in_c, k: spec.out_c };
        let mut pool = StaticPool::new(1);
        let candidates = [
            ("default", Blocking::default_for(&shape)),
            ("cost_seed", GemmCostModel::default().seed(tier, &shape)),
            ("topk_measured", tune_blocking(tier, &shape, &mut pool, 2).0),
            ("full_measured", tune_blocking_full(tier, &shape, &mut pool, 2).0),
        ];

        let cal =
            lowino::calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&input)).unwrap();
        let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
        for (name, blocking) in candidates {
            conv.set_blocking(blocking);
            group.bench_function(format!("{layer_name}/{name}"), || {
                let t = conv.execute(&input, &mut out, engine.context_mut()).expect("bench rep");
                black_box(t.total());
            });
        }
    }
}

/// Isolate the graph-vs-per_layer gap (BENCH_PR7.json shows graph ~3–6%
/// behind): the graph engine wraps every conv in a `ResilientConv` whose
/// default health policy scans the quantized intermediates for
/// saturation and the output for non-finite values on every execute; the
/// per-layer interpreter does neither. Benching the same compiled graph
/// with health checks disabled attributes the gap.
fn ablation_graph_overhead() {
    use lowino::{Algorithm, HealthPolicy, Tensor4};
    use lowino_nn::{
        mini_vgg, CompiledGraph, GraphSpec, QuantizedModel, QuantizedSpec,
    };
    use lowino_testkit::Rng;

    let (batch, threads) = (4usize, 2usize);
    let mut rng = Rng::seed_from_u64(11);
    let mut x = Tensor4::zeros(batch, 3, 8, 8);
    rng.fill_f32(x.data_mut(), -1.0, 1.0);
    let calib = x.clone();
    let spec = GraphSpec { m: 2, batch, threads };

    let mut model = mini_vgg(3, 8, 3, 31);
    let mut graph = CompiledGraph::compile(&mut model, &calib, &spec).expect("compile");
    let mut model = mini_vgg(3, 8, 3, 31);
    let health_off = HealthPolicy { max_saturation_ratio: 2.0, check_output_finite: false };
    let mut graph_no_health =
        CompiledGraph::compile_with_health(&mut model, &calib, &spec, health_off)
            .expect("compile health-off");
    let mut model = mini_vgg(3, 8, 3, 31);
    let mut per_layer = QuantizedModel::from_model(
        &mut model,
        &calib,
        &QuantizedSpec {
            algorithm: Algorithm::LoWino { m: 2 },
            per_position: false,
            batch,
            threads,
        },
    )
    .expect("convert per-layer model");

    let mut logits = Tensor4::zeros(batch, 3, 1, 1);
    graph.execute(&x, &mut logits).expect("warm-up");
    graph_no_health.execute(&x, &mut logits).expect("warm-up");

    let mut group = common("ablation/graph_overhead");
    group.bench_function("graph_default_health", || {
        graph.execute(&x, &mut logits).expect("bench rep");
        black_box(logits.data()[0]);
    });
    group.bench_function("graph_health_off", || {
        graph_no_health.execute(&x, &mut logits).expect("bench rep");
        black_box(logits.data()[0]);
    });
    group.bench_function("per_layer", || {
        let out = per_layer.logits(&x);
        black_box(out.data()[0]);
    });
}

fn main() {
    ablation_tile_size();
    ablation_blocking();
    ablation_simd_tier();
    ablation_scheduling();
    ablation_tuned_vs_default();
    ablation_graph_overhead();
}
