//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **tile size** — LoWino `F(2,3)` vs `F(4,3)` vs `F(6,3)` on one layer;
//! * **blocking** — tuned-ish default vs deliberately poor GEMM blocking;
//! * **SIMD tier** — the same LoWino layer on every available tier;
//! * **scheduling** — thread scaling of the static fork-join schedule.
//!
//! Run with `cargo bench --bench ablations`; set
//! `LOWINO_BENCH_JSON=BENCH_ablations.json` to accumulate a JSON-line log.

use lowino::prelude::*;
use lowino::{Blocking, SimdTier};
use lowino_bench::layers::layer_by_name;
use lowino_bench::{build_executor, synth_input, synth_weights, BenchAlgo};
use lowino_testkit::{black_box, BenchGroup};
use std::time::Duration;

fn common(group_name: &str) -> BenchGroup {
    let mut g = BenchGroup::new(group_name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn ablation_tile_size() {
    let layer = layer_by_name("VGG16_c").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let mut group = common("ablation/tile_size");
    for m in [2usize, 4, 6] {
        let mut l =
            build_executor(BenchAlgo::LoWino(m), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(format!("lowino_m/{m}"), || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn ablation_blocking() {
    let layer = layer_by_name("ResNet-50_c").unwrap();
    let spec = layer.shape(16, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut engine = Engine::new(1);
    let mut out = engine.alloc_output(&spec);
    let blockings = [
        (
            "default-6x4",
            None, // planner default
        ),
        (
            "degenerate-1x1",
            Some(Blocking {
                n_blk: 4,
                c_blk: 64,
                k_blk: 64,
                row_blk: 1,
                col_blk: 1,
            }),
        ),
        (
            "wide-8x2",
            Some(Blocking {
                n_blk: 96,
                c_blk: 512,
                k_blk: 256,
                row_blk: 8,
                col_blk: 2,
            }),
        ),
    ];
    let mut group = common("ablation/blocking");
    for (name, blocking) in blockings {
        if let Some(b) = blocking {
            // Plan a dedicated executor so the blocking can be overridden.
            use lowino::{ConvExecutor, LoWinoConv};
            let cal = lowino::calibrate_winograd_domain(&spec, 4, std::slice::from_ref(&input)).unwrap();
            let mut conv = LoWinoConv::new(spec, 4, &weights, cal).unwrap();
            conv.set_blocking(b);
            group.bench_function(format!("blocking/{name}"), || {
                let t = conv.execute(&input, &mut out, engine.context_mut()).expect("bench rep");
                black_box(t.total());
            });
        } else {
            let mut l = build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine)
                .expect("plan");
            group.bench_function(format!("blocking/{name}"), || {
                let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
                black_box(t.total());
            });
        }
    }
}

fn ablation_simd_tier() {
    let layer = layer_by_name("GoogLeNet_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common("ablation/simd_tier");
    for tier in SimdTier::available() {
        let mut engine = Engine::with_tier(1, tier);
        let mut out = engine.alloc_output(&spec);
        let mut l =
            build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(tier, || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn ablation_scheduling() {
    let layer = layer_by_name("ResNet-50_b").unwrap();
    let spec = layer.shape(32, 1);
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let mut group = common("ablation/threads");
    for threads in [1usize, 2, 4] {
        let mut engine = Engine::new(threads);
        let mut out = engine.alloc_output(&spec);
        let mut l =
            build_executor(BenchAlgo::LoWino(4), &spec, &weights, &input, &engine).expect("plan");
        group.bench_function(format!("static/{threads}"), || {
            let t = engine.execute(&mut l, &input, &mut out).expect("bench rep");
            black_box(t.total());
        });
    }
}

fn main() {
    ablation_tile_size();
    ablation_blocking();
    ablation_simd_tier();
    ablation_scheduling();
}
