//! Sustained-load bench for the batched inference server: seeded Poisson
//! arrivals against a live `lowino-serve` instance, reporting throughput
//! and latency percentiles (p50/p99/p999) per shard count.
//!
//! The load generator is **open-loop**: every client thread draws its
//! arrival schedule up front from [`lowino_testkit::PoissonArrivals`]
//! (seeded, so the offered load is identical run to run) and measures
//! each request from its *scheduled* arrival instant, not from when the
//! client got around to sending it. A closed-loop generator would pause
//! the schedule whenever the server stalls, hiding exactly the queueing
//! delay a latency bench exists to measure (coordinated omission).
//!
//! Requests ride over in-memory duplex connections — the same code path
//! as TCP minus the kernel — so the numbers isolate the server stack:
//! HTTP parse, admission, coalescing, shard dispatch, graph execute.
//! 503s (admission rejections) and 504s (SLO deadline sheds) are
//! counted separately and excluded from the latency population.
//!
//! The **kill-loop** cells rerun the same offered load while a chaos
//! thread wedges a shard worker over and over (`shard/wedge` fault):
//! the supervisor must keep detecting, stealing, respawning and
//! replaying, and the weighted dispatcher, per-request deadlines and
//! brownout together must keep the p99 of the *served* traffic within
//! sight of the no-fault baseline (target: < 2×) — requests a rebuild
//! incident would push past the SLO are shed crisply as 504s instead of
//! dragging the tail. The ratio is reported, not CI-asserted —
//! wall-clock tails on shared runners are too noisy for a hard gate.
//!
//! Run with `cargo bench --bench serve`; `LOWINO_BENCH_JSON=<path>`
//! accumulates the JSON-line log (BENCH_PR10.json is this bench's
//! snapshot) and `LOWINO_BENCH_SMOKE=1` selects a seconds-long CI
//! configuration.

use std::io::{BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use lowino::prelude::HealthPolicy;
use lowino::Tensor4;
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec};
use lowino_serve::http::read_response;
use lowino_serve::{GraphModel, ServeConfig, Server, NO_DEADLINE};
use lowino_testkit::{faults, LoadStats, PoissonArrivals, Rng};

struct Config {
    smoke: bool,
}

impl Config {
    fn from_env() -> Self {
        Self {
            smoke: std::env::var("LOWINO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
        }
    }
}

const IN_C: usize = 3;
const HW: usize = 8;
const BATCH: usize = 4;

fn build_model(shard: usize) -> GraphModel {
    let mut model = mini_vgg(IN_C, 8, 3, 31 + shard as u64);
    let calib = Tensor4::from_fn(2, IN_C, HW, HW, |b, c, y, x| {
        ((b * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin()
    });
    let spec = GraphSpec { m: 2, batch: BATCH, threads: 1 };
    let graph =
        CompiledGraph::compile_with_health(&mut model, &calib, &spec, HealthPolicy::default())
            .expect("bench graph compiles");
    GraphModel::new(graph)
}

/// One client: pre-drawn Poisson schedule, open-loop send, latency
/// measured from the scheduled arrival. Returns `(latencies, rejected,
/// shed)` — 503 admission rejections and 504 deadline sheds are counted,
/// not measured: a shed is the server *refusing* to serve a request
/// past its SLO, and folding its (bounded) turnaround into the latency
/// population would reward shedding with a better tail than serving.
///
/// When `slo_ns` is a real deadline the client *propagates* it: each
/// request carries `X-Lowino-Deadline-Us` with the budget remaining
/// from its scheduled arrival, the way an SLO-aware caller stamps the
/// deadline where the work originated. The budget must not restart at
/// the server door: a request this connection sent late (because the
/// previous reply was slow) is already part-way through its SLO, and
/// giving it a fresh window would let one slow incident chain latency
/// through every later request on the connection — exactly the tail
/// the deadline machinery exists to cut off. A late request with no
/// budget left costs one instant 504 and the connection is caught up.
fn run_client(
    server: &Server,
    t0: Instant,
    seed: u64,
    n: usize,
    mean_gap_ns: u64,
    slo_ns: u64,
) -> (Vec<u64>, u64, u64) {
    let (il, _) = server.dims();
    let mut arrivals = PoissonArrivals::new(seed, mean_gap_ns);
    let schedule = arrivals.take_times(n);
    let mut rng = Rng::seed_from_u64(seed ^ 0x9E37);
    let mut input = vec![0.0f32; il];
    rng.fill_f32(&mut input, -1.0, 1.0);
    let body: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();

    let mut conn = BufReader::new(server.connect());
    let mut lats = Vec::with_capacity(n);
    let (mut rejected, mut shed) = (0u64, 0u64);
    for &at_ns in &schedule {
        let scheduled = t0 + Duration::from_nanos(at_ns);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let mut head = String::from("POST /infer HTTP/1.1\r\n");
        if slo_ns != NO_DEADLINE {
            let absolute = scheduled + Duration::from_nanos(slo_ns);
            let left_us = absolute
                .saturating_duration_since(Instant::now())
                .as_micros() as u64;
            head.push_str(&format!("X-Lowino-Deadline-Us: {left_us}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        conn.get_mut().write_all(head.as_bytes()).expect("send head");
        conn.get_mut().write_all(&body).expect("send body");
        let resp = read_response(&mut conn).expect("response");
        // Latency from the *scheduled* arrival: running behind schedule
        // is server-induced queueing and must show up in the tail.
        let lat = Instant::now().duration_since(scheduled).as_nanos() as u64;
        match resp.status {
            200 => lats.push(lat),
            503 => rejected += 1,
            504 => shed += 1,
            s => panic!("unexpected status {s}"),
        }
    }
    (lats, rejected, shed)
}

/// One bench cell: start a server, warm it, drive the open-loop Poisson
/// grid, and (when `kill_loop`) wedge shard workers continuously for the
/// whole timed window. `slo_ns` becomes the server's default per-request
/// deadline: under a kill, requests that would blow the SLO are shed as
/// 504s before costing shard work, which is the mechanism that keeps the
/// *served* tail bounded while a peer rebuilds. Returns the latency
/// summary for ratio reporting.
fn bench_cell(
    id: String,
    shards: usize,
    clients: usize,
    n_per_client: usize,
    mean_gap_ns: u64,
    slo_ns: u64,
    kill_loop: bool,
) -> LoadStats {
    let cfg = ServeConfig {
        shards,
        threads_per_shard: 1,
        max_batch: BATCH,
        max_delay_ns: 1_000_000,
        queue_cap: 64,
        // One batch of mailbox backlog per shard: requests linger in the
        // batcher (where deadline sheds are prompt) instead of rotting
        // in a busy worker's mailbox where only dequeue can shed them.
        shard_queue: 1,
        default_deadline_ns: slo_ns,
        // Kill-loop cells lean on fast detection + respawn; the values
        // are harmless for the no-fault baseline (nothing ever wedges).
        wedge_timeout_ns: 10_000_000,
        restart_backoff_ns: 1_000_000,
        max_restarts: 10_000,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, build_model).expect("server starts");

    // Warm every shard outside the timed window (first execute after the
    // dims handshake still touches cold caches). No SLO: warm-up cares
    // that the work happens, not when.
    let (lats, _, _) = run_client(&server, Instant::now(), 7, shards * BATCH, 1, NO_DEADLINE);
    assert!(!lats.is_empty(), "warm-up failed");

    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    // The kill-loop runs for the *nominal* load window, not until the
    // clients drain: a replayed batch can be re-wedged the moment a
    // respawned worker picks it up, so a killer paced by client
    // completion would chase the tail requests forever (livelock). A
    // wall-bounded killer stops, the last parked worker is detected and
    // stolen from, and the tail completes un-wedged.
    let kill_until = t0 + Duration::from_nanos(n_per_client as u64 * mean_gap_ns);
    let (mut all_lats, mut rejected, mut shed) = (Vec::new(), 0u64, 0u64);
    std::thread::scope(|scope| {
        let killer = kill_loop.then(|| {
            let (server, done) = (&server, &done);
            scope.spawn(move || {
                // Sustained *single-shard* kill-loop: one worker is
                // wedged, stolen from and respawned over and over. The
                // fault site is global, so the gate for re-arming is
                // the restart counter — a hit alone is too early (the
                // victim stays nominally alive until wedge detection,
                // and an eager re-arm lets the surviving shard elect
                // the wedge too, taking the whole fleet down instead of
                // one member at a time).
                let total = |s: &Server| -> u64 {
                    s.stats().per_shard.iter().map(|p| p.restarts).sum()
                };
                let mut restarts_at = total(server);
                let mut ready_since: Option<Instant> = None;
                faults::SHARD_WEDGE.arm();
                while !done.load(Ordering::Relaxed) && Instant::now() < kill_until {
                    std::thread::sleep(Duration::from_millis(2));
                    let now = total(server);
                    if now <= restarts_at {
                        continue;
                    }
                    let all_ready =
                        server.stats().per_shard.iter().all(|s| s.alive && !s.warming);
                    if !all_ready {
                        ready_since = None;
                        continue;
                    }
                    // Short cooldown once the fleet is whole again so the
                    // clients' serial connections can drain the backlog a
                    // kill leaves behind — a kill-*loop*, not a permanent
                    // half-capacity outage.
                    let since = *ready_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= Duration::from_millis(50) {
                        restarts_at = now;
                        ready_since = None;
                        faults::SHARD_WEDGE.arm();
                    }
                }
                faults::disarm_all();
            })
        });
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    run_client(server, t0, 0xBEEF + c as u64, n_per_client, mean_gap_ns, slo_ns)
                })
            })
            .collect();
        for h in handles {
            let (lats, rej, sh) = h.join().expect("client thread");
            all_lats.extend(lats);
            rejected += rej;
            shed += sh;
        }
        done.store(true, Ordering::Relaxed);
        if let Some(k) = killer {
            k.join().expect("killer thread");
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    faults::disarm_all();
    // Let in-flight respawns land so shutdown sees healthy shards.
    let settle = Instant::now() + Duration::from_secs(10);
    while server.stats().per_shard.iter().any(|s| !s.alive) && Instant::now() < settle {
        std::thread::sleep(Duration::from_millis(2));
    }
    let snap = server.shutdown();
    assert_eq!(snap.conn_panics, 0, "bench panicked a connection");
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable,
        "bench dropped requests: {snap:?}"
    );
    if kill_loop {
        let restarts: u64 = snap.per_shard.iter().map(|s| s.restarts).sum();
        assert!(restarts >= 1, "kill-loop never restarted a shard: {snap:?}");
        println!(
            "{id}: {restarts} restarts, {} replayed, {shed} SLO sheds, brownout rung {}",
            snap.replayed, snap.brownout_rung
        );
    }

    let stats = LoadStats::from_latencies(id, &mut all_lats, rejected, wall_ns);
    stats.report();
    lowino_trace::instant("serve/bench_mean_occupancy", snap.mean_occupancy as u64);
    stats
}

/// Baseline + kill-loop at one shard count, reporting the p99 ratio the
/// acceptance criterion watches (< 2x). Reported, not asserted: shared
/// CI runners make wall-clock tails too noisy for a hard gate. Both
/// cells run under the same `slo_ns` request deadline so the comparison
/// is fair: the baseline serves essentially everything inside the SLO,
/// while the kill cell leans on deadline shedding to keep the served
/// tail bounded through each detect/steal/rebuild incident.
fn bench_pair(shards: usize, clients: usize, n_per_client: usize, mean_gap_ns: u64, slo_ns: u64) {
    let base = bench_cell(
        format!("serve/poisson/s{shards}"),
        shards,
        clients,
        n_per_client,
        mean_gap_ns,
        slo_ns,
        false,
    );
    let faulted = bench_cell(
        format!("serve/killloop/s{shards}"),
        shards,
        clients,
        n_per_client,
        mean_gap_ns,
        slo_ns,
        true,
    );
    let ratio = faulted.p99_ns as f64 / base.p99_ns.max(1) as f64;
    println!("serve/killloop/s{shards}: p99 {ratio:.2}x no-fault baseline (target < 2x)");
    lowino_trace::instant("serve/bench_killloop_p99_ratio_milli", (ratio * 1_000.0) as u64);
}

fn main() {
    lowino_trace::init_from_env();
    let cfg = Config::from_env();
    if cfg.smoke {
        // Seconds-long CI cell: two shards, light load, same code path
        // (two shards so the kill-loop has a survivor to route around;
        // the window is long relative to wedge detection so the tail is
        // not all one incident; the 8 ms SLO clears the no-fault p999,
        // so the baseline serves everything while the kill cell sheds
        // the requests a detect/rebuild incident would push past it).
        bench_pair(2, 6, 20, 18_000_000, 8_000_000);
        lowino_trace::flush_to_env();
        return;
    }
    // The acceptance grid: sustained Poisson load at >=2 shard counts,
    // then the kill-loop pair at the multi-shard point (at a gap that
    // leaves a lone survivor headroom while its peer rebuilds).
    bench_cell("serve/poisson/s1".into(), 1, 3, 250, 6_000_000, NO_DEADLINE, false);
    bench_pair(2, 3, 250, 10_000_000, 12_000_000);
    lowino_trace::flush_to_env();
}
