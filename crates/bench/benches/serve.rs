//! Sustained-load bench for the batched inference server: seeded Poisson
//! arrivals against a live `lowino-serve` instance, reporting throughput
//! and latency percentiles (p50/p99/p999) per shard count.
//!
//! The load generator is **open-loop**: every client thread draws its
//! arrival schedule up front from [`lowino_testkit::PoissonArrivals`]
//! (seeded, so the offered load is identical run to run) and measures
//! each request from its *scheduled* arrival instant, not from when the
//! client got around to sending it. A closed-loop generator would pause
//! the schedule whenever the server stalls, hiding exactly the queueing
//! delay a latency bench exists to measure (coordinated omission).
//!
//! Requests ride over in-memory duplex connections — the same code path
//! as TCP minus the kernel — so the numbers isolate the server stack:
//! HTTP parse, admission, coalescing, shard dispatch, graph execute.
//! 503s (admission rejections) are counted separately and excluded from
//! the latency population.
//!
//! Run with `cargo bench --bench serve`; `LOWINO_BENCH_JSON=<path>`
//! accumulates the JSON-line log (BENCH_PR9.json is this bench's
//! snapshot) and `LOWINO_BENCH_SMOKE=1` selects a seconds-long CI
//! configuration.

use std::io::{BufReader, Write};
use std::time::{Duration, Instant};

use lowino::prelude::HealthPolicy;
use lowino::Tensor4;
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec};
use lowino_serve::http::read_response;
use lowino_serve::{GraphModel, ServeConfig, Server};
use lowino_testkit::{LoadStats, PoissonArrivals, Rng};

struct Config {
    smoke: bool,
}

impl Config {
    fn from_env() -> Self {
        Self {
            smoke: std::env::var("LOWINO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
        }
    }
}

const IN_C: usize = 3;
const HW: usize = 8;
const BATCH: usize = 4;

fn build_model(shard: usize) -> GraphModel {
    let mut model = mini_vgg(IN_C, 8, 3, 31 + shard as u64);
    let calib = Tensor4::from_fn(2, IN_C, HW, HW, |b, c, y, x| {
        ((b * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin()
    });
    let spec = GraphSpec { m: 2, batch: BATCH, threads: 1 };
    let graph =
        CompiledGraph::compile_with_health(&mut model, &calib, &spec, HealthPolicy::default())
            .expect("bench graph compiles");
    GraphModel::new(graph)
}

/// One client: pre-drawn Poisson schedule, open-loop send, latency
/// measured from the scheduled arrival. Returns `(latencies, rejected)`.
fn run_client(
    server: &Server,
    t0: Instant,
    seed: u64,
    n: usize,
    mean_gap_ns: u64,
) -> (Vec<u64>, u64) {
    let (il, _) = server.dims();
    let mut arrivals = PoissonArrivals::new(seed, mean_gap_ns);
    let schedule = arrivals.take_times(n);
    let mut rng = Rng::seed_from_u64(seed ^ 0x9E37);
    let mut input = vec![0.0f32; il];
    rng.fill_f32(&mut input, -1.0, 1.0);
    let body: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let head = format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());

    let mut conn = BufReader::new(server.connect());
    let mut lats = Vec::with_capacity(n);
    let mut rejected = 0u64;
    for &at_ns in &schedule {
        let scheduled = t0 + Duration::from_nanos(at_ns);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        conn.get_mut().write_all(head.as_bytes()).expect("send head");
        conn.get_mut().write_all(&body).expect("send body");
        let resp = read_response(&mut conn).expect("response");
        // Latency from the *scheduled* arrival: running behind schedule
        // is server-induced queueing and must show up in the tail.
        let lat = Instant::now().duration_since(scheduled).as_nanos() as u64;
        match resp.status {
            200 => lats.push(lat),
            503 => rejected += 1,
            s => panic!("unexpected status {s}"),
        }
    }
    (lats, rejected)
}

fn bench_shards(shards: usize, clients: usize, n_per_client: usize, mean_gap_ns: u64) {
    let cfg = ServeConfig {
        shards,
        threads_per_shard: 1,
        max_batch: BATCH,
        max_delay_ns: 1_000_000,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, build_model).expect("server starts");

    // Warm every shard outside the timed window (first execute after the
    // dims handshake still touches cold caches).
    let (lats, _) = run_client(&server, Instant::now(), 7, shards * BATCH, 1);
    assert!(!lats.is_empty(), "warm-up failed");

    let t0 = Instant::now();
    let (mut all_lats, mut rejected) = (Vec::new(), 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    run_client(server, t0, 0xBEEF + c as u64, n_per_client, mean_gap_ns)
                })
            })
            .collect();
        for h in handles {
            let (lats, rej) = h.join().expect("client thread");
            all_lats.extend(lats);
            rejected += rej;
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let snap = server.shutdown();
    assert_eq!(snap.conn_panics, 0, "bench panicked a connection");
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed,
        "bench dropped requests: {snap:?}"
    );

    LoadStats::from_latencies(
        format!("serve/poisson/s{shards}"),
        &mut all_lats,
        rejected,
        wall_ns,
    )
    .report();
    lowino_trace::instant("serve/bench_mean_occupancy", snap.mean_occupancy as u64);
}

fn main() {
    lowino_trace::init_from_env();
    let cfg = Config::from_env();
    if cfg.smoke {
        // Seconds-long CI cell: one shard, light load, same code path.
        bench_shards(1, 2, 15, 4_000_000);
        lowino_trace::flush_to_env();
        return;
    }
    // The acceptance grid: sustained Poisson load at >=2 shard counts.
    for &shards in &[1usize, 2] {
        bench_shards(shards, 3, 250, 6_000_000);
    }
    lowino_trace::flush_to_env();
}
