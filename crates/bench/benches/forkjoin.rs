//! Fork-join schedule bench backing the single-fork-join refactor: whole
//! layer time of the fused `LoWinoConv::execute` (one phased pool job, all
//! scratch drawn from the persistent per-worker arenas) against the
//! retained `execute_three_fork_join` reference path (one pool wake/park
//! per stage, per-call scratch allocation) on small-spatial Table 2 layers
//! at several thread counts.
//!
//! Small-spatial layers are where the schedule matters most: stage bodies
//! are short, so the fixed wake/park + allocation cost of three fork-joins
//! is a visible fraction of the layer. Batch sizes are scaled down
//! (`batch_div`) for CI-sized hosts, same convention as the `layers`
//! bench.
//!
//! Run with `cargo bench --bench forkjoin`; set
//! `LOWINO_BENCH_JSON=BENCH_PR2.json` to accumulate the JSON-line log and
//! `LOWINO_BENCH_SMOKE=1` for a seconds-long CI smoke configuration.

use lowino_bench::layers::layer_by_name;
use lowino_bench::{synth_input, synth_weights};
use lowino_conv::{calibrate_winograd_domain, ConvContext, ConvExecutor, LoWinoConv};
use lowino_tensor::BlockedImage;
use lowino_testkit::{black_box, BenchGroup};
use std::time::Duration;

struct Config {
    smoke: bool,
}

impl Config {
    fn from_env() -> Self {
        Self {
            smoke: std::env::var("LOWINO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
        }
    }
}

fn bench_layer(name: &str, batch_div: usize, hw_div: usize, m: usize, cfg: &Config) {
    let layer = layer_by_name(name).expect("Table 2 layer");
    let spec = layer.shape(batch_div, hw_div);
    let threads: &[usize] = if cfg.smoke { &[1, 2] } else { &[1, 2, 4] };
    bench_spec(name, spec, m, threads, cfg);
}

fn bench_spec(name: &str, spec: lowino_tensor::ConvShape, m: usize, threads: &[usize], cfg: &Config) {
    let weights = synth_weights(&spec, 42);
    let input = BlockedImage::from_nchw(&synth_input(&spec, 7));
    let cal = calibrate_winograd_domain(&spec, m, std::slice::from_ref(&input))
        .expect("winograd-domain calibration");
    let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());

    for &t in threads {
        let mut ctx = ConvContext::new(t);
        let mut conv = LoWinoConv::new(spec, m, &weights, cal).expect("plan LoWino layer");

        let mut group = BenchGroup::new(format!("forkjoin/{name}/t{t}"));
        if cfg.smoke {
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(60))
                .warm_up_time(Duration::from_millis(20));
        } else {
            group
                .sample_size(10)
                .measurement_time(Duration::from_secs(2))
                .warm_up_time(Duration::from_millis(300));
        }
        group.throughput_elements(spec.direct_macs());

        group.bench_function("fused", || {
            let timings = conv.execute(&input, &mut out, &mut ctx).expect("bench rep");
            black_box(timings.total());
        });
        group.bench_function("three_fork_join", || {
            let timings = conv.execute_three_fork_join(&input, &mut out, &mut ctx);
            black_box(timings.total());
        });
    }
}

fn main() {
    lowino_trace::init_from_env();
    let cfg = Config::from_env();
    if cfg.smoke {
        // One tiny layer, enough to prove both paths build and run.
        bench_layer("GoogLeNet_c", 64, 1, 4, &cfg);
        lowino_trace::flush_to_env();
        return;
    }
    // Small-spatial layers (short stage bodies → schedule-dominated), one
    // medium-spatial control. Batch scaled for 1–4 core CI hosts.
    bench_layer("ResNet-50_c", 16, 1, 4, &cfg); // 7×7, K=512
    bench_layer("GoogLeNet_c", 16, 1, 4, &cfg); // 7×7, K=384
    bench_layer("ResNet-50_b", 16, 1, 4, &cfg); // 14×14, K=256
    bench_layer("VGG16_c", 32, 1, 4, &cfg); // 16×16, K=512 (control)
    // Scheduler-skew case: 27×27 with m=4 gives a 7×7 = 49-tile grid, so
    // at t8 the static partition is maximally ragged (49 = 8·6 + 1) and
    // the bounded work-stealing pop path is what evens it out. t8 also
    // oversubscribes small CI hosts — the case doubles as a measurement of
    // how the dynamic schedule degrades when threads > cores.
    let skew = lowino_tensor::ConvShape::same(1, 64, 96, 27, 3)
        .validate()
        .expect("skewed shape");
    bench_spec("skew27", skew, 4, &[1, 8], &cfg);
    lowino_trace::flush_to_env();
}
