//! Online retuning (Autotuner 2.0, layer 3): a std-only background thread
//! that re-measures hot GEMM shapes at idle and publishes winners through
//! an atomically swapped table the drivers read on every execute.
//!
//! The pieces:
//!
//! * [`TunePolicy`] — how much tuning machinery a context runs: `Off`
//!   (pre-autotuner behaviour), `SeedOnly` (cost-model/wisdom seeding,
//!   no thread — the default), `Background` (seeding + the retuner).
//!   Selected per context or via `LOWINO_RETUNE=off|seed|background`.
//! * [`TuneShared`] — the state shared between executing drivers and the
//!   retuner: the published [`TuneTable`] behind a mutex-guarded
//!   `Arc` (publish clones the table, builds the new `Arc`, and swaps it
//!   under the lock; readers take the lock only long enough to copy a
//!   40-byte `Blocking`, so a swap is atomic from their point of view
//!   and the steady state allocates nothing), plus hot-shape counters
//!   fed by [`TuneRuntime::lookup`] under the `Background` policy.
//! * [`TuneRuntime`] — the per-context handle: policy + shared state +
//!   the optional retuner thread. Dropping the runtime (or calling
//!   [`TuneRuntime::stop_retuner`]) signals and *joins* the thread, so
//!   no thread ever outlives its context.
//!
//! The retuner wakes every [`RetuneConfig::interval`], takes the hottest
//! not-yet-retuned shape (by accumulated MAC count), measures the cost
//! model's top-K candidates on its own single-worker pool (emitting the
//! usual `tune/measurement` instants plus one `tune/retune` instant per
//! shape), publishes the winner (`tune/swap` instant, payload =
//! publication generation), and — when a wisdom path is configured —
//! persists it with [`Wisdom::merge_save`] so concurrent writers keep
//! both sets of entries.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

use crate::cost::GemmCostModel;
use crate::driver::GemmShape;
use crate::kernel::Blocking;
use crate::tune::{measure_candidates, Wisdom, TUNE_TOP_K};

/// How much autotuning machinery a context runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// No seeding, no published table, no thread: exact-wisdom hit or the
    /// static default, exactly as before Autotuner 2.0.
    Off,
    /// Zero-stall seeding from wisdom + cost model; no background thread.
    /// The default.
    #[default]
    SeedOnly,
    /// Seeding plus the background retuner thread.
    Background,
}

impl TunePolicy {
    /// Parse `LOWINO_RETUNE` (`off` / `seed` / `background`, case-
    /// insensitive); unset or unrecognised values give the default.
    pub fn from_env() -> Self {
        match std::env::var("LOWINO_RETUNE") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "off" => TunePolicy::Off,
                "background" => TunePolicy::Background,
                _ => TunePolicy::SeedOnly,
            },
            Err(_) => TunePolicy::SeedOnly,
        }
    }

    /// Stable name (env-var spelling).
    pub fn name(self) -> &'static str {
        match self {
            TunePolicy::Off => "off",
            TunePolicy::SeedOnly => "seed",
            TunePolicy::Background => "background",
        }
    }
}

type Key = (SimdTier, [usize; 4]);

fn key(tier: SimdTier, shape: &GemmShape) -> Key {
    (tier, [shape.t, shape.n, shape.c, shape.k])
}

/// The published winners: an immutable snapshot the drivers read.
#[derive(Debug, Clone, Default)]
pub struct TuneTable {
    entries: HashMap<Key, Blocking>,
}

impl TuneTable {
    /// Look up the published blocking for a `(tier, shape)`.
    pub fn get(&self, tier: SimdTier, shape: &GemmShape) -> Option<Blocking> {
        self.entries.get(&key(tier, shape)).copied()
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct HotStat {
    /// Accumulated MACs of every execute that looked this shape up.
    macs: u64,
    /// Already picked up by the retuner (one retune per shape per run).
    tuned: bool,
}

/// State shared between executing drivers and the retuner thread.
#[derive(Debug, Default)]
pub struct TuneShared {
    published: Mutex<Arc<TuneTable>>,
    hot: Mutex<HashMap<Key, HotStat>>,
    generation: AtomicU64,
}

impl TuneShared {
    /// Snapshot the published table (an `Arc` clone; the snapshot stays
    /// valid across concurrent publishes).
    pub fn snapshot(&self) -> Arc<TuneTable> {
        self.published.lock().unwrap().clone()
    }

    /// Copy out the published blocking for a `(tier, shape)`, if any.
    /// Steady-state allocation-free: the lock is held only for the map
    /// probe and the 40-byte copy.
    pub fn lookup(&self, tier: SimdTier, shape: &GemmShape) -> Option<Blocking> {
        self.published.lock().unwrap().get(tier, shape)
    }

    /// Publish a winner: clone-modify-swap of the table `Arc` under the
    /// lock. Readers either see the whole old table or the whole new one.
    /// Emits a `tune/swap` instant; returns the new generation.
    pub fn publish(&self, tier: SimdTier, shape: &GemmShape, blocking: Blocking) -> u64 {
        let mut guard = self.published.lock().unwrap();
        let mut next = TuneTable::clone(&guard);
        next.entries.insert(key(tier, shape), blocking);
        *guard = Arc::new(next);
        drop(guard);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        lowino_trace::instant("tune/swap", generation);
        generation
    }

    /// Number of publishes so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Record one execute of `shape` on `tier` for hotness ranking.
    /// Allocates only the first time a shape is seen; afterwards it is a
    /// counter bump under a lock.
    pub fn note(&self, tier: SimdTier, shape: &GemmShape) {
        let mut hot = self.hot.lock().unwrap();
        let stat = hot.entry(key(tier, shape)).or_default();
        stat.macs = stat.macs.saturating_add(shape.macs());
    }

    /// Take (and mark) up to `max` of the hottest not-yet-retuned shapes.
    fn take_hottest(&self, max: usize) -> Vec<Key> {
        let mut hot = self.hot.lock().unwrap();
        let mut pending: Vec<(u64, Key)> = hot
            .iter()
            .filter(|(_, s)| !s.tuned)
            .map(|(k, s)| (s.macs, *k))
            .collect();
        pending.sort_unstable_by(|a, b| b.cmp(a));
        pending.truncate(max);
        for (_, k) in &pending {
            hot.get_mut(k).expect("key just seen").tuned = true;
        }
        pending.into_iter().map(|(_, k)| k).collect()
    }
}

/// Configuration of the background retuner thread.
#[derive(Debug, Clone)]
pub struct RetuneConfig {
    /// Tier the measurements run on (must match the executing context's
    /// tier, or the published winners are meaningless).
    pub tier: SimdTier,
    /// Idle wait between retune cycles.
    pub interval: Duration,
    /// Best-of-`repeats` per measured candidate.
    pub repeats: usize,
    /// How many cost-model candidates to measure per shape.
    pub top_k: usize,
    /// Worker count of the retuner's own measurement pool.
    pub threads: usize,
    /// Shapes retuned per wake-up.
    pub max_shapes_per_cycle: usize,
    /// Wisdom file to `merge_save` winners into (`None`: in-memory only).
    pub wisdom_path: Option<PathBuf>,
}

impl RetuneConfig {
    /// Defaults for a tier: 100 ms idle interval, best-of-2, top-5, one
    /// single-threaded measurement per cycle, no persistence.
    pub fn new(tier: SimdTier) -> Self {
        Self {
            tier,
            interval: Duration::from_millis(100),
            repeats: 2,
            top_k: TUNE_TOP_K,
            threads: 1,
            max_shapes_per_cycle: 1,
            wisdom_path: None,
        }
    }
}

/// Stop signal: a flag under a mutex plus a condvar so the retuner's idle
/// wait wakes immediately on shutdown instead of finishing its interval.
#[derive(Debug, Default)]
struct StopFlag {
    stop: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    /// Idle-wait for `interval`; returns `true` if a stop was requested.
    fn wait_interval(&self, interval: Duration) -> bool {
        let guard = self.stop.lock().unwrap();
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, interval, |stop| !*stop)
            .unwrap();
        *guard
    }

    fn is_set(&self) -> bool {
        *self.stop.lock().unwrap()
    }

    fn set(&self) {
        *self.stop.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct Retuner {
    stop: Arc<StopFlag>,
    handle: std::thread::JoinHandle<()>,
}

/// Per-context autotuning handle: policy, shared state, optional retuner.
pub struct TuneRuntime {
    policy: TunePolicy,
    shared: Arc<TuneShared>,
    retuner: Option<Retuner>,
}

impl std::fmt::Debug for TuneRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneRuntime")
            .field("policy", &self.policy)
            .field("retuning", &self.retuner.is_some())
            .finish()
    }
}

impl Default for TuneRuntime {
    fn default() -> Self {
        Self::new(TunePolicy::default())
    }
}

impl TuneRuntime {
    /// A runtime with the given policy and no thread (spawn one with
    /// [`Self::start_retuner`] when the policy is `Background`).
    pub fn new(policy: TunePolicy) -> Self {
        Self {
            policy,
            shared: Arc::new(TuneShared::default()),
            retuner: None,
        }
    }

    /// A runtime with the `LOWINO_RETUNE` policy (no thread yet).
    pub fn from_env() -> Self {
        Self::new(TunePolicy::from_env())
    }

    /// The active policy.
    pub fn policy(&self) -> TunePolicy {
        self.policy
    }

    /// The shared published-table / hot-counter state.
    pub fn shared(&self) -> &Arc<TuneShared> {
        &self.shared
    }

    /// Is a retuner thread currently running?
    pub fn is_retuning(&self) -> bool {
        self.retuner.is_some()
    }

    /// The driver-side lookup: `None` unless a winner has been published
    /// for this `(tier, shape)`. Under `Background` the call also feeds
    /// the hot-shape counters. `Off` disables the table entirely.
    pub fn lookup(&self, tier: SimdTier, shape: &GemmShape) -> Option<Blocking> {
        match self.policy {
            TunePolicy::Off => None,
            TunePolicy::SeedOnly => self.shared.lookup(tier, shape),
            TunePolicy::Background => {
                self.shared.note(tier, shape);
                self.shared.lookup(tier, shape)
            }
        }
    }

    /// Spawn the background retuner (policy must be `Background`; at most
    /// one thread per runtime). `wisdom` seeds the thread's private copy —
    /// winners are merged back into `cfg.wisdom_path` if set. Returns
    /// whether a thread was started.
    pub fn start_retuner(&mut self, cfg: RetuneConfig, wisdom: Wisdom) -> bool {
        if self.policy != TunePolicy::Background || self.retuner.is_some() {
            return false;
        }
        let stop = Arc::new(StopFlag::default());
        let stop2 = Arc::clone(&stop);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("lowino-retune".into())
            .spawn(move || retune_loop(&shared, &stop2, &cfg, wisdom))
            .expect("spawn retune thread");
        self.retuner = Some(Retuner { stop, handle });
        true
    }

    /// Signal and **join** the retuner. Returns whether a thread was
    /// actually stopped (and is now provably gone). Idempotent.
    pub fn stop_retuner(&mut self) -> bool {
        match self.retuner.take() {
            Some(r) => {
                r.stop.set();
                r.handle.join().expect("retune thread panicked");
                true
            }
            None => false,
        }
    }
}

impl Drop for TuneRuntime {
    fn drop(&mut self) {
        self.stop_retuner();
    }
}

fn retune_loop(shared: &TuneShared, stop: &StopFlag, cfg: &RetuneConfig, mut wisdom: Wisdom) {
    let mut pool = StaticPool::new(cfg.threads.max(1));
    let model = GemmCostModel::new();
    loop {
        if stop.wait_interval(cfg.interval) {
            return;
        }
        for (tier, [t, n, c, k]) in shared.take_hottest(cfg.max_shapes_per_cycle.max(1)) {
            let shape = GemmShape { t, n, c, k };
            let candidates = model.top_k(tier, &shape, cfg.top_k.max(1));
            lowino_trace::instant("tune/retune", candidates.len() as u64);
            let (best, _log) =
                measure_candidates(tier, &shape, &candidates, &mut pool, cfg.repeats);
            wisdom.insert(tier, &shape, best);
            shared.publish(tier, &shape, best);
            if let Some(path) = &cfg.wisdom_path {
                // Persistence is best-effort: a failed save never takes
                // down the retuner (the table swap already happened).
                let _ = wisdom.merge_save(path);
            }
            if stop.is_set() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B1: Blocking = Blocking { n_blk: 96, c_blk: 64, k_blk: 64, row_blk: 6, col_blk: 4 };

    #[test]
    fn policy_from_name_spellings() {
        assert_eq!(TunePolicy::default(), TunePolicy::SeedOnly);
        for p in [TunePolicy::Off, TunePolicy::SeedOnly, TunePolicy::Background] {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn publish_swaps_snapshots_atomically() {
        let shared = TuneShared::default();
        let shape = GemmShape { t: 4, n: 64, c: 32, k: 64 };
        let before = shared.snapshot();
        assert!(before.is_empty());
        assert_eq!(shared.publish(SimdTier::Avx2, &shape, B1), 1);
        // The old snapshot is untouched; a fresh one sees the entry.
        assert!(before.is_empty());
        assert_eq!(shared.lookup(SimdTier::Avx2, &shape), Some(B1));
        assert_eq!(shared.lookup(SimdTier::Scalar, &shape), None, "tier-keyed");
        assert_eq!(shared.generation(), 1);
    }

    #[test]
    fn hotness_ranks_by_macs_and_marks_tuned() {
        let shared = TuneShared::default();
        let small = GemmShape { t: 2, n: 8, c: 4, k: 64 };
        let big = GemmShape { t: 16, n: 512, c: 256, k: 256 };
        shared.note(SimdTier::Avx2, &small);
        shared.note(SimdTier::Avx2, &big);
        shared.note(SimdTier::Avx2, &small);
        let hottest = shared.take_hottest(1);
        assert_eq!(hottest, vec![key(SimdTier::Avx2, &big)]);
        // `big` is marked; the next take returns the remaining shape.
        assert_eq!(shared.take_hottest(4), vec![key(SimdTier::Avx2, &small)]);
        assert!(shared.take_hottest(4).is_empty());
    }

    #[test]
    fn seed_only_runtime_reads_table_but_never_notes() {
        let rt = TuneRuntime::new(TunePolicy::SeedOnly);
        let shape = GemmShape { t: 4, n: 64, c: 32, k: 64 };
        assert_eq!(rt.lookup(SimdTier::Avx2, &shape), None);
        rt.shared().publish(SimdTier::Avx2, &shape, B1);
        assert_eq!(rt.lookup(SimdTier::Avx2, &shape), Some(B1));
        assert!(rt.shared().take_hottest(8).is_empty(), "seed-only never notes");
        // `Off` ignores even a published table.
        let off = TuneRuntime::new(TunePolicy::Off);
        off.shared().publish(SimdTier::Avx2, &shape, B1);
        assert_eq!(off.lookup(SimdTier::Avx2, &shape), None);
    }

    #[test]
    fn start_requires_background_policy() {
        let mut rt = TuneRuntime::new(TunePolicy::SeedOnly);
        assert!(!rt.start_retuner(RetuneConfig::new(SimdTier::Scalar), Wisdom::new()));
        assert!(!rt.is_retuning());
        assert!(!rt.stop_retuner());
    }
}
