//! Analytic cost model for the blocked INT8 GEMM (Autotuner 2.0, layer 1).
//!
//! [`GemmCostModel::cost`] is a *pure* function over `(GemmShape, SimdTier,
//! Blocking)` — no measurement, no clock, no randomness — that estimates
//! the relative execution cost of one [`crate::batched_gemm_u8i8`] call.
//! It is used two ways:
//!
//! * **Seeding** ([`GemmCostModel::seed`]): the argmin over the candidate
//!   lattice gives a blocking for shapes with no wisdom, so a first request
//!   never stalls on a measurement sweep.
//! * **Pruning** ([`GemmCostModel::top_k`]): the measured tuner only times
//!   the model's top-K candidates (K ≈ 5) instead of the full ~40-entry
//!   lattice, cutting tuning cost by ~8× while keeping the winner (guarded
//!   by a release-mode test against full-lattice measurement).
//!
//! The estimate sums four terms, mirroring the driver/kernel structure
//! (`driver.rs` loop nest, `kernel.rs` instruction mix):
//!
//! 1. **Kernel issue slots** — per 4-channel group a `h × w`-register tile
//!    costs `h` broadcasts, `w` filter loads and `h·w` `dpbusd`s; ragged
//!    edges are walked exactly (a short tile pays full per-tile overhead
//!    for fewer MACs), which is what penalises register tiles that divide
//!    the shape badly. Narrower tiers multiply the slot count by their
//!    serialisation factor.
//! 2. **L1 residency** — the set that must stay L1-resident while a tile
//!    streams filters (`row_blk` V rows + the i32 accumulator tile + one
//!    4-channel filter group); exceeding it scales the issue term. The
//!    packed `C_blk × K_blk` filter block gets its own check: successive
//!    row tiles re-read it, so when it fits L1 those re-reads are hits
//!    and when it spills every tile pays L2-latency filter loads
//!    (doubled load slots) — this is what makes small `K_blk` win on
//!    deep-channel shapes despite the extra V traffic.
//! 3. **Memory traffic** — bytes moved per operand under the §4.3.1
//!    blocked reuse pattern: V is re-read once per K chunk, U once per N
//!    block, Z spilled/refilled once per extra C chunk. Exceeding the L2
//!    working set (packed U block + V block + Z block) scales this term.
//! 4. **Task overhead** — the fork-join grid is `T × ⌈N/N_blk⌉` tasks;
//!    each task costs scheduling/steal bookkeeping, penalising tiny
//!    `n_blk` on small shapes.
//!
//! The absolute unit is arbitrary ("one issue slot"); only the ordering
//! matters, and the ordering is what the top-K guard test checks.

use lowino_simd::SimdTier;
use lowino_tensor::round_up;

use crate::driver::{normalize_blocking, GemmShape};
use crate::kernel::Blocking;

/// Candidate register tiles, best-throughput-first on VNNI hardware.
pub(crate) const REGISTER_TILES: &[(usize, usize)] =
    &[(6, 4), (4, 4), (2, 4), (8, 2), (6, 2), (4, 2), (8, 1)];

/// Candidate `N_blk` values.
pub(crate) const N_BLKS: &[usize] = &[48, 96, 192];

/// Cache geometry the footprint terms are scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheModel {
    /// Per-core L1D capacity in bytes.
    pub l1_bytes: usize,
    /// Per-core L2 capacity in bytes.
    pub l2_bytes: usize,
}

impl Default for CacheModel {
    /// Cascade-Lake-like geometry (paper §5.1's evaluation platform):
    /// 32 KiB L1D, 1 MiB L2 per core.
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
        }
    }
}

/// Relative cost of moving one byte between cache levels / DRAM, in issue
/// slots (≈ 4 streamed bytes per cycle per core at ~1 slot per cycle).
const BYTE_COST: f64 = 0.25;

/// Fixed issue-slot cost per register tile (seed load, pointer bumps,
/// loop control around the fully-unrolled body).
const TILE_OVERHEAD: f64 = 8.0;

/// Scheduling cost per fork-join task (queue pop / steal bookkeeping,
/// amortised barrier share).
const TASK_OVERHEAD: f64 = 400.0;

/// The analytic model. Construction is free; keep one per call site.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GemmCostModel {
    /// Cache geometry used by the footprint terms.
    pub cache: CacheModel,
}

impl GemmCostModel {
    /// Model with the default [`CacheModel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialisation factor of `tier` relative to one 512-bit VNNI op.
    fn lane_factor(tier: SimdTier) -> f64 {
        match tier {
            SimdTier::Avx512Vnni => 1.0,
            SimdTier::Avx2 => 2.0,
            SimdTier::Scalar => 16.0,
        }
    }

    /// Bytes that must stay L1-resident while one register tile streams
    /// its filter panel: `row_blk` V rows of one C chunk, the i32
    /// accumulator tile, and one 4-channel filter group.
    pub fn l1_footprint(&self, shape: &GemmShape, b: &Blocking) -> usize {
        let b = normalize_blocking(b, shape);
        b.row_blk * b.c_blk + b.row_blk * b.col_blk * 64 + b.col_blk * 64
    }

    /// Bytes of the blocked working set that §4.3.1 keeps L2-resident:
    /// the packed `C_blk × K_blk` filter block, the `N_blk × C_blk` V
    /// block and the `N_blk × K_blk` i32 partial-sum block.
    pub fn l2_footprint(&self, shape: &GemmShape, b: &Blocking) -> usize {
        let b = normalize_blocking(b, shape);
        b.c_blk * b.k_blk + b.n_blk * b.c_blk + b.n_blk * b.k_blk * 4
    }

    /// Does the blocking's working set fit the modelled cache geometry?
    pub fn fits_caches(&self, shape: &GemmShape, b: &Blocking) -> bool {
        self.l1_footprint(shape, b) <= self.cache.l1_bytes
            && self.l2_footprint(shape, b) <= self.cache.l2_bytes
    }

    /// Estimated relative cost of one `batched_gemm_u8i8` call. Pure and
    /// deterministic: equal inputs give bit-equal outputs.
    pub fn cost(&self, tier: SimdTier, shape: &GemmShape, blocking: &Blocking) -> f64 {
        let b = normalize_blocking(blocking, shape);
        let cp = round_up(shape.c, 4);
        let kp = round_up(shape.k, 64);
        let n = shape.n.max(1);
        let t = shape.t.max(1) as f64;

        let c_chunks = cp.div_ceil(b.c_blk) as f64;
        let k_chunks = kp.div_ceil(b.k_blk);
        let n_blocks = n.div_ceil(b.n_blk);
        let c4 = (cp / 4) as f64;
        // `k_blk` is a multiple of 64 and `col_blk ∈ {1,2,4}` divides
        // 64/16, so column tiles are never ragged; only rows are.
        let col_tiles = (kp / (b.col_blk * 16)) as f64;
        let w = b.col_blk as f64;

        // Filter-load cost per vector: successive row tiles re-read the
        // same packed `C_blk × K_blk` filter block, so when that block
        // fits L1 the re-reads are L1 hits; when it spills, every tile
        // streams its filters from L2 at roughly double the issue cost.
        let u_block = (b.c_blk * b.k_blk) as f64 / self.cache.l1_bytes as f64;
        let w_load = if u_block > 1.0 { 2.0 * w } else { w };

        // Row-tile decomposition: `full_blocks` blocks of `n_blk` rows
        // plus one ragged block, each split into `row_blk`-high tiles
        // plus one short tile.
        let mut issue = 0.0;
        let mut row_blocks = [(b.n_blk, (n / b.n_blk) as f64), (n % b.n_blk, 1.0)];
        if row_blocks[1].0 == 0 {
            row_blocks[1].1 = 0.0;
        }
        for (nb, block_count) in row_blocks {
            if block_count == 0.0 {
                continue;
            }
            let mut tiles = [(b.row_blk, (nb / b.row_blk) as f64), (nb % b.row_blk, 1.0)];
            if tiles[1].0 == 0 {
                tiles[1].1 = 0.0;
            }
            for (h_usize, tile_count) in tiles {
                if tile_count == 0.0 {
                    continue;
                }
                let h = h_usize as f64;
                // Per 4-channel group: h broadcasts + w loads + h·w dpbusd;
                // per C chunk: the 2·h·w seed/store pass + fixed overhead.
                let per_tile =
                    c4 * (h + w_load + h * w) + c_chunks * (2.0 * h * w + TILE_OVERHEAD);
                issue += block_count * tile_count * col_tiles * per_tile;
            }
        }
        let l1 = self.l1_footprint(shape, &b) as f64 / self.cache.l1_bytes as f64;
        let mut compute = Self::lane_factor(tier) * t * issue;
        if l1 > 1.0 {
            compute *= l1;
        }

        // Blocked-reuse traffic per tile position (bytes).
        let v_bytes = (n * cp * k_chunks) as f64;
        let u_bytes = (cp * kp * n_blocks) as f64;
        let z_bytes = (n * kp * 4) as f64 * (2.0 * c_chunks - 1.0);
        let l2 = self.l2_footprint(shape, &b) as f64 / self.cache.l2_bytes as f64;
        let mut traffic = BYTE_COST * t * (v_bytes + u_bytes + z_bytes);
        if l2 > 1.0 {
            traffic *= l2;
        }

        let tasks = t * n_blocks as f64;
        compute + traffic + TASK_OVERHEAD * tasks
    }

    /// The model's top-`k` candidates from [`candidate_lattice`], cheapest
    /// first. Candidates whose working set exceeds the cache model are
    /// dropped (the lattice always contains fitting ones under the default
    /// geometry — its smallest block is `64×64`); if the configured caches
    /// are so small that nothing fits, the least-footprint candidate is
    /// returned alone rather than nothing.
    pub fn top_k(&self, tier: SimdTier, shape: &GemmShape, k: usize) -> Vec<Blocking> {
        let lattice = candidate_lattice(shape);
        let mut fitting: Vec<Blocking> = lattice
            .iter()
            .copied()
            .filter(|b| self.fits_caches(shape, b))
            .collect();
        if fitting.is_empty() {
            let min = lattice
                .into_iter()
                .min_by_key(|b| self.l2_footprint(shape, b) + self.l1_footprint(shape, b));
            return min.into_iter().collect();
        }
        // Rank by cost; tie-break on the blocking itself so the order is
        // deterministic even for exactly-equal costs.
        fitting.sort_by(|a, b| {
            self.cost(tier, shape, a)
                .partial_cmp(&self.cost(tier, shape, b))
                .unwrap_or(core::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        fitting.truncate(k.max(1));
        fitting
    }

    /// The model's argmin — the zero-measurement seed blocking. Streams
    /// the lattice without materialising it, so seeding on an execute
    /// path stays allocation-free (the zero-steady-state-alloc invariant
    /// covers cost-model fallbacks); picks exactly what
    /// `top_k(tier, shape, 1)[0]` would.
    pub fn seed(&self, tier: SimdTier, shape: &GemmShape) -> Blocking {
        let mut best: Option<(f64, Blocking)> = None;
        let mut fallback: Option<(usize, Blocking)> = None;
        for_each_candidate(shape, |b| {
            if self.fits_caches(shape, &b) {
                let c = self.cost(tier, shape, &b);
                let better = match &best {
                    None => true,
                    Some((bc, bb)) => c < *bc || (c == *bc && b < *bb),
                };
                if better {
                    best = Some((c, b));
                }
            } else if best.is_none() {
                let fp = self.l1_footprint(shape, &b) + self.l2_footprint(shape, &b);
                let better = match &fallback {
                    None => true,
                    Some((ff, fb)) => fp < *ff || (fp == *ff && b < *fb),
                };
                if better {
                    fallback = Some((fp, b));
                }
            }
        });
        best.map(|(_, b)| b)
            .or(fallback.map(|(_, b)| b))
            .expect("lattice is never empty")
    }
}

/// Visit every valid normalized candidate for `shape` (with duplicates —
/// normalization collapses raw tuples on small shapes) without allocating.
fn for_each_candidate(shape: &GemmShape, mut f: impl FnMut(Blocking)) {
    let cp = round_up(shape.c, 4);
    let kp = round_up(shape.k, 64);
    for &(row_blk, col_blk) in REGISTER_TILES {
        for &n_blk in N_BLKS {
            for c_blk in [cp.min(64), cp.min(256), cp] {
                for k_blk in [kp.min(64), kp.min(256), kp] {
                    let b = normalize_blocking(
                        &Blocking {
                            n_blk,
                            c_blk,
                            k_blk,
                            row_blk,
                            col_blk,
                        },
                        shape,
                    );
                    if b.validate().is_ok() {
                        f(b);
                    }
                }
            }
        }
    }
}

/// The full candidate lattice for a shape: every valid normalized
/// combination of `REGISTER_TILES × N_BLKS × {C,K} cache blocks`,
/// sorted and deduplicated (normalization collapses many raw tuples on
/// small shapes — the old `Vec::contains` dedup was quadratic in the
/// lattice size).
pub fn candidate_lattice(shape: &GemmShape) -> Vec<Blocking> {
    let mut candidates: Vec<Blocking> = Vec::new();
    for_each_candidate(shape, |b| candidates.push(b));
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_testkit::{prop_assert, property};

    fn shape_from(t: usize, n: usize, c: usize, k: usize) -> GemmShape {
        GemmShape { t, n, c, k }
    }

    #[test]
    fn lattice_matches_quadratic_reference_dedup() {
        // The satellite bugfix: sort+dedup must produce exactly the set the
        // old O(n²) `Vec::contains` loop produced.
        for shape in [
            shape_from(16, 196, 256, 256),
            shape_from(36, 64, 512, 512),
            shape_from(4, 7, 3, 5),
            shape_from(1, 1, 1, 1),
        ] {
            let cp = round_up(shape.c, 4);
            let kp = round_up(shape.k, 64);
            let mut reference: Vec<Blocking> = Vec::new();
            for &(row_blk, col_blk) in REGISTER_TILES {
                for &n_blk in N_BLKS {
                    for c_blk in [cp.min(64), cp.min(256), cp] {
                        for k_blk in [kp.min(64), kp.min(256), kp] {
                            let b = normalize_blocking(
                                &Blocking { n_blk, c_blk, k_blk, row_blk, col_blk },
                                &shape,
                            );
                            if b.validate().is_ok() && !reference.contains(&b) {
                                reference.push(b);
                            }
                        }
                    }
                }
            }
            reference.sort_unstable();
            assert_eq!(candidate_lattice(&shape), reference, "shape {shape:?}");
        }
    }

    property! {
        #[cases(60)]
        fn cost_is_deterministic(
            t in 1usize..64,
            n in 1usize..2048,
            c in 1usize..1024,
            k in 1usize..1024
        ) {
            let shape = shape_from(t, n, c, k);
            let model = GemmCostModel::new();
            for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512Vnni] {
                for b in candidate_lattice(&shape) {
                    let x = model.cost(tier, &shape, &b);
                    let y = model.cost(tier, &shape, &b);
                    prop_assert!(x.is_finite() && x > 0.0, "cost {x} not positive-finite");
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "cost not bit-deterministic: {x} vs {y}"
                    );
                }
                let a = model.top_k(tier, &shape, 5);
                let b2 = model.top_k(tier, &shape, 5);
                prop_assert!(a == b2, "top_k not deterministic");
            }
        }
    }

    property! {
        #[cases(80)]
        fn emitted_candidates_fit_the_cache_model(
            t in 1usize..64,
            n in 1usize..4096,
            c in 1usize..2048,
            k in 1usize..2048
        ) {
            let shape = shape_from(t, n, c, k);
            let model = GemmCostModel::new();
            let top = model.top_k(SimdTier::Avx512Vnni, &shape, 5);
            prop_assert!(!top.is_empty(), "top_k returned nothing");
            for b in &top {
                prop_assert!(b.validate().is_ok(), "invalid candidate {b:?}");
                let l1 = model.l1_footprint(&shape, b);
                let l2 = model.l2_footprint(&shape, b);
                prop_assert!(
                    l1 <= model.cache.l1_bytes,
                    "L1 footprint {l1} exceeds {} for {b:?}", model.cache.l1_bytes
                );
                prop_assert!(
                    l2 <= model.cache.l2_bytes,
                    "L2 footprint {l2} exceeds {} for {b:?}", model.cache.l2_bytes
                );
            }
        }
    }

    #[test]
    fn seed_is_valid_on_degenerate_shapes() {
        let model = GemmCostModel::new();
        for shape in [
            shape_from(1, 1, 1, 1),
            shape_from(1, 5, 3, 7),
            shape_from(36, 1, 2048, 64),
            shape_from(16, 4096, 3, 1024),
        ] {
            for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512Vnni] {
                let b = model.seed(tier, &shape);
                assert!(b.validate().is_ok(), "{shape:?} {tier:?}: {b:?}");
                assert_eq!(b, normalize_blocking(&b, &shape), "seed not normalized");
            }
        }
    }

    #[test]
    fn streaming_seed_matches_top_one() {
        let model = GemmCostModel::new();
        let tiny = GemmCostModel {
            cache: CacheModel { l1_bytes: 64, l2_bytes: 256 },
        };
        for shape in [
            shape_from(16, 196, 256, 256),
            shape_from(36, 64, 512, 512),
            shape_from(4, 7, 3, 5),
            shape_from(16, 4096, 2048, 1024),
        ] {
            for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512Vnni] {
                assert_eq!(model.seed(tier, &shape), model.top_k(tier, &shape, 1)[0]);
                assert_eq!(tiny.seed(tier, &shape), tiny.top_k(tier, &shape, 1)[0]);
            }
        }
    }

    #[test]
    fn tiny_cache_model_still_emits_a_candidate() {
        let model = GemmCostModel {
            cache: CacheModel { l1_bytes: 64, l2_bytes: 256 },
        };
        let shape = shape_from(16, 196, 256, 256);
        let top = model.top_k(SimdTier::Avx512Vnni, &shape, 5);
        assert_eq!(top.len(), 1, "fallback returns the least-footprint candidate");
        assert!(top[0].validate().is_ok());
    }

    #[test]
    fn cost_prefers_cache_fitting_blockings_on_big_shapes() {
        // A blocking whose L2 set overflows must cost more than the same
        // shape's seeded choice.
        let model = GemmCostModel::new();
        let shape = shape_from(16, 2048, 1024, 1024);
        let huge = Blocking {
            n_blk: 2048,
            c_blk: 1024,
            k_blk: 256,
            row_blk: 6,
            col_blk: 4,
        };
        let seed = model.seed(SimdTier::Avx512Vnni, &shape);
        assert!(
            model.cost(SimdTier::Avx512Vnni, &shape, &huge)
                > model.cost(SimdTier::Avx512Vnni, &shape, &seed)
        );
    }
}
