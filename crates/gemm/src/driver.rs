//! The blocked batched-GEMM driver (paper §4.3.1, Fig. 5).
//!
//! Loop structure per tile position `t` (the batch dimension):
//!
//! ```text
//! for n0 in N  step N_blk:          cache block over tiles
//!   for k0 in K_p step K_blk:       cache block over output channels
//!     for c0 in C_p step C_blk:     cache block over input channels
//!       for n1 in block step row_blk:
//!         for k1 in block step col_blk·16:
//!           microkernel (Fig. 7)
//! ```
//!
//! The first `C` chunk seeds the accumulators with the compensation row
//! `Z̄[t]` (Eq. 9); subsequent chunks accumulate into `Z` — the in-cache
//! partial-sum buffer of §4.3.1.
//!
//! The `(k0, c0)` cache-block walk is *software-pipelined*: each executing
//! worker owns a [`PanelScratch`] of two packing slots, and while the
//! micro-kernel consumes the packed copy of cache block `i` from one slot,
//! the driver prefetches and then packs block `i+1` of the `UPanel` into
//! the other. Packing is a straight per-4-channel-group copy into a
//! contiguous buffer — the kernel reads exactly the bytes it would have
//! read in place, in the same order, so `Z` is bitwise identical to the
//! unpipelined walk (including the `Z̄` seed and partial-sum behaviour).
//!
//! Parallelisation follows §4.4: the `T × ⌈N/N_blk⌉` task grid is statically
//! pre-partitioned across the pool's threads (with bounded intra-phase
//! stealing re-balancing the tail — see `lowino_parallel::StealQueues`);
//! tasks touch disjoint `(t, n-range)` regions of `Z`, so the threads never
//! write the same cache line.

use lowino_parallel::StaticPool;
use lowino_simd::store::prefetch_panel_rows;
use lowino_simd::SimdTier;
use lowino_tensor::{round_up, AlignedBuf};

use core::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

use crate::kernel::{microkernel, Blocking, Seed, MAX_COL_BLK, MAX_ROW_BLK};
use crate::panels::{UPanel, VPanel, ZPanel};

/// Logical dimensions of a batched Winograd GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GemmShape {
    /// Batch size `T = (m+r−1)²` (tile positions).
    pub t: usize,
    /// Rows of `V` — total input tiles `N`.
    pub n: usize,
    /// Inner dimension — input channels `C`.
    pub c: usize,
    /// Columns of `U` — output channels `K`.
    pub k: usize,
}

impl GemmShape {
    /// Multiply-accumulate count (over padded operands).
    pub fn macs(&self) -> u64 {
        self.t as u64 * self.n as u64 * round_up(self.c, 4) as u64 * round_up(self.k, 64) as u64
    }
}

/// Clamp a requested blocking to a concrete shape, preserving validity.
pub fn normalize_blocking(b: &Blocking, shape: &GemmShape) -> Blocking {
    let cp = round_up(shape.c, 4);
    let kp = round_up(shape.k, 64);
    let mut out = *b;
    out.n_blk = out.n_blk.clamp(1, shape.n.max(1));
    out.c_blk = round_up(out.c_blk.clamp(4, cp), 4);
    out.k_blk = round_up(out.k_blk.clamp(64, kp), 64);
    out.row_blk = out.row_blk.clamp(1, MAX_ROW_BLK);
    // The register tile can never be wider than the dispatch table allows or
    // than one K cache block provides (k_blk/16 ZMM columns); round down to
    // a power of two to stay in the kernel's {1, 2, 4} column set.
    let col_cap = MAX_COL_BLK.min((out.k_blk / 16).max(1));
    out.col_blk = out.col_blk.clamp(1, col_cap);
    out.col_blk = 1 << out.col_blk.ilog2();
    out
}

/// Per-worker double-buffered packing scratch for the pipelined driver.
///
/// Two 64-byte-aligned byte slots: while the micro-kernel consumes the
/// packed copy of `U` cache block `i` from slot `i % 2`, the driver packs
/// block `i+1` into the other slot. The slots grow on first use (to the
/// next power of two, so mixed layer shapes settle quickly) and are reused
/// across tasks, layers and executes — on the executor path they live in
/// the conv crate's per-worker scratch arena, so the steady state performs
/// zero heap allocations (asserted by its counting-allocator test).
#[derive(Default)]
pub struct PanelScratch {
    slots: [AlignedBuf<i8>; 2],
}

impl PanelScratch {
    /// An empty scratch; the slots grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow both slots to hold at least `bytes` each.
    fn ensure(&mut self, bytes: usize) {
        if self.slots[0].len() < bytes {
            let new_len = bytes.next_power_of_two();
            self.slots = [AlignedBuf::zeroed(new_len), AlignedBuf::zeroed(new_len)];
        }
    }

    /// Read pointer to slot `i % 2` (the block being consumed).
    #[inline]
    fn slot_ptr(&self, i: usize) -> *const i8 {
        self.slots[i % 2].as_ptr()
    }

    /// Mutable view of slot `i % 2` (the block being packed).
    #[inline]
    fn slot_mut(&mut self, i: usize) -> &mut [i8] {
        self.slots[i % 2].as_mut_slice()
    }
}

/// A planned batched u8×i8 GEMM whose task ranges can be executed from any
/// thread — the job-body form used by the executors' single-fork-join path:
/// the GEMM runs as one *phase* of a `StaticPool::run_phases` job instead of
/// issuing its own fork-join.
///
/// Tasks enumerate the `T × ⌈N/N_blk⌉` grid; each task owns a disjoint
/// `(t, n-range)` region of `Z`, so any partition of `0..total()` is safe to
/// run concurrently.
pub struct GemmTasks<'a> {
    tier: SimdTier,
    shape: GemmShape,
    b: Blocking,
    cp: usize,
    kp: usize,
    n_chunks: usize,
    v: &'a VPanel,
    u: &'a UPanel,
    z: &'a ZPanel,
}

impl<'a> GemmTasks<'a> {
    /// Validate panels against `shape`, normalize the blocking, and build
    /// the task grid. Takes `z` mutably — exclusivity is held by the plan
    /// for its whole lifetime even though writes go through shared-scatter
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if panel dimensions disagree with `shape` or the blocking is
    /// invalid.
    pub fn plan(
        tier: SimdTier,
        shape: &GemmShape,
        blocking: &Blocking,
        v: &'a VPanel,
        u: &'a UPanel,
        z: &'a mut ZPanel,
    ) -> Self {
        let (vt, vn, vc, vcp) = v.dims();
        let (ut, uc, ucp, uk, ukp) = u.dims();
        let (zt, zn, zk, _) = z.dims();
        assert_eq!((vt, vn, vc), (shape.t, shape.n, shape.c), "V panel shape");
        assert_eq!((ut, uc, uk), (shape.t, shape.c, shape.k), "U panel shape");
        assert_eq!((zt, zn, zk), (shape.t, shape.n, shape.k), "Z panel shape");
        assert_eq!(vcp, ucp, "V/U channel padding");
        let b = normalize_blocking(blocking, shape);
        b.validate().expect("invalid blocking");
        let n_chunks = shape.n.div_ceil(b.n_blk).max(1);
        Self {
            tier,
            shape: *shape,
            b,
            cp: vcp,
            kp: ukp,
            n_chunks,
            v,
            u,
            z,
        }
    }

    /// Number of independent tasks (`T × ⌈N/N_blk⌉`).
    pub fn total(&self) -> usize {
        self.shape.t * self.n_chunks
    }

    /// The normalized blocking the plan will execute with.
    pub fn blocking(&self) -> &Blocking {
        &self.b
    }

    /// Read access to the output panel (for the phase *after* the GEMM —
    /// the borrow on `z` stays alive through the plan).
    pub fn z(&self) -> &ZPanel {
        self.z
    }

    /// The packed size (bytes) of the largest `(K_blk, C_blk)` cache block
    /// a task will route through one [`PanelScratch`] slot.
    fn max_block_bytes(&self) -> usize {
        // c4 groups × 4 bytes × k width = c_blk·k_blk clamped to the panel.
        self.b.c_blk.min(self.cp) * self.b.k_blk.min(self.kp)
    }

    /// Execute a contiguous task range through the worker's packing
    /// scratch (grown here on first use, then allocation-free). Ends with
    /// a store fence so the non-temporal scatter stores are globally
    /// visible before the caller crosses the next phase barrier.
    pub fn run_range(&self, range: Range<usize>, pack: &mut PanelScratch) {
        // One gate check per range, not per task: when tracing is off this
        // is a single relaxed load; when on, the panel-byte, dpbusd
        // MAC-equivalent and pack-time totals are accumulated locally and
        // emitted once (zeros included, so traced runs always carry the
        // full counter set).
        let tracing = lowino_trace::enabled();
        let mut panel_bytes = 0u64;
        let mut macs = 0u64;
        let mut pack_ns = 0u64;
        pack.ensure(self.max_block_bytes());
        for task in range {
            let t = task / self.n_chunks;
            let n0 = (task % self.n_chunks) * self.b.n_blk;
            let n_end = (n0 + self.b.n_blk).min(self.shape.n);
            if tracing {
                let rows = (n_end - n0) as u64;
                let (cp, kp) = (self.cp as u64, self.kp as u64);
                // Per task: V rows read (u8), the U panel streamed once
                // (i8), and Z partial sums written (i32).
                panel_bytes += rows * cp + cp * kp + rows * kp * 4;
                macs += rows * cp * kp;
            }
            gemm_block(
                self.tier,
                &self.b,
                &self.shape,
                self.cp,
                self.kp,
                t,
                n0,
                n_end,
                self.v,
                self.u,
                self.z,
                pack,
                tracing,
                &mut pack_ns,
            );
        }
        if tracing {
            lowino_trace::counter("gemm/panel_bytes", panel_bytes);
            lowino_trace::counter("gemm/dpbusd_macs", macs);
            lowino_trace::counter("gemm/pack_ns", pack_ns);
            // Whether the chunk this range came from was claimed by a
            // thief rather than its seeded owner (0 for static schedules).
            // An instant, not a counter: counters drop zero deltas, and CI
            // greps need the marker present even on steal-free runs.
            lowino_trace::instant(
                "gemm/steal",
                u64::from(lowino_parallel::chunk_was_stolen()),
            );
        }
        lowino_simd::store::stream_fence();
    }
}

/// Batched low-precision GEMM: `Z[t] = V̄[t] × U[t] + Z̄[t]` for all `t`.
///
/// `V̄` is the +128-compensated u8 panel, `U` the interleaved i8 panel with
/// its compensation rows, and the result is the exact signed product
/// `V×U` (Eq. 9), scattered in the output-transform-friendly `Z` layout.
///
/// Standalone-fork-join wrapper over [`GemmTasks`].
///
/// # Panics
///
/// Panics if panel dimensions disagree with `shape` or the blocking is
/// invalid.
pub fn batched_gemm_u8i8(
    tier: SimdTier,
    shape: &GemmShape,
    blocking: &Blocking,
    v: &VPanel,
    u: &UPanel,
    z: &mut ZPanel,
    pool: &mut StaticPool,
) {
    let tasks = GemmTasks::plan(tier, shape, blocking, v, u, z);
    // One packing scratch per pool worker (index-addressed, Mutex only to
    // make the shared capture safe — each slot is driven by one thread per
    // fork-join, so the lock is never contended). Letting the standalone
    // wrapper pipeline too means the tuner's blocking search ranks exactly
    // the configurations the executors will run.
    let scratch: Vec<Mutex<PanelScratch>> =
        (0..pool.threads().max(1)).map(|_| Mutex::new(PanelScratch::new())).collect();
    pool.run(tasks.total(), |worker, range| {
        let mut pack = match scratch[worker].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        tasks.run_range(range, &mut pack);
    });
}

/// One (t, N-chunk) task — everything below here is single-threaded.
///
/// The cache-block walk is software-pipelined through the two
/// [`PanelScratch`] slots: block `i`'s packed `U` copy is consumed from
/// slot `i % 2` while block `i+1`'s source stream is prefetch-hinted up
/// front and packed into the other slot once the compute for `i` retires.
/// The packed copy holds byte-for-byte what the in-place walk would have
/// read (same values, same loop and store order), so `Z` — including the
/// `Z̄` compensation seed of the first `C` chunk and the partial-sum
/// accumulate walk of the later ones — is bitwise identical.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    tier: SimdTier,
    b: &Blocking,
    shape: &GemmShape,
    cp: usize,
    kp: usize,
    t: usize,
    n0: usize,
    n_end: usize,
    v: &VPanel,
    u: &UPanel,
    z: &ZPanel,
    pack: &mut PanelScratch,
    tracing: bool,
    pack_ns: &mut u64,
) {
    let _ = shape;
    let zbar = u.zbar(t);
    let z_stride = z.n_stride();
    // The (k0, c0) cache blocks in walk order: k outer, c inner.
    let c_chunks = cp.div_ceil(b.c_blk);
    let blocks = kp.div_ceil(b.k_blk) * c_chunks;
    let bounds = |i: usize| {
        let k0 = (i / c_chunks) * b.k_blk;
        let c0 = (i % c_chunks) * b.c_blk;
        (k0, (k0 + b.k_blk).min(kp), c0, (c0 + b.c_blk).min(cp))
    };
    // Pipeline prologue: block 0 has no compute to hide behind.
    pack_block(u, t, bounds(0), pack.slot_mut(0), tracing, pack_ns);
    for i in 0..blocks {
        let (k0, k_end, c0, c_end) = bounds(i);
        let c4_count = (c_end - c0) / 4;
        let first_chunk = c0 == 0;
        // The packed block is contiguous: c4 groups (k_end-k0)·4 bytes
        // apart, exactly the stride the micro-kernel parameterises over.
        let packed_stride = (k_end - k0) * 4;
        let packed = pack.slot_ptr(i);
        if i + 1 < blocks {
            // Prime the next block's U source stream (one line per
            // 4-channel group) so the pack after this block's compute
            // copies out of cache instead of stalling on DRAM.
            let (nk0, _, nc0, nc_end) = bounds(i + 1);
            // SAFETY: offsets in bounds (see the microkernel SAFETY note).
            let src = unsafe { u.block_ptr(t, nk0).add((nc0 / 4) * u.c4_stride()) };
            prefetch_panel_rows(tier, src as *const u8, u.c4_stride(), (nc_end - nc0) / 4);
        }
        // And this block's V rows at the current channel offset (the
        // kernel itself only reaches one register-row block ahead).
        // SAFETY: (t, n0) is a valid row and c0 < cp.
        prefetch_panel_rows(tier, unsafe { v.row_ptr(t, n0).add(c0) }, v.cp(), n_end - n0);
        let mut n1 = n0;
        while n1 < n_end {
            let rb = (n_end - n1).min(b.row_blk);
            let mut k1 = k0;
            while k1 < k_end {
                let cb = ((k_end - k1) / 16).min(b.col_blk);
                debug_assert!(cb > 0);
                let seed = if first_chunk {
                    Seed::Zbar(unsafe { zbar.as_ptr().add(k1) })
                } else {
                    Seed::Accumulate
                };
                // SAFETY: all offsets are within the panels by the loop
                // bounds; the packed slot holds the full cache block
                // (`ensure` sized it); `store_ptr_shared` regions are
                // disjoint per task (distinct (t, n) ranges).
                unsafe {
                    let v_ptr = v.row_ptr(t, n1).add(c0);
                    let u_ptr = packed.add((k1 - k0) * 4);
                    let z_ptr = z.store_ptr_shared(t, n1, k1);
                    microkernel(
                        tier,
                        rb,
                        cb,
                        v_ptr,
                        v.cp(),
                        u_ptr,
                        packed_stride,
                        c4_count,
                        seed,
                        z_ptr,
                        z_stride,
                    );
                }
                k1 += cb * 16;
            }
            n1 += rb;
        }
        if i + 1 < blocks {
            // Produce block i+1 into the other slot while its consumer
            // (the next loop iteration) is still a branch away — the copy
            // overlaps with the retiring non-temporal stores above.
            pack_block(u, t, bounds(i + 1), pack.slot_mut(i + 1), tracing, pack_ns);
        }
    }
}

/// Pack one `(k0..k_end, c0..c_end)` cache block of `U[t]` contiguously
/// into `dst`: group `c4`'s interleaved K run — `(k_end-k0)·4` bytes,
/// contiguous in the source because K is the fastest dimension within a
/// group — lands at offset `c4·(k_end-k0)·4`. One straight copy per group.
fn pack_block(
    u: &UPanel,
    t: usize,
    (k0, k_end, c0, c_end): (usize, usize, usize, usize),
    dst: &mut [i8],
    tracing: bool,
    pack_ns: &mut u64,
) {
    let t0 = if tracing { Some(Instant::now()) } else { None };
    let kw4 = (k_end - k0) * 4;
    let c4_count = (c_end - c0) / 4;
    debug_assert!(dst.len() >= c4_count * kw4);
    for c4 in 0..c4_count {
        // SAFETY: the source run `(c0/4 + c4)·kp·4 + k0·4 .. + kw4` lies
        // inside tile `t`'s interleave (c_end ≤ cp, k_end ≤ kp); `dst` is
        // sized by `PanelScratch::ensure`.
        unsafe {
            core::ptr::copy_nonoverlapping(
                u.block_ptr(t, k0).add((c0 / 4 + c4) * u.c4_stride()),
                dst.as_mut_ptr().add(c4 * kw4),
                kw4,
            );
        }
    }
    if let Some(t0) = t0 {
        *pack_ns += t0.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm;

    fn fill_panels(shape: &GemmShape, seed: u64) -> (VPanel, UPanel) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut v = VPanel::new(shape.t, shape.n, shape.c);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for c in 0..shape.c {
                    v.set(t, n, c, (next() & 0xFF) as u8);
                }
            }
        }
        let mut u = UPanel::new(shape.t, shape.c, shape.k);
        for t in 0..shape.t {
            for c in 0..shape.c {
                for k in 0..shape.k {
                    u.set(t, c, k, (next() & 0xFF) as u8 as i8);
                }
            }
        }
        u.finalize_compensation();
        (v, u)
    }

    fn check(shape: GemmShape, blocking: Blocking, threads: usize, tier: SimdTier) {
        let (v, u) = fill_panels(&shape, 0xC0FFEE ^ (shape.n as u64) << 8 ^ shape.k as u64);
        let mut z = ZPanel::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(threads);
        batched_gemm_u8i8(tier, &shape, &blocking, &v, &u, &mut z, &mut pool);
        let want = reference_gemm(&v, &u, &shape);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    assert_eq!(
                        z.get(t, n, k),
                        want[(t * shape.n + n) * shape.k + k],
                        "t={t} n={n} k={k} (shape={shape:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn normalize_clamps_oversized_col_blk() {
        // Regression: col_blk used to survive normalization unclamped, so an
        // oversized request reached `validate()` and panicked.
        let shape = GemmShape { t: 1, n: 16, c: 32, k: 128 };
        let mut b = Blocking::default_for(&shape);
        b.col_blk = 8;
        let norm = normalize_blocking(&b, &shape);
        assert_eq!(norm.col_blk, MAX_COL_BLK);
        norm.validate().expect("normalized blocking must be valid");
        // Non-power-of-two requests round down into the kernel's {1,2,4}.
        b.col_blk = 3;
        assert_eq!(normalize_blocking(&b, &shape).col_blk, 2);
        b.col_blk = 0;
        assert_eq!(normalize_blocking(&b, &shape).col_blk, 1);
        // And the clamped blocking actually runs.
        let mut big = Blocking::default_for(&shape);
        big.col_blk = 16;
        big.row_blk = 4;
        check(shape, big, 2, SimdTier::detect());
    }

    #[test]
    fn gemm_tasks_split_ranges_match_whole_run() {
        // Running the planned tasks in arbitrary chunks must equal the
        // one-shot driver (tasks own disjoint Z regions).
        let shape = GemmShape { t: 3, n: 17, c: 24, k: 64 };
        let blocking = Blocking {
            n_blk: 4,
            c_blk: 16,
            k_blk: 64,
            row_blk: 3,
            col_blk: 2,
        };
        let (v, u) = fill_panels(&shape, 0xBEEF);
        let tier = SimdTier::detect();
        let mut z_whole = ZPanel::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(1);
        batched_gemm_u8i8(tier, &shape, &blocking, &v, &u, &mut z_whole, &mut pool);
        let mut z_split = ZPanel::new(shape.t, shape.n, shape.k);
        let tasks = GemmTasks::plan(tier, &shape, &blocking, &v, &u, &mut z_split);
        let total = tasks.total();
        assert_eq!(total, shape.t * shape.n.div_ceil(blocking.n_blk));
        let mut pack = PanelScratch::new();
        let mut at = 0;
        for step in [1usize, 3, 2, 5] {
            let end = (at + step).min(total);
            tasks.run_range(at..end, &mut pack);
            at = end;
        }
        tasks.run_range(at..total, &mut pack);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    assert_eq!(tasks.z().get(t, n, k), z_whole.get(t, n, k), "t={t} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn matches_reference_various_shapes() {
        let tier = SimdTier::detect();
        for shape in [
            GemmShape { t: 1, n: 1, c: 4, k: 16 },
            GemmShape { t: 1, n: 13, c: 20, k: 64 },
            GemmShape { t: 4, n: 29, c: 64, k: 128 },
            GemmShape { t: 16, n: 10, c: 37, k: 70 },
        ] {
            check(shape, Blocking::default_for(&shape), 1, tier);
        }
    }

    #[test]
    fn matches_reference_with_cache_chunking() {
        // Force multiple C and K chunks to exercise the accumulate path.
        let shape = GemmShape { t: 2, n: 40, c: 136, k: 192 };
        let blocking = Blocking {
            n_blk: 16,
            c_blk: 64,
            k_blk: 64,
            row_blk: 6,
            col_blk: 4,
        };
        check(shape, blocking, 1, SimdTier::detect());
    }

    #[test]
    fn matches_reference_multi_threaded() {
        let shape = GemmShape { t: 4, n: 53, c: 32, k: 64 };
        let blocking = Blocking {
            n_blk: 8,
            c_blk: 32,
            k_blk: 64,
            row_blk: 4,
            col_blk: 2,
        };
        check(shape, blocking, 4, SimdTier::detect());
    }

    #[test]
    fn all_tiers_agree() {
        let shape = GemmShape { t: 2, n: 9, c: 24, k: 64 };
        for tier in SimdTier::available() {
            check(shape, Blocking::default_for(&shape), 1, tier);
        }
    }

    #[test]
    fn odd_register_tiles() {
        let shape = GemmShape { t: 1, n: 23, c: 16, k: 128 };
        for (row_blk, col_blk) in [(1, 1), (3, 2), (8, 2), (5, 4), (8, 1)] {
            let blocking = Blocking {
                n_blk: 7,
                c_blk: 16,
                k_blk: 64,
                row_blk,
                col_blk,
            };
            check(shape, blocking, 2, SimdTier::detect());
        }
    }

    #[test]
    #[should_panic(expected = "V panel shape")]
    fn shape_mismatch_panics() {
        let shape = GemmShape { t: 1, n: 4, c: 8, k: 16 };
        let v = VPanel::new(1, 5, 8); // wrong N
        let mut u = UPanel::new(1, 8, 16);
        u.finalize_compensation();
        let mut z = ZPanel::new(1, 4, 16);
        let mut pool = StaticPool::new(1);
        batched_gemm_u8i8(
            SimdTier::detect(),
            &shape,
            &Blocking::default_for(&shape),
            &v,
            &u,
            &mut z,
            &mut pool,
        );
    }

    #[test]
    fn compensation_equivalence_property() {
        // The headline algebra of Eq. 9: running the kernel on V+128 with
        // Z̄ = −128·colsum(U) equals the plain signed product V×U.
        let shape = GemmShape { t: 1, n: 6, c: 12, k: 64 };
        let mut s = 77u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Signed logical inputs in i8 range.
        let v_signed: Vec<i32> = (0..shape.n * shape.c)
            .map(|_| (next() % 255) as i32 - 127)
            .collect();
        let u_signed: Vec<i32> = (0..shape.c * shape.k)
            .map(|_| (next() % 255) as i32 - 127)
            .collect();
        let mut v = VPanel::new(shape.t, shape.n, shape.c);
        let mut u = UPanel::new(shape.t, shape.c, shape.k);
        for n in 0..shape.n {
            for c in 0..shape.c {
                v.set(0, n, c, (v_signed[n * shape.c + c] + 128) as u8);
            }
        }
        for c in 0..shape.c {
            for k in 0..shape.k {
                u.set(0, c, k, u_signed[c * shape.k + k] as i8);
            }
        }
        u.finalize_compensation();
        let mut z = ZPanel::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(1);
        batched_gemm_u8i8(
            SimdTier::detect(),
            &shape,
            &Blocking::default_for(&shape),
            &v,
            &u,
            &mut z,
            &mut pool,
        );
        for n in 0..shape.n {
            for k in 0..shape.k {
                let want: i32 = (0..shape.c)
                    .map(|c| v_signed[n * shape.c + c] * u_signed[c * shape.k + k])
                    .sum();
                assert_eq!(z.get(0, n, k), want, "n={n} k={k}");
            }
        }
    }
}
