//! The register-blocked micro-kernel of paper Fig. 6/7.
//!
//! One invocation computes a `row_blk × (col_blk·16)` tile of `Z[t]`:
//!
//! ```text
//! for c4 in 0..C_blk/4:                 (fully unrolled in the paper's JIT)
//!     for r in 0..row_blk:
//!         v_reg = broadcast 4 bytes of V[n0+r][4·c4..]
//!         prefetch next V rows
//!         for c in 0..col_blk:
//!             u_reg[c] = 64 bytes of U[c4][k0+16c..]
//!             acc[r][c] = vpdpbusd(acc[r][c], v_reg, u_reg[c])
//! scatter acc to Z with non-temporal stores
//! ```
//!
//! Accumulators are seeded with the compensation row `Z̄` (Eq. 9), with the
//! partial result already in `Z` when iterating over `C` cache blocks, or
//! with zeros. The Rust monomorphisation over `(ROW, COL)` plays the role of
//! the paper's JIT specialisation: each variant compiles to a fixed-shape,
//! fully-unrolled loop body.

use lowino_simd::SimdTier;

/// How the accumulators start (paper §4.3.1: the `C/C_blk` partial sums).
#[derive(Debug, Clone, Copy)]
pub enum Seed {
    /// First C-chunk: start from the compensation row (16·`col_blk` i32 at
    /// the given pointer, broadcast across rows).
    Zbar(*const i32),
    /// Later C-chunks: read the partial result back from `Z`.
    Accumulate,
    /// Plain zero (kernels without compensation).
    Zero,
}

/// Cache- and register-blocking parameters (paper §4.3.4's tuning space).
///
/// The `Ord`/`Hash` derives give candidate sets a canonical order so the
/// tuner can sort+dedup its lattice and wisdom files serialise stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Blocking {
    /// Rows of `V` per cache block (`N_blk`).
    pub n_blk: usize,
    /// Input channels per cache block (`C_blk`, multiple of 4).
    pub c_blk: usize,
    /// Output channels per cache block (`K_blk`, multiple of 64).
    pub k_blk: usize,
    /// Register-tile rows (`row_blk`).
    pub row_blk: usize,
    /// Register-tile columns in ZMM units (`col_blk` ∈ {1, 2, 4}).
    pub col_blk: usize,
}

/// Largest `row_blk` the dispatch table instantiates.
pub const MAX_ROW_BLK: usize = 8;

/// Largest `col_blk` the dispatch table instantiates (`col_blk` ∈ {1, 2, 4}).
pub const MAX_COL_BLK: usize = 4;

impl Blocking {
    /// The paper's register-budget constraint:
    /// `row_blk·col_blk + col_blk < 31` (one register reserved for the
    /// broadcast), plus this implementation's dispatch-table limits.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.col_blk, 1 | 2 | 4) {
            return Err(format!("col_blk must be 1, 2 or 4, got {}", self.col_blk));
        }
        if self.row_blk == 0 || self.row_blk > MAX_ROW_BLK {
            return Err(format!("row_blk must be in 1..={MAX_ROW_BLK}, got {}", self.row_blk));
        }
        if self.row_blk * self.col_blk + self.col_blk >= 31 {
            return Err(format!(
                "register budget exceeded: {}*{} + {} >= 31",
                self.row_blk, self.col_blk, self.col_blk
            ));
        }
        if self.c_blk == 0 || !self.c_blk.is_multiple_of(4) {
            return Err(format!("c_blk must be a positive multiple of 4, got {}", self.c_blk));
        }
        if self.k_blk == 0 || !self.k_blk.is_multiple_of(64) {
            return Err(format!("k_blk must be a positive multiple of 64, got {}", self.k_blk));
        }
        if self.n_blk == 0 {
            return Err("n_blk must be positive".into());
        }
        // §4.3.4: sub-matrices must fit in cache.
        if self.c_blk * self.k_blk > 512 * 512 {
            return Err(format!(
                "c_blk*k_blk = {} exceeds the 512² cache budget",
                self.c_blk * self.k_blk
            ));
        }
        Ok(())
    }

    /// A reasonable default for a GEMM shape (used when no wisdom exists):
    /// `6×4` register tile, cache blocks clamped to the problem.
    pub fn default_for(shape: &crate::GemmShape) -> Self {
        let cp = lowino_tensor::round_up(shape.c, 4);
        let kp = lowino_tensor::round_up(shape.k, 64);
        Blocking {
            n_blk: shape.n.clamp(1, 192),
            c_blk: cp.min(512),
            k_blk: kp.min(256),
            row_blk: 6,
            col_blk: 4,
        }
    }
}

/// Tier-dispatched micro-kernel. All pointers must satisfy the layout
/// contracts of [`crate::panels`]; `rb ∈ 1..=MAX_ROW_BLK`, `cb ∈ {1,2,4}`,
/// `rb·cb + cb < 31`.
///
/// # Safety
///
/// * `v` points to `rb` rows of at least `4·c4_count` bytes, `v_stride`
///   apart;
/// * `u` points to an interleaved filter block of `c4_count` groups,
///   `u_c4_stride` bytes apart, each at least `cb·64` bytes;
/// * `z` points to `rb` rows of at least `cb·16` i32, `z_row_stride`
///   elements apart (and is readable when `seed` is `Accumulate`);
/// * a `Seed::Zbar` pointer holds at least `cb·16` i32.
#[allow(clippy::too_many_arguments)]
pub unsafe fn microkernel(
    tier: SimdTier,
    rb: usize,
    cb: usize,
    v: *const u8,
    v_stride: usize,
    u: *const i8,
    u_c4_stride: usize,
    c4_count: usize,
    seed: Seed,
    z: *mut i32,
    z_row_stride: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx512Vnni {
        dispatch_avx512(rb, cb, v, v_stride, u, u_c4_stride, c4_count, seed, z, z_row_stride);
        return;
    }
    microkernel_fallback(tier, rb, cb, v, v_stride, u, u_c4_stride, c4_count, seed, z, z_row_stride);
}

// ---------------------------------------------------------------- AVX-512

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn dispatch_avx512(
    rb: usize,
    cb: usize,
    v: *const u8,
    v_stride: usize,
    u: *const i8,
    u_c4_stride: usize,
    c4_count: usize,
    seed: Seed,
    z: *mut i32,
    z_row_stride: usize,
) {
    macro_rules! arm {
        ($r:literal, $c:literal) => {
            mk_avx512::<$r, $c>(v, v_stride, u, u_c4_stride, c4_count, seed, z, z_row_stride)
        };
    }
    match (rb, cb) {
        (1, 1) => arm!(1, 1),
        (2, 1) => arm!(2, 1),
        (3, 1) => arm!(3, 1),
        (4, 1) => arm!(4, 1),
        (5, 1) => arm!(5, 1),
        (6, 1) => arm!(6, 1),
        (7, 1) => arm!(7, 1),
        (8, 1) => arm!(8, 1),
        (1, 2) => arm!(1, 2),
        (2, 2) => arm!(2, 2),
        (3, 2) => arm!(3, 2),
        (4, 2) => arm!(4, 2),
        (5, 2) => arm!(5, 2),
        (6, 2) => arm!(6, 2),
        (7, 2) => arm!(7, 2),
        (8, 2) => arm!(8, 2),
        (1, 4) => arm!(1, 4),
        (2, 4) => arm!(2, 4),
        (3, 4) => arm!(3, 4),
        (4, 4) => arm!(4, 4),
        (5, 4) => arm!(5, 4),
        (6, 4) => arm!(6, 4),
        _ => unreachable!("invalid register tile {rb}x{cb}"),
    }
}

/// The Fig. 7 kernel, monomorphised over the register tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512<const RB: usize, const CB: usize>(
    v: *const u8,
    v_stride: usize,
    u: *const i8,
    u_c4_stride: usize,
    c4_count: usize,
    seed: Seed,
    z: *mut i32,
    z_row_stride: usize,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_si512(); CB]; RB];
    match seed {
        Seed::Zbar(p) => {
            for c in 0..CB {
                let row = _mm512_loadu_si512(p.add(c * 16) as *const _);
                for r in 0..RB {
                    acc[r][c] = row;
                }
            }
        }
        Seed::Accumulate => {
            for r in 0..RB {
                for c in 0..CB {
                    acc[r][c] =
                        _mm512_loadu_si512(z.add(r * z_row_stride + c * 16) as *const _);
                }
            }
        }
        Seed::Zero => {}
    }

    for c4 in 0..c4_count {
        let u_base = u.add(c4 * u_c4_stride);
        // Prefetch the head of the next 4-channel group's filter row —
        // with the pipelined driver's packed blocks that is the next
        // contiguous cache lines of the scratch slot. A hint only: past
        // the last group it touches nothing that faults.
        _mm_prefetch::<_MM_HINT_T0>(u_base.wrapping_add(u_c4_stride));
        for r in 0..RB {
            let vp = v.add(r * v_stride + c4 * 4);
            // Broadcast one packed 32-bit word (4 input-channel bytes).
            let v_reg = _mm512_set1_epi32((vp as *const i32).read_unaligned());
            // Prefetch the same c4 position of the next register-row block
            // (paper Fig. 7 line 6).
            _mm_prefetch::<_MM_HINT_T0>(vp.add(RB * v_stride) as *const i8);
            for c in 0..CB {
                let u_reg = _mm512_loadu_si512(u_base.add(c * 64) as *const _);
                acc[r][c] = _mm512_dpbusd_epi32(acc[r][c], v_reg, u_reg);
            }
        }
    }

    for r in 0..RB {
        for c in 0..CB {
            let dst = z.add(r * z_row_stride + c * 16);
            if (dst as usize).is_multiple_of(64) {
                // Non-temporal scatter (paper §4.3.2) — Z is consumed by a
                // later stage, not re-read here.
                _mm512_stream_si512(dst as *mut _, acc[r][c]);
            } else {
                _mm512_storeu_si512(dst as *mut _, acc[r][c]);
            }
        }
    }
}

// --------------------------------------------------------------- fallback

/// Portable kernel used on the AVX2/scalar tiers (and as the semantic
/// reference for the AVX-512 path — the tiers are tested bit-identical).
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_fallback(
    tier: SimdTier,
    rb: usize,
    cb: usize,
    v: *const u8,
    v_stride: usize,
    u: *const i8,
    u_c4_stride: usize,
    c4_count: usize,
    seed: Seed,
    z: *mut i32,
    z_row_stride: usize,
) {
    debug_assert!(rb <= MAX_ROW_BLK && cb <= 4);
    let mut acc = [[[0i32; 16]; 4]; MAX_ROW_BLK];
    match seed {
        Seed::Zbar(p) => {
            for c in 0..cb {
                let row = core::slice::from_raw_parts(p.add(c * 16), 16);
                for r in 0..rb {
                    acc[r][c].copy_from_slice(row);
                }
            }
        }
        Seed::Accumulate => {
            for r in 0..rb {
                for c in 0..cb {
                    let row = core::slice::from_raw_parts(z.add(r * z_row_stride + c * 16), 16);
                    acc[r][c].copy_from_slice(row);
                }
            }
        }
        Seed::Zero => {}
    }

    let mut v_bcast = [0u8; 64];
    for c4 in 0..c4_count {
        let u_base = u.add(c4 * u_c4_stride);
        for r in 0..rb {
            let vp = v.add(r * v_stride + c4 * 4);
            let word: [u8; 4] = [*vp, *vp.add(1), *vp.add(2), *vp.add(3)];
            for lane in 0..16 {
                v_bcast[lane * 4..lane * 4 + 4].copy_from_slice(&word);
            }
            for c in 0..cb {
                let u_reg: &[i8; 64] = &*(u_base.add(c * 64) as *const [i8; 64]);
                lowino_simd::dpbusd(tier, &mut acc[r][c], &v_bcast, u_reg);
            }
        }
    }

    for r in 0..rb {
        for c in 0..cb {
            let dst = core::slice::from_raw_parts_mut(z.add(r * z_row_stride + c * 16), 16);
            dst.copy_from_slice(&acc[r][c]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_validation() {
        let ok = Blocking {
            n_blk: 96,
            c_blk: 128,
            k_blk: 128,
            row_blk: 6,
            col_blk: 4,
        };
        assert!(ok.validate().is_ok());

        let mut b = ok;
        b.row_blk = 7; // 7*4+4 = 32 >= 31
        assert!(b.validate().is_err());
        let mut b = ok;
        b.col_blk = 3;
        assert!(b.validate().is_err());
        let mut b = ok;
        b.c_blk = 6;
        assert!(b.validate().is_err());
        let mut b = ok;
        b.k_blk = 100;
        assert!(b.validate().is_err());
        let mut b = ok;
        b.c_blk = 2048;
        b.k_blk = 512;
        assert!(b.validate().is_err()); // 2048*512 > 512²
        let mut b = ok;
        b.row_blk = 8;
        b.col_blk = 2; // 8*2+2 = 18 < 31
        assert!(b.validate().is_ok());
    }

    /// Scalar model of what one micro-kernel call must compute.
    #[allow(clippy::too_many_arguments)]
    fn model(
        rb: usize,
        cb: usize,
        v: &[u8],
        v_stride: usize,
        u_get: impl Fn(usize, usize) -> i8, // (c, k16lane) in this block
        c4_count: usize,
        zbar: Option<&[i32]>,
        z0: &[i32],
        z_stride: usize,
    ) -> Vec<i32> {
        let mut out = vec![0i32; rb * cb * 16];
        for r in 0..rb {
            for c in 0..cb {
                for lane in 0..16 {
                    let k = c * 16 + lane;
                    let mut acc = match zbar {
                        Some(zb) => zb[k],
                        None => z0[r * z_stride + k],
                    };
                    for cc in 0..c4_count * 4 {
                        acc += i32::from(v[r * v_stride + cc]) * i32::from(u_get(cc, k));
                    }
                    out[(r * cb + c) * 16 + lane] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn microkernel_matches_model_all_tiers_and_tiles() {
        use lowino_tensor::AlignedBuf;
        let c4_count = 5; // C = 20
        let kp = 64;
        // Build operands.
        let mut s = 0xABCDEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for tier in SimdTier::available() {
            for (rb, cb) in [(1, 1), (2, 2), (3, 4), (6, 4), (8, 2), (5, 1), (4, 4)] {
                let v_stride = c4_count * 4;
                let mut v = AlignedBuf::<u8>::zeroed(rb * v_stride);
                for x in v.as_mut_slice() {
                    *x = (next() & 0xFF) as u8;
                }
                // Interleaved U: [c4][k][4].
                let mut u = AlignedBuf::<i8>::zeroed(c4_count * kp * 4);
                for x in u.as_mut_slice() {
                    *x = (next() & 0xFF) as u8 as i8;
                }
                let u_get = |c: usize, k: usize| -> i8 {
                    u.as_slice()[(c / 4) * kp * 4 + k * 4 + (c % 4)]
                };
                let mut zbar = AlignedBuf::<i32>::zeroed(cb * 16);
                for x in zbar.as_mut_slice() {
                    *x = (next() & 0xFFFF) as i32 - 32768;
                }
                let z_stride = cb * 16;
                let mut z = AlignedBuf::<i32>::zeroed(rb * z_stride);

                // SAFETY: buffers sized to the contract above.
                unsafe {
                    microkernel(
                        tier,
                        rb,
                        cb,
                        v.as_ptr(),
                        v_stride,
                        u.as_ptr(),
                        kp * 4,
                        c4_count,
                        Seed::Zbar(zbar.as_ptr()),
                        z.as_mut_ptr(),
                        z_stride,
                    );
                }
                lowino_simd::store::stream_fence();
                let want = model(
                    rb,
                    cb,
                    v.as_slice(),
                    v_stride,
                    u_get,
                    c4_count,
                    Some(zbar.as_slice()),
                    &[],
                    z_stride,
                );
                for r in 0..rb {
                    for c in 0..cb {
                        for lane in 0..16 {
                            assert_eq!(
                                z.as_slice()[r * z_stride + c * 16 + lane],
                                want[(r * cb + c) * 16 + lane],
                                "tier={tier} rb={rb} cb={cb} r={r} c={c} lane={lane}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn microkernel_accumulate_seed() {
        use lowino_tensor::AlignedBuf;
        let c4_count = 2;
        let kp = 64;
        let (rb, cb) = (2usize, 2usize);
        let v_stride = c4_count * 4;
        let mut v = AlignedBuf::<u8>::zeroed(rb * v_stride);
        v.fill(1);
        let mut u = AlignedBuf::<i8>::zeroed(c4_count * kp * 4);
        u.fill(1);
        let z_stride = cb * 16;
        let mut z = AlignedBuf::<i32>::zeroed(rb * z_stride);
        z.fill(100);
        // SAFETY: buffers sized to the contract.
        unsafe {
            microkernel(
                SimdTier::detect(),
                rb,
                cb,
                v.as_ptr(),
                v_stride,
                u.as_ptr(),
                kp * 4,
                c4_count,
                Seed::Accumulate,
                z.as_mut_ptr(),
                z_stride,
            );
        }
        lowino_simd::store::stream_fence();
        // 100 + 8·(1·1) = 108 everywhere.
        assert!(z.as_slice().iter().all(|&x| x == 108), "{:?}", &z.as_slice()[..8]);
    }

    #[test]
    fn microkernel_zero_seed() {
        use lowino_tensor::AlignedBuf;
        let (rb, cb, c4) = (1usize, 1usize, 1usize);
        let v = AlignedBuf::<u8>::from_slice(&[2, 0, 0, 0]);
        let mut u = AlignedBuf::<i8>::zeroed(64 * 4);
        u.as_mut_slice()[0] = 3; // c=0, k=0
        let mut z = AlignedBuf::<i32>::zeroed(16);
        z.fill(7); // must be overwritten, not accumulated
        // SAFETY: buffers sized to the contract.
        unsafe {
            microkernel(
                SimdTier::detect(),
                rb,
                cb,
                v.as_ptr(),
                4,
                u.as_ptr(),
                64 * 4,
                c4,
                Seed::Zero,
                z.as_mut_ptr(),
                16,
            );
        }
        lowino_simd::store::stream_fence();
        assert_eq!(z.as_slice()[0], 6);
        assert_eq!(z.as_slice()[1], 0);
    }
}
