//! INT16 batched GEMM for the up-casting baseline (paper §2.3, ncnn-style).
//!
//! The up-casting approach widens the transformed operands to INT16 to avoid
//! transform overflow, which forces the multiply stage onto `vpdpwssd` —
//! 32 multiplies per 512-bit instruction instead of `vpdpbusd`'s 64. That
//! architectural 2× is reproduced here structurally: each accumulation step
//! covers 2 channels instead of 4.

use core::ops::Range;

use lowino_parallel::StaticPool;
use lowino_simd::{dpwssd, SimdTier};

use crate::driver::GemmShape;
use crate::panels::{UPanelI16, VPanelI16, ZPanel};

/// A planned batched INT16 GEMM executable range-by-range from any thread —
/// the phase-body form for the up-casting executor's single fork-join.
///
/// Tasks enumerate the `T × N` grid; each task owns row `(t, n)` of `Z`.
pub struct GemmTasksI16<'a> {
    tier: SimdTier,
    shape: GemmShape,
    kp: usize,
    c2: usize,
    v: &'a VPanelI16,
    u: &'a UPanelI16,
    z: &'a ZPanel,
}

impl<'a> GemmTasksI16<'a> {
    /// Validate panels against `shape` and build the task grid.
    ///
    /// # Panics
    ///
    /// Panics on panel/shape mismatch.
    pub fn plan(
        tier: SimdTier,
        shape: &GemmShape,
        v: &'a VPanelI16,
        u: &'a UPanelI16,
        z: &'a mut ZPanel,
    ) -> Self {
        let (vt, vn, vc, vcp) = v.dims();
        let (ut, uc, ucp, uk, ukp) = u.dims();
        let (zt, zn, zk, _) = z.dims();
        assert_eq!((vt, vn, vc), (shape.t, shape.n, shape.c), "V panel shape");
        assert_eq!((ut, uc, uk), (shape.t, shape.c, shape.k), "U panel shape");
        assert_eq!((zt, zn, zk), (shape.t, shape.n, shape.k), "Z panel shape");
        assert_eq!(vcp, ucp, "V/U channel padding");
        Self {
            tier,
            shape: *shape,
            kp: ukp,
            c2: vcp / 2,
            v,
            u,
            z,
        }
    }

    /// Number of independent tasks (`T × N`).
    pub fn total(&self) -> usize {
        self.shape.t * self.shape.n
    }

    /// Read access to the output panel.
    pub fn z(&self) -> &ZPanel {
        self.z
    }

    /// Execute a contiguous task range.
    pub fn run_range(&self, range: Range<usize>) {
        for task in range {
            let t = task / self.shape.n;
            let n = task % self.shape.n;
            let vrow = self.v.row(t, n);
            for k16 in 0..self.kp / 16 {
                let k = k16 * 16;
                let mut acc = [0i32; 16];
                for g in 0..self.c2 {
                    let pair = [vrow[2 * g], vrow[2 * g + 1]];
                    let mut a = [0i16; 32];
                    for lane in 0..16 {
                        a[2 * lane] = pair[0];
                        a[2 * lane + 1] = pair[1];
                    }
                    let b: &[i16; 32] =
                        self.u.pair_group(t, g, k).try_into().expect("pair group");
                    dpwssd(self.tier, &mut acc, &a, b);
                }
                // SAFETY: each (t, n) is owned by exactly one task; k is
                // 16-aligned and within the padded K range.
                unsafe {
                    let dst = self.z.store_ptr_shared(t, n, k);
                    core::ptr::copy_nonoverlapping(acc.as_ptr(), dst, 16);
                }
            }
        }
    }
}

/// Batched INT16 GEMM: `Z[t] = V[t] × U[t]` (signed, no compensation
/// needed), scattered into the common `Z` layout.
///
/// Standalone-fork-join wrapper over [`GemmTasksI16`].
///
/// # Panics
///
/// Panics on panel/shape mismatch.
pub fn batched_gemm_i16(
    tier: SimdTier,
    shape: &GemmShape,
    v: &VPanelI16,
    u: &UPanelI16,
    z: &mut ZPanel,
    pool: &mut StaticPool,
) {
    let tasks = GemmTasksI16::plan(tier, shape, v, u, z);
    pool.run(tasks.total(), |_, range| tasks.run_range(range));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm_i16;

    #[test]
    fn matches_reference() {
        let shape = GemmShape { t: 3, n: 7, c: 13, k: 40 };
        let mut v = VPanelI16::new(shape.t, shape.n, shape.c);
        let mut u = UPanelI16::new(shape.t, shape.c, shape.k);
        let mut s = 13u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for t in 0..shape.t {
            for n in 0..shape.n {
                for c in 0..shape.c {
                    v.row_mut(t, n)[c] = ((next() % 25401) as i32 - 12700) as i16;
                }
            }
            for c in 0..shape.c {
                for k in 0..shape.k {
                    u.set(t, c, k, ((next() % 255) as i32 - 127) as i16);
                }
            }
        }
        let mut z = ZPanel::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(2);
        batched_gemm_i16(SimdTier::detect(), &shape, &v, &u, &mut z, &mut pool);
        let want = reference_gemm_i16(&v, &u, &shape);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    assert_eq!(
                        z.get(t, n, k),
                        want[(t * shape.n + n) * shape.k + k],
                        "t={t} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_tiers_agree() {
        let shape = GemmShape { t: 1, n: 3, c: 6, k: 16 };
        let mut v = VPanelI16::new(1, 3, 6);
        let mut u = UPanelI16::new(1, 6, 16);
        for n in 0..3 {
            for c in 0..6 {
                v.row_mut(0, n)[c] = (n as i16 + 1) * (c as i16 - 3) * 100;
            }
        }
        for c in 0..6 {
            for k in 0..16 {
                u.set(0, c, k, (k as i16 - 8) * (c as i16 + 1));
            }
        }
        let mut results = Vec::new();
        for tier in SimdTier::available() {
            let mut z = ZPanel::new(1, 3, 16);
            let mut pool = StaticPool::new(1);
            batched_gemm_i16(tier, &shape, &v, &u, &mut z, &mut pool);
            let snapshot: Vec<i32> = (0..3)
                .flat_map(|n| (0..16).map(move |k| (n, k)))
                .map(|(n, k)| z.get(0, n, k))
                .collect();
            results.push(snapshot);
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
