//! FP32 batched GEMM for the full-precision Winograd baseline.
//!
//! Same tall-and-skinny shape and scatter layout as the INT8 driver, with a
//! simple broadcast-axpy kernel: `z[n][k] += v[n][c] · u[c][k]` with `k`
//! innermost, which the compiler vectorises over the padded `K` rows. This
//! is the reference point for the paper's §5.1 claim that LoWino reaches
//! 1.9×/2.6× over the best FP32 implementation.

use core::ops::Range;

use lowino_parallel::StaticPool;
use lowino_tensor::{round_up, LANES};

use crate::driver::GemmShape;
use crate::panels::{UPanelF32, VPanelF32, ZPanelF32};

/// A planned batched FP32 GEMM executable range-by-range from any thread —
/// the phase-body form for the FP32 baseline's single fork-join.
///
/// Tasks enumerate the `T × ⌈N/8⌉` grid; each task owns a disjoint
/// `(t, 8-row chunk)` of `Z`. The caller supplies a per-worker accumulator
/// of [`acc_len`](GemmTasksF32::acc_len) floats (from the scratch arena on
/// the executor path; a fresh vec on the standalone path).
pub struct GemmTasksF32<'a> {
    shape: GemmShape,
    kp: usize,
    n_chunks: usize,
    v: &'a VPanelF32,
    u: &'a UPanelF32,
    z: &'a ZPanelF32,
}

/// Tile rows blocked per U pass so each filter row is reused 8x (otherwise
/// the kernel re-streams `U[t]` per tile and goes memory-bound).
const NB: usize = 8;

impl<'a> GemmTasksF32<'a> {
    /// Validate panels against `shape` and build the task grid.
    ///
    /// # Panics
    ///
    /// Panics on panel/shape mismatch.
    pub fn plan(
        shape: &GemmShape,
        v: &'a VPanelF32,
        u: &'a UPanelF32,
        z: &'a mut ZPanelF32,
    ) -> Self {
        let (vt, vn, vc, vcp) = v.dims();
        let (ut, uc, _, uk, ukp) = u.dims();
        let (zt, zn, zk, _) = z.dims();
        assert_eq!((vt, vn, vc), (shape.t, shape.n, shape.c), "V panel shape");
        assert_eq!((ut, uc, uk), (shape.t, shape.c, shape.k), "U panel shape");
        assert_eq!((zt, zn, zk), (shape.t, shape.n, shape.k), "Z panel shape");
        let _ = vcp;
        debug_assert_eq!(ukp, round_up(shape.k, 64));
        Self {
            shape: *shape,
            kp: ukp,
            n_chunks: shape.n.div_ceil(NB).max(1),
            v,
            u,
            z,
        }
    }

    /// Number of independent tasks (`T × ⌈N/8⌉`).
    pub fn total(&self) -> usize {
        self.shape.t * self.n_chunks
    }

    /// Length (in f32) of the accumulator each executing worker must bring.
    pub fn acc_len(&self) -> usize {
        NB * self.kp
    }

    /// Read access to the output panel.
    pub fn z(&self) -> &ZPanelF32 {
        self.z
    }

    /// Execute a contiguous task range using the caller's accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc` is shorter than [`acc_len`](GemmTasksF32::acc_len).
    pub fn run_range(&self, range: Range<usize>, acc: &mut [f32]) {
        let kp = self.kp;
        let acc = &mut acc[..NB * kp];
        for task in range {
            let t = task / self.n_chunks;
            let n0 = (task % self.n_chunks) * NB;
            let nb = (self.shape.n - n0).min(NB);
            acc.fill(0.0);
            for c in 0..self.shape.c {
                let urow = self.u.row(t, c);
                if c + 1 < self.shape.c {
                    // Software-pipeline the U stream like the INT8 driver:
                    // hint the next filter row's head while the axpy over
                    // this one retires (the hardware prefetcher streams the
                    // rest of the row once the line is touched).
                    lowino_simd::store::prefetch_read(self.u.row(t, c + 1).as_ptr());
                }
                for rb in 0..nb {
                    let vv = self.v.row(t, n0 + rb)[c];
                    if vv != 0.0 {
                        let a = &mut acc[rb * kp..(rb + 1) * kp];
                        for (av, &uu) in a.iter_mut().zip(urow.iter()) {
                            *av += vv * uu;
                        }
                    }
                }
            }
            // Scatter into the [K/64][N][T][64] layout.
            for rb in 0..nb {
                for kg in 0..kp / LANES {
                    // SAFETY: each (t, n-chunk) is owned by exactly one task.
                    unsafe {
                        let dst = self.z.store_ptr_shared(t, n0 + rb, kg * LANES);
                        core::ptr::copy_nonoverlapping(
                            acc.as_ptr().add(rb * kp + kg * LANES),
                            dst,
                            LANES,
                        );
                    }
                }
            }
        }
    }
}

/// Batched FP32 GEMM: `Z[t] = V[t] × U[t]`, scattered like the INT8 path.
///
/// Standalone-fork-join wrapper over [`GemmTasksF32`].
///
/// # Panics
///
/// Panics on panel/shape mismatch.
pub fn batched_gemm_f32(
    shape: &GemmShape,
    v: &VPanelF32,
    u: &UPanelF32,
    z: &mut ZPanelF32,
    pool: &mut StaticPool,
) {
    let tasks = GemmTasksF32::plan(shape, v, u, z);
    let acc_len = tasks.acc_len();
    pool.run(tasks.total(), |_, range| {
        let mut acc = vec![0f32; acc_len];
        tasks.run_range(range, &mut acc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm_f32;

    #[test]
    fn matches_reference() {
        let shape = GemmShape { t: 4, n: 11, c: 20, k: 70 };
        let mut v = VPanelF32::new(shape.t, shape.n, shape.c);
        let mut u = UPanelF32::new(shape.t, shape.c, shape.k);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for c in 0..shape.c {
                    v.row_mut(t, n)[c] = ((t * 31 + n * 7 + c) as f32 * 0.37).sin();
                }
            }
            for c in 0..shape.c {
                for k in 0..shape.k {
                    u.row_mut(t, c)[k] = ((t + c * 13 + k) as f32 * 0.11).cos();
                }
            }
        }
        let mut z = ZPanelF32::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(2);
        batched_gemm_f32(&shape, &v, &u, &mut z, &mut pool);
        let want = reference_gemm_f32(&v, &u, &shape);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    let got = z.get(t, n, k);
                    let w = want[(t * shape.n + n) * shape.k + k];
                    assert!((got - w).abs() < 1e-4, "t={t} n={n} k={k}: {got} vs {w}");
                }
            }
        }
    }

    #[test]
    fn zero_input_stays_zero() {
        let shape = GemmShape { t: 1, n: 2, c: 4, k: 64 };
        let v = VPanelF32::new(1, 2, 4);
        let u = UPanelF32::new(1, 4, 64);
        let mut z = ZPanelF32::new(1, 2, 64);
        let mut pool = StaticPool::new(1);
        batched_gemm_f32(&shape, &v, &u, &mut z, &mut pool);
        for n in 0..2 {
            for k in 0..64 {
                assert_eq!(z.get(0, n, k), 0.0);
            }
        }
    }
}
