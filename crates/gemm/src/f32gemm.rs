//! FP32 batched GEMM for the full-precision Winograd baseline.
//!
//! Same tall-and-skinny shape and scatter layout as the INT8 driver, with a
//! simple broadcast-axpy kernel: `z[n][k] += v[n][c] · u[c][k]` with `k`
//! innermost, which the compiler vectorises over the padded `K` rows. This
//! is the reference point for the paper's §5.1 claim that LoWino reaches
//! 1.9×/2.6× over the best FP32 implementation.

use lowino_parallel::StaticPool;
use lowino_tensor::{round_up, LANES};

use crate::driver::GemmShape;
use crate::panels::{UPanelF32, VPanelF32, ZPanelF32};

/// Batched FP32 GEMM: `Z[t] = V[t] × U[t]`, scattered like the INT8 path.
///
/// # Panics
///
/// Panics on panel/shape mismatch.
pub fn batched_gemm_f32(
    shape: &GemmShape,
    v: &VPanelF32,
    u: &UPanelF32,
    z: &mut ZPanelF32,
    pool: &mut StaticPool,
) {
    let (vt, vn, vc, vcp) = v.dims();
    let (ut, uc, _, uk, ukp) = u.dims();
    let (zt, zn, zk, _) = z.dims();
    assert_eq!((vt, vn, vc), (shape.t, shape.n, shape.c), "V panel shape");
    assert_eq!((ut, uc, uk), (shape.t, shape.c, shape.k), "U panel shape");
    assert_eq!((zt, zn, zk), (shape.t, shape.n, shape.k), "Z panel shape");
    let kp = ukp;
    let _ = vcp;
    debug_assert_eq!(kp, round_up(shape.k, 64));

    // Block 8 tile rows per U pass so each filter row is reused 8x
    // (otherwise the kernel re-streams U[t] per tile and goes memory-bound).
    const NB: usize = 8;
    let n_chunks = shape.n.div_ceil(NB);
    let tasks = shape.t * n_chunks;
    let z_ref: &ZPanelF32 = z;
    pool.run(tasks, |_, range| {
        let mut acc = vec![0f32; NB * kp];
        for task in range {
            let t = task / n_chunks;
            let n0 = (task % n_chunks) * NB;
            let nb = (shape.n - n0).min(NB);
            acc.fill(0.0);
            for c in 0..shape.c {
                let urow = u.row(t, c);
                for rb in 0..nb {
                    let vv = v.row(t, n0 + rb)[c];
                    if vv != 0.0 {
                        let a = &mut acc[rb * kp..(rb + 1) * kp];
                        for (av, &uu) in a.iter_mut().zip(urow.iter()) {
                            *av += vv * uu;
                        }
                    }
                }
            }
            // Scatter into the [K/64][N][T][64] layout.
            for rb in 0..nb {
                for kg in 0..kp / LANES {
                    // SAFETY: each (t, n-chunk) is owned by exactly one task.
                    unsafe {
                        let dst = z_ref.store_ptr_shared(t, n0 + rb, kg * LANES);
                        core::ptr::copy_nonoverlapping(
                            acc.as_ptr().add(rb * kp + kg * LANES),
                            dst,
                            LANES,
                        );
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm_f32;

    #[test]
    fn matches_reference() {
        let shape = GemmShape { t: 4, n: 11, c: 20, k: 70 };
        let mut v = VPanelF32::new(shape.t, shape.n, shape.c);
        let mut u = UPanelF32::new(shape.t, shape.c, shape.k);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for c in 0..shape.c {
                    v.row_mut(t, n)[c] = ((t * 31 + n * 7 + c) as f32 * 0.37).sin();
                }
            }
            for c in 0..shape.c {
                for k in 0..shape.k {
                    u.row_mut(t, c)[k] = ((t + c * 13 + k) as f32 * 0.11).cos();
                }
            }
        }
        let mut z = ZPanelF32::new(shape.t, shape.n, shape.k);
        let mut pool = StaticPool::new(2);
        batched_gemm_f32(&shape, &v, &u, &mut z, &mut pool);
        let want = reference_gemm_f32(&v, &u, &shape);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    let got = z.get(t, n, k);
                    let w = want[(t * shape.n + n) * shape.k + k];
                    assert!((got - w).abs() < 1e-4, "t={t} n={n} k={k}: {got} vs {w}");
                }
            }
        }
    }

    #[test]
    fn zero_input_stays_zero() {
        let shape = GemmShape { t: 1, n: 2, c: 4, k: 64 };
        let v = VPanelF32::new(1, 2, 4);
        let u = UPanelF32::new(1, 4, 64);
        let mut z = ZPanelF32::new(1, 2, 64);
        let mut pool = StaticPool::new(1);
        batched_gemm_f32(&shape, &v, &u, &mut z, &mut pool);
        for n in 0..2 {
            for k in 0..64 {
                assert_eq!(z.get(0, n, k), 0.0);
            }
        }
    }
}
