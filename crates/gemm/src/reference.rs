//! Naive reference GEMM used to validate the optimised drivers.

use crate::driver::GemmShape;
use crate::panels::{UPanel, UPanelF32, UPanelI16, VPanel, VPanelF32, VPanelI16};

/// Naive `Z[t] = V̄[t]×U[t] + Z̄[t]` over the padded operands, returned as a
/// `[t][n][k]` (logical `k`) row-major vector.
pub fn reference_gemm(v: &VPanel, u: &UPanel, shape: &GemmShape) -> Vec<i32> {
    let (_, _, _, cp) = v.dims();
    let mut out = vec![0i32; shape.t * shape.n * shape.k];
    for t in 0..shape.t {
        let zbar = u.zbar(t);
        for n in 0..shape.n {
            for k in 0..shape.k {
                let mut acc = zbar[k];
                for c in 0..cp {
                    acc += i32::from(v.get(t, n, c)) * i32::from(u.get(t, c, k));
                }
                out[(t * shape.n + n) * shape.k + k] = acc;
            }
        }
    }
    out
}

/// Naive f32 reference.
pub fn reference_gemm_f32(v: &VPanelF32, u: &UPanelF32, shape: &GemmShape) -> Vec<f32> {
    let (_, _, _, cp) = v.dims();
    let mut out = vec![0f32; shape.t * shape.n * shape.k];
    for t in 0..shape.t {
        for n in 0..shape.n {
            let row = v.row(t, n);
            for k in 0..shape.k {
                let mut acc = 0f32;
                for (c, &vv) in row.iter().enumerate().take(cp) {
                    acc += vv * u.row(t, c)[k];
                }
                out[(t * shape.n + n) * shape.k + k] = acc;
            }
        }
    }
    out
}

/// Naive i16 reference (exact in i32).
pub fn reference_gemm_i16(v: &VPanelI16, u: &UPanelI16, shape: &GemmShape) -> Vec<i32> {
    let (_, _, _, cp) = v.dims();
    let mut out = vec![0i32; shape.t * shape.n * shape.k];
    for t in 0..shape.t {
        for n in 0..shape.n {
            let row = v.row(t, n);
            for k in 0..shape.k {
                let mut acc = 0i32;
                for (c, &vv) in row.iter().enumerate().take(cp) {
                    acc += i32::from(vv) * i32::from(u.get(t, c, k));
                }
                out[(t * shape.n + n) * shape.k + k] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_includes_compensation() {
        let shape = GemmShape { t: 1, n: 1, c: 4, k: 16 };
        let mut v = VPanel::new(1, 1, 4);
        let mut u = UPanel::new(1, 4, 16);
        for c in 0..4 {
            v.set(0, 0, c, 128); // logical zero after compensation
            u.set(0, c, 0, 1);
        }
        u.finalize_compensation();
        let out = reference_gemm(&v, &u, &shape);
        // (0+128)·1·4 − 128·4 = 0.
        assert_eq!(out[0], 0);
    }
}
