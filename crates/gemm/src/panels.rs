//! GEMM operand panels in the customised layouts of paper Table 1.
//!
//! * [`VPanel`] — transformed inputs: per tile position `t`, an `N × C_p`
//!   row-major u8 matrix (`C_p = C` rounded up to 64 so every channel block
//!   is one aligned cache line; padding channels are zero bytes, which the
//!   compensation algebra renders inert).
//! * [`UPanel`] — transformed filters: per `t`, the VNNI interleave
//!   `[C_p/4] × [K_p × 4]` i8 (paper §4.3.2: *"a sub-matrix u is stored in a
//!   specific layout, which has been reordered to the size of
//!   (C_blk/4) × (K_blk × 4)"*), plus the compensation row
//!   `Z̄[t][k] = −128·Σ_c U[t][c][k]` (Eq. 9).
//! * [`ZPanel`] — GEMM outputs scattered for the output transform: layout
//!   `[K_p/64] × [N] × [T] × 64` i32, so stage ③ reads each tile's `T × 64`
//!   block contiguously (the paper's scatter-with-non-temporal-stores
//!   design, §4.2.3/§4.3).
//!
//! FP32 and INT16 sibling panels serve the full-precision and up-casting
//! baselines with identical geometry.

use lowino_tensor::{round_up, AlignedBuf, LANES};

/// `C` padding granularity for the u8/i8 panels (one cache line).
pub const C_ALIGN: usize = LANES; // 64
/// `K` padding granularity (one ZMM of i32 lanes × 4 groups = 64).
pub const K_ALIGN: usize = LANES; // 64

// ---------------------------------------------------------------- VPanel

/// Transformed-input panel: `[T] × [N] × [C_p]` u8.
#[derive(Clone, Debug)]
pub struct VPanel {
    buf: AlignedBuf<u8>,
    t: usize,
    n: usize,
    c: usize,
    cp: usize,
}

impl VPanel {
    /// Allocate a zeroed panel for `t` tile positions, `n` tiles, `c`
    /// logical input channels.
    pub fn new(t: usize, n: usize, c: usize) -> Self {
        let cp = round_up(c, C_ALIGN);
        Self {
            buf: AlignedBuf::zeroed(t * n * cp),
            t,
            n,
            c,
            cp,
        }
    }

    /// (T, N, C, C_p).
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.t, self.n, self.c, self.cp)
    }

    /// Padded channel stride.
    #[inline]
    pub fn cp(&self) -> usize {
        self.cp
    }

    #[inline]
    fn row_offset(&self, t: usize, n: usize) -> usize {
        debug_assert!(t < self.t && n < self.n);
        (t * self.n + n) * self.cp
    }

    /// One tile row (all padded channels) — 64-byte aligned.
    #[inline]
    pub fn row(&self, t: usize, n: usize) -> &[u8] {
        let o = self.row_offset(t, n);
        &self.buf.as_slice()[o..o + self.cp]
    }

    /// Mutable tile row.
    #[inline]
    pub fn row_mut(&mut self, t: usize, n: usize) -> &mut [u8] {
        let o = self.row_offset(t, n);
        &mut self.buf.as_mut_slice()[o..o + self.cp]
    }

    /// Single element accessor (tests / reference paths).
    #[inline]
    pub fn get(&self, t: usize, n: usize, c: usize) -> u8 {
        debug_assert!(c < self.cp);
        self.buf.as_slice()[self.row_offset(t, n) + c]
    }

    /// Single element setter (tests / reference paths).
    #[inline]
    pub fn set(&mut self, t: usize, n: usize, c: usize, v: u8) {
        debug_assert!(c < self.cp);
        let o = self.row_offset(t, n) + c;
        self.buf.as_mut_slice()[o] = v;
    }

    /// Raw pointer to a row start (for the unsafe micro-kernels).
    #[inline]
    pub fn row_ptr(&self, t: usize, n: usize) -> *const u8 {
        // SAFETY of later arithmetic relies on row_offset bounds checks.
        unsafe { self.buf.as_ptr().add(self.row_offset(t, n)) }
    }

    /// Zero the whole panel (workspace reuse between layers).
    pub fn clear(&mut self) {
        self.buf.zero_fill();
    }

    /// Raw mutable row pointer through a shared reference — used by the
    /// parallel input transform, whose static schedule writes disjoint
    /// `(tile, channel-block)` cache lines.
    ///
    /// # Safety
    ///
    /// Callers must not create overlapping concurrent writes.
    #[inline]
    pub unsafe fn row_ptr_shared(&self, t: usize, n: usize) -> *mut u8 {
        self.buf.as_ptr().add(self.row_offset(t, n)) as *mut u8
    }
}

// ---------------------------------------------------------------- UPanel

/// Transformed-filter panel: `[T] × [C_p/4] × [K_p] × [4]` i8, plus the
/// per-position compensation rows `Z̄`.
#[derive(Clone, Debug)]
pub struct UPanel {
    buf: AlignedBuf<i8>,
    zbar: AlignedBuf<i32>,
    t: usize,
    c: usize,
    cp: usize,
    k: usize,
    kp: usize,
}

impl UPanel {
    /// Allocate a zeroed panel.
    pub fn new(t: usize, c: usize, k: usize) -> Self {
        let cp = round_up(c, C_ALIGN);
        let kp = round_up(k, K_ALIGN);
        Self {
            buf: AlignedBuf::zeroed(t * (cp / 4) * kp * 4),
            zbar: AlignedBuf::zeroed(t * kp),
            t,
            c,
            cp,
            k,
            kp,
        }
    }

    /// (T, C, C_p, K, K_p).
    pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
        (self.t, self.c, self.cp, self.k, self.kp)
    }

    /// Padded K stride.
    #[inline]
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// Padded C stride.
    #[inline]
    pub fn cp(&self) -> usize {
        self.cp
    }

    #[inline]
    fn offset(&self, t: usize, c: usize, k: usize) -> usize {
        debug_assert!(t < self.t && c < self.cp && k < self.kp);
        ((t * (self.cp / 4) + c / 4) * self.kp + k) * 4 + (c % 4)
    }

    /// Logical element accessor (`U[t][c][k]`).
    #[inline]
    pub fn get(&self, t: usize, c: usize, k: usize) -> i8 {
        self.buf.as_slice()[self.offset(t, c, k)]
    }

    /// Logical element setter. Call [`finalize_compensation`] afterwards.
    ///
    /// [`finalize_compensation`]: UPanel::finalize_compensation
    #[inline]
    pub fn set(&mut self, t: usize, c: usize, k: usize, v: i8) {
        let o = self.offset(t, c, k);
        self.buf.as_mut_slice()[o] = v;
    }

    /// Recompute the compensation rows `Z̄[t][k] = −128·Σ_c U[t][c][k]`
    /// (paper Eq. 9 — computed in the offline filter-transformation stage).
    pub fn finalize_compensation(&mut self) {
        for t in 0..self.t {
            for k in 0..self.kp {
                let mut s = 0i32;
                for c in 0..self.cp {
                    s += i32::from(self.get(t, c, k));
                }
                let o = t * self.kp + k;
                self.zbar.as_mut_slice()[o] = -128 * s;
            }
        }
    }

    /// The compensation row for tile position `t` (length `K_p`).
    #[inline]
    pub fn zbar(&self, t: usize) -> &[i32] {
        &self.zbar.as_slice()[t * self.kp..(t + 1) * self.kp]
    }

    /// Raw pointer to the interleaved block `(t, c4 = 0, k)`.
    ///
    /// Within the returned region the micro-kernel advances by
    /// `k_p·4` bytes per 4-channel group and reads 64-byte rows of
    /// `16 k-lanes × 4 channel bytes`.
    #[inline]
    pub fn block_ptr(&self, t: usize, k: usize) -> *const i8 {
        debug_assert!(t < self.t && k < self.kp);
        let o = (t * (self.cp / 4)) * self.kp * 4 + k * 4;
        // SAFETY: offset is in bounds by construction.
        unsafe { self.buf.as_ptr().add(o) }
    }

    /// Stride in bytes between consecutive 4-channel groups.
    #[inline]
    pub fn c4_stride(&self) -> usize {
        self.kp * 4
    }
}

// ---------------------------------------------------------------- ZPanel

/// GEMM-output panel: `[K_p/64] × [N] × [T] × [64]` i32.
#[derive(Clone, Debug)]
pub struct ZPanel {
    buf: AlignedBuf<i32>,
    kg: usize,
    n: usize,
    t: usize,
    k: usize,
}

impl ZPanel {
    /// Allocate a zeroed panel.
    pub fn new(t: usize, n: usize, k: usize) -> Self {
        let kp = round_up(k, K_ALIGN);
        Self {
            buf: AlignedBuf::zeroed((kp / LANES) * n * t * LANES),
            kg: kp / LANES,
            n,
            t,
            k,
        }
    }

    /// (T, N, K, K-groups).
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.t, self.n, self.k, self.kg)
    }

    /// The whole panel as one flat slice (snapshot/diff in tests).
    pub fn as_slice(&self) -> &[i32] {
        self.buf.as_slice()
    }

    /// The contiguous `T × 64` i32 block for (k-group, tile) — exactly what
    /// the output transform consumes.
    #[inline]
    pub fn tile_block(&self, kg: usize, n: usize) -> &[i32] {
        debug_assert!(kg < self.kg && n < self.n);
        let o = (kg * self.n + n) * self.t * LANES;
        &self.buf.as_slice()[o..o + self.t * LANES]
    }

    /// Element accessor `Z[t][n][k]`.
    #[inline]
    pub fn get(&self, t: usize, n: usize, k: usize) -> i32 {
        debug_assert!(t < self.t && k < self.kg * LANES);
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        self.buf.as_slice()[o]
    }

    /// Element setter (reference paths).
    #[inline]
    pub fn set(&mut self, t: usize, n: usize, k: usize, v: i32) {
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        self.buf.as_mut_slice()[o] = v;
    }

    /// Raw mutable pointer for the micro-kernel store at `(t, n, k)`;
    /// `k` must be 16-aligned. Row stride (n → n+1) is `T·64` i32.
    #[inline]
    pub fn store_ptr(&mut self, t: usize, n: usize, k: usize) -> *mut i32 {
        debug_assert!(k.is_multiple_of(16) && t < self.t && n < self.n && k < self.kg * LANES);
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        // SAFETY: offset in bounds by construction.
        unsafe { self.buf.as_mut_ptr().add(o) }
    }

    /// Row stride in i32 elements between consecutive tiles `n`.
    #[inline]
    pub fn n_stride(&self) -> usize {
        self.t * LANES
    }

    /// Raw store pointer through a shared reference — used by the parallel
    /// GEMM driver, whose static schedule guarantees disjoint `(t, n)`
    /// regions per thread.
    ///
    /// # Safety
    ///
    /// Callers must not create overlapping concurrent writes.
    #[inline]
    pub unsafe fn store_ptr_shared(&self, t: usize, n: usize, k: usize) -> *mut i32 {
        debug_assert!(k.is_multiple_of(16) && t < self.t && n < self.n && k < self.kg * LANES);
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        self.buf.as_ptr().add(o) as *mut i32
    }
}

// ------------------------------------------------- FP32 / INT16 variants

macro_rules! simple_panels {
    ($vname:ident, $uname:ident, $elem:ty, $calign:expr) => {
        /// Transformed-input panel (`[T] × [N] × [C_p]`).
        #[derive(Clone, Debug)]
        pub struct $vname {
            buf: AlignedBuf<$elem>,
            t: usize,
            n: usize,
            c: usize,
            cp: usize,
        }

        impl $vname {
            /// Allocate a zeroed panel.
            pub fn new(t: usize, n: usize, c: usize) -> Self {
                let cp = round_up(c, $calign);
                Self {
                    buf: AlignedBuf::zeroed(t * n * cp),
                    t,
                    n,
                    c,
                    cp,
                }
            }

            /// (T, N, C, C_p).
            pub fn dims(&self) -> (usize, usize, usize, usize) {
                (self.t, self.n, self.c, self.cp)
            }

            /// Padded channel stride.
            #[inline]
            pub fn cp(&self) -> usize {
                self.cp
            }

            /// One tile row.
            #[inline]
            pub fn row(&self, t: usize, n: usize) -> &[$elem] {
                let o = (t * self.n + n) * self.cp;
                &self.buf.as_slice()[o..o + self.cp]
            }

            /// Mutable tile row.
            #[inline]
            pub fn row_mut(&mut self, t: usize, n: usize) -> &mut [$elem] {
                let o = (t * self.n + n) * self.cp;
                &mut self.buf.as_mut_slice()[o..o + self.cp]
            }

            /// Raw mutable row pointer through a shared reference (parallel
            /// input transform; disjoint writes per static schedule).
            ///
            /// # Safety
            ///
            /// Callers must not create overlapping concurrent writes.
            #[inline]
            pub unsafe fn row_ptr_shared(&self, t: usize, n: usize) -> *mut $elem {
                debug_assert!(t < self.t && n < self.n);
                self.buf.as_ptr().add((t * self.n + n) * self.cp) as *mut $elem
            }
        }

        /// Transformed-filter panel (`[T] × [C_p] × [K_p]`, k-major rows).
        #[derive(Clone, Debug)]
        pub struct $uname {
            buf: AlignedBuf<$elem>,
            t: usize,
            c: usize,
            cp: usize,
            k: usize,
            kp: usize,
        }

        impl $uname {
            /// Allocate a zeroed panel.
            pub fn new(t: usize, c: usize, k: usize) -> Self {
                let cp = round_up(c, $calign);
                let kp = round_up(k, K_ALIGN);
                Self {
                    buf: AlignedBuf::zeroed(t * cp * kp),
                    t,
                    c,
                    cp,
                    k,
                    kp,
                }
            }

            /// (T, C, C_p, K, K_p).
            pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
                (self.t, self.c, self.cp, self.k, self.kp)
            }

            /// Padded K stride.
            #[inline]
            pub fn kp(&self) -> usize {
                self.kp
            }

            /// The K-major row for `(t, c)`.
            #[inline]
            pub fn row(&self, t: usize, c: usize) -> &[$elem] {
                debug_assert!(t < self.t && c < self.cp);
                let o = (t * self.cp + c) * self.kp;
                &self.buf.as_slice()[o..o + self.kp]
            }

            /// Mutable K-major row.
            #[inline]
            pub fn row_mut(&mut self, t: usize, c: usize) -> &mut [$elem] {
                debug_assert!(t < self.t && c < self.cp);
                let o = (t * self.cp + c) * self.kp;
                &mut self.buf.as_mut_slice()[o..o + self.kp]
            }
        }
    };
}

simple_panels!(VPanelF32, UPanelF32, f32, 64);
simple_panels!(VPanelI16, UPanelI16Unused, i16, 64);

/// INT16 transformed-filter panel for the up-casting baseline:
/// `[T] × [C_p/2] × [K_p] × [2]` — the `vpdpwssd` pair interleave (the
/// INT16 analogue of [`UPanel`]'s 4-byte interleave).
#[derive(Clone, Debug)]
pub struct UPanelI16 {
    buf: AlignedBuf<i16>,
    t: usize,
    c: usize,
    cp: usize,
    k: usize,
    kp: usize,
}

impl UPanelI16 {
    /// Allocate a zeroed panel.
    pub fn new(t: usize, c: usize, k: usize) -> Self {
        let cp = round_up(c, C_ALIGN);
        let kp = round_up(k, K_ALIGN);
        Self {
            buf: AlignedBuf::zeroed(t * (cp / 2) * kp * 2),
            t,
            c,
            cp,
            k,
            kp,
        }
    }

    /// (T, C, C_p, K, K_p).
    pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
        (self.t, self.c, self.cp, self.k, self.kp)
    }

    /// Padded K stride.
    #[inline]
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// Padded C stride.
    #[inline]
    pub fn cp(&self) -> usize {
        self.cp
    }

    #[inline]
    fn offset(&self, t: usize, c: usize, k: usize) -> usize {
        debug_assert!(t < self.t && c < self.cp && k < self.kp);
        ((t * (self.cp / 2) + c / 2) * self.kp + k) * 2 + (c % 2)
    }

    /// Logical element accessor (`U[t][c][k]`).
    #[inline]
    pub fn get(&self, t: usize, c: usize, k: usize) -> i16 {
        self.buf.as_slice()[self.offset(t, c, k)]
    }

    /// Logical element setter.
    #[inline]
    pub fn set(&mut self, t: usize, c: usize, k: usize, v: i16) {
        let o = self.offset(t, c, k);
        self.buf.as_mut_slice()[o] = v;
    }

    /// The interleaved 32-value group covering `(t, c2, k..k+16)`.
    #[inline]
    pub fn pair_group(&self, t: usize, c2: usize, k: usize) -> &[i16] {
        debug_assert!(k.is_multiple_of(16));
        let o = ((t * (self.cp / 2) + c2) * self.kp + k) * 2;
        &self.buf.as_slice()[o..o + 32]
    }
}

/// FP32 GEMM-output panel, same scatter geometry as [`ZPanel`].
#[derive(Clone, Debug)]
pub struct ZPanelF32 {
    buf: AlignedBuf<f32>,
    kg: usize,
    n: usize,
    t: usize,
    k: usize,
}

impl ZPanelF32 {
    /// Allocate a zeroed panel.
    pub fn new(t: usize, n: usize, k: usize) -> Self {
        let kp = round_up(k, K_ALIGN);
        Self {
            buf: AlignedBuf::zeroed((kp / LANES) * n * t * LANES),
            kg: kp / LANES,
            n,
            t,
            k,
        }
    }

    /// (T, N, K, K-groups).
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.t, self.n, self.k, self.kg)
    }

    /// The contiguous `T × 64` block for (k-group, tile).
    #[inline]
    pub fn tile_block(&self, kg: usize, n: usize) -> &[f32] {
        let o = (kg * self.n + n) * self.t * LANES;
        &self.buf.as_slice()[o..o + self.t * LANES]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, t: usize, n: usize, k: usize) -> f32 {
        let (kg, kl) = (k / LANES, k % LANES);
        self.buf.as_slice()[((kg * self.n + n) * self.t + t) * LANES + kl]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, t: usize, n: usize, k: usize, v: f32) {
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        self.buf.as_mut_slice()[o] = v;
    }

    /// Mutable view of the whole (kg, n) block.
    #[inline]
    pub fn tile_block_mut(&mut self, kg: usize, n: usize) -> &mut [f32] {
        let o = (kg * self.n + n) * self.t * LANES;
        &mut self.buf.as_mut_slice()[o..o + self.t * LANES]
    }

    /// Raw store pointer through a shared reference for the parallel driver.
    ///
    /// # Safety
    ///
    /// Callers must not create overlapping concurrent writes.
    #[inline]
    pub unsafe fn store_ptr_shared(&self, t: usize, n: usize, k: usize) -> *mut f32 {
        debug_assert!(t < self.t && n < self.n && k < self.kg * LANES);
        let (kg, kl) = (k / LANES, k % LANES);
        let o = ((kg * self.n + n) * self.t + t) * LANES + kl;
        self.buf.as_ptr().add(o) as *mut f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpanel_geometry_and_padding() {
        let v = VPanel::new(4, 3, 100);
        assert_eq!(v.dims(), (4, 3, 100, 128));
        assert_eq!(v.row(0, 0).len(), 128);
        assert!(v.row(3, 2).iter().all(|&x| x == 0));
        // Rows are cache-line aligned.
        assert_eq!(v.row_ptr(1, 1) as usize % 64, 0);
    }

    #[test]
    fn vpanel_set_get_round_trip() {
        let mut v = VPanel::new(2, 4, 8);
        v.set(1, 3, 7, 200);
        assert_eq!(v.get(1, 3, 7), 200);
        assert_eq!(v.get(1, 3, 6), 0);
        v.clear();
        assert_eq!(v.get(1, 3, 7), 0);
    }

    #[test]
    fn upanel_interleave_layout() {
        let mut u = UPanel::new(1, 8, 64);
        u.set(0, 0, 0, 1);
        u.set(0, 1, 0, 2);
        u.set(0, 2, 0, 3);
        u.set(0, 3, 0, 4);
        u.set(0, 4, 0, 5); // next c4 group
        // First 4 bytes at block start must be channels 0..4 of k = 0.
        let p = u.block_ptr(0, 0);
        // SAFETY: reading inside the allocation.
        let first: &[i8] = unsafe { core::slice::from_raw_parts(p, 4) };
        assert_eq!(first, &[1, 2, 3, 4]);
        // Channel 4 lives one c4-stride further.
        let second: &[i8] =
            unsafe { core::slice::from_raw_parts(p.add(u.c4_stride()), 1) };
        assert_eq!(second, &[5]);
    }

    #[test]
    fn upanel_compensation_rows() {
        let mut u = UPanel::new(2, 4, 16);
        for c in 0..4 {
            u.set(1, c, 3, 10);
        }
        u.set(1, 0, 5, -7);
        u.finalize_compensation();
        assert_eq!(u.zbar(1)[3], -128 * 40);
        assert_eq!(u.zbar(1)[5], -128 * -7);
        assert_eq!(u.zbar(1)[0], 0);
        assert_eq!(u.zbar(0)[3], 0);
    }

    #[test]
    fn zpanel_scatter_geometry() {
        let mut z = ZPanel::new(16, 3, 128);
        assert_eq!(z.dims(), (16, 3, 128, 2));
        z.set(5, 2, 100, -42);
        assert_eq!(z.get(5, 2, 100), -42);
        // The (kg=1, n=2) block contains t-major 64-lane groups.
        let block = z.tile_block(1, 2);
        assert_eq!(block.len(), 16 * 64);
        assert_eq!(block[5 * 64 + 36], -42); // k=100 -> lane 36 of group 1
    }

    #[test]
    fn zpanel_store_ptr_matches_get() {
        let mut z = ZPanel::new(4, 2, 64);
        let p = z.store_ptr(2, 1, 16);
        // SAFETY: in-bounds write of 16 lanes.
        unsafe {
            for i in 0..16 {
                *p.add(i) = i as i32 + 1;
            }
        }
        for i in 0..16 {
            assert_eq!(z.get(2, 1, 16 + i), i as i32 + 1);
        }
        assert_eq!(z.n_stride(), 4 * 64);
    }

    #[test]
    fn f32_panels() {
        let mut v = VPanelF32::new(2, 3, 17);
        assert_eq!(v.dims(), (2, 3, 17, 64));
        v.row_mut(1, 2)[16] = 1.5;
        assert_eq!(v.row(1, 2)[16], 1.5);
        let mut u = UPanelF32::new(2, 17, 30);
        assert_eq!(u.dims(), (2, 17, 64, 30, 64));
        u.row_mut(0, 16)[29] = -2.0;
        assert_eq!(u.row(0, 16)[29], -2.0);
        let mut z = ZPanelF32::new(4, 2, 65);
        z.set(3, 1, 64, 7.0);
        assert_eq!(z.get(3, 1, 64), 7.0);
        assert_eq!(z.tile_block(1, 1)[3 * 64], 7.0);
    }

    #[test]
    fn i16_panels() {
        let mut v = VPanelI16::new(1, 2, 3);
        assert_eq!(v.dims(), (1, 2, 3, 64));
        v.row_mut(0, 1)[2] = -300;
        assert_eq!(v.row(0, 1)[2], -300);
        let u = UPanelI16::new(1, 3, 20);
        assert_eq!(u.dims(), (1, 3, 64, 20, 64));
    }
}
